//! `simseed` — the deterministic-simulation seed runner.
//!
//! ```text
//! simseed list
//! simseed run    --scenario NAME --seed N [--max-events N] [--dump-log]
//! simseed sweep  --scenario NAME --seeds A..B [--artifact PATH] [--json PATH]
//! simseed shrink --scenario NAME --seed N
//! ```
//!
//! `sweep` runs the whole seed range and exits nonzero if any seed
//! failed, after shrinking *every* failure and printing (and optionally
//! writing to `--artifact`) a replay command per failing seed that
//! reproduces its violation from the minimal event prefix. `--json`
//! writes the machine-readable outcome CI's replay-artifact step
//! consumes.

use std::process::ExitCode;

use adn_sim::sweep::{replay_command, scenario_by_name, shrink, sweep, SCENARIO_NAMES};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  simseed list\n  simseed run --scenario NAME --seed N \
         [--max-events N] [--batch N] [--dump-log]\n  simseed sweep --scenario NAME \
         --seeds A..B [--batch N] [--artifact PATH] [--json PATH]\n  simseed shrink --scenario NAME \
         --seed N [--batch N]\n\
         scenarios: {}",
        SCENARIO_NAMES.join(", ")
    );
    ExitCode::from(2)
}

struct Args {
    scenario: Option<String>,
    seed: Option<u64>,
    seeds: Option<(u64, u64)>,
    max_events: Option<u64>,
    batch: Option<usize>,
    dump_log: bool,
    artifact: Option<String>,
    json: Option<String>,
}

fn parse(args: &[String]) -> Option<Args> {
    let mut out = Args {
        scenario: None,
        seed: None,
        seeds: None,
        max_events: None,
        batch: None,
        dump_log: false,
        artifact: None,
        json: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scenario" => {
                out.scenario = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--seed" => {
                out.seed = Some(args.get(i + 1)?.parse().ok()?);
                i += 2;
            }
            "--seeds" => {
                let spec = args.get(i + 1)?;
                let (a, b) = spec.split_once("..")?;
                out.seeds = Some((a.parse().ok()?, b.parse().ok()?));
                i += 2;
            }
            "--max-events" => {
                out.max_events = Some(args.get(i + 1)?.parse().ok()?);
                i += 2;
            }
            "--batch" => {
                out.batch = Some(args.get(i + 1)?.parse().ok()?);
                i += 2;
            }
            "--dump-log" => {
                out.dump_log = true;
                i += 1;
            }
            "--artifact" => {
                out.artifact = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            "--json" => {
                out.json = Some(args.get(i + 1)?.clone());
                i += 2;
            }
            _ => return None,
        }
    }
    Some(out)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let Some(args) = parse(&argv[1..]) else {
        return usage();
    };
    match cmd.as_str() {
        "list" => {
            for name in SCENARIO_NAMES {
                let s = scenario_by_name(name).expect("listed scenario exists");
                println!(
                    "{name}: procs={} calls={} chaos_drop={} autoscale={} kill={}",
                    s.processors,
                    s.calls,
                    s.chaos.drop_prob,
                    s.autoscale.is_some(),
                    s.kill.is_some(),
                );
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let (Some(name), Some(seed)) = (args.scenario.as_deref(), args.seed) else {
                return usage();
            };
            let Some(mut scenario) = scenario_by_name(name) else {
                eprintln!("unknown scenario: {name}");
                return usage();
            };
            if let Some(m) = args.max_events {
                scenario.max_events = m;
            }
            if let Some(b) = args.batch {
                scenario.batch = b.max(1);
            }
            let report = scenario.run(seed);
            if args.dump_log {
                print!("{}", report.log_text());
            }
            println!(
                "scenario={} seed={} events={} fingerprint={:#018x} stats={:?}",
                report.scenario,
                report.seed,
                report.events,
                report.fingerprint(),
                report.stats
            );
            match &report.violation {
                None => {
                    println!("all invariants held");
                    ExitCode::SUCCESS
                }
                Some(v) => {
                    println!("FAILED: {v}");
                    ExitCode::FAILURE
                }
            }
        }
        "sweep" => {
            let (Some(name), Some((a, b))) = (args.scenario.as_deref(), args.seeds) else {
                return usage();
            };
            let Some(mut scenario) = scenario_by_name(name) else {
                eprintln!("unknown scenario: {name}");
                return usage();
            };
            if let Some(b) = args.batch {
                scenario.batch = b.max(1);
            }
            let outcome = sweep(&scenario, a..b);
            if let Some(path) = &args.json {
                let body = format!("{}\n", outcome.to_json());
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("could not write json {path}: {e}");
                }
            }
            if outcome.passed() {
                println!(
                    "scenario={} seeds={}..{} ({} run): all invariants held",
                    name, a, b, outcome.seeds_run
                );
                ExitCode::SUCCESS
            } else {
                let mut lines = Vec::new();
                for f in &outcome.failures {
                    lines.push(format!(
                        "scenario={name} seed={} FAILED: {}\nminimal prefix: {} of {} events\nreplay: {}",
                        f.seed, f.violation, f.min_events, f.events, f.replay
                    ));
                }
                let body = lines.join("\n");
                eprintln!(
                    "{body}\n{} of {} seeds failed",
                    outcome.failures.len(),
                    outcome.seeds_run
                );
                if let Some(path) = &args.artifact {
                    if let Err(e) = std::fs::write(path, format!("{body}\n")) {
                        eprintln!("could not write artifact {path}: {e}");
                    }
                }
                ExitCode::FAILURE
            }
        }
        "shrink" => {
            let (Some(name), Some(seed)) = (args.scenario.as_deref(), args.seed) else {
                return usage();
            };
            let Some(mut scenario) = scenario_by_name(name) else {
                eprintln!("unknown scenario: {name}");
                return usage();
            };
            if let Some(b) = args.batch {
                scenario.batch = b.max(1);
            }
            match shrink(&scenario, seed) {
                None => {
                    println!(
                        "seed {seed} passes; nothing to shrink (try: {})",
                        replay_command(name, seed, u64::MAX)
                    );
                    ExitCode::SUCCESS
                }
                Some(f) => {
                    println!(
                        "seed={} violation={}\nminimal prefix: {} of {} events\nreplay: {}",
                        f.seed, f.violation, f.min_events, f.events, f.replay
                    );
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}
