//! eval-matrix: the topology × chain × chaos × tier sweep runner.
//!
//! ```text
//! eval-matrix [--grid standard|tiny] [--workers N] [--seed S]
//!             [--seeds-per-cell K] [--json PATH] [--markdown PATH]
//!             [--cell NAME] [--seed S --max-events M --dump-log]
//!             [--list]
//! ```
//!
//! Without `--cell`, runs the whole grid and exits nonzero if any cell
//! violated an invariant or a matrix-level check. With `--cell`, replays
//! a single cell (the shrink/replay path) and dumps its event log on
//! request. Output is deterministic: the same grid and seed produce
//! byte-identical `MATRIX.json` at any `--workers` value.

use std::process::ExitCode;

use adn_sim::matrix::{run_cell, run_grid, MatrixGrid};

struct Args {
    grid: String,
    workers: usize,
    seed: Option<u64>,
    seeds_per_cell: Option<u64>,
    json: Option<String>,
    markdown: Option<String>,
    cell: Option<String>,
    cell_seed: Option<u64>,
    max_events: Option<u64>,
    dump_log: bool,
    list: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: eval-matrix [--grid standard|tiny] [--workers N] [--seed S]\n\
         \x20                  [--seeds-per-cell K] [--json PATH] [--markdown PATH]\n\
         \x20                  [--cell NAME [--seed S] [--max-events M] [--dump-log]]\n\
         \x20                  [--list]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        grid: "standard".into(),
        workers: 1,
        seed: None,
        seeds_per_cell: None,
        json: None,
        markdown: None,
        cell: None,
        cell_seed: None,
        max_events: None,
        dump_log: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--grid" => args.grid = value("--grid"),
            "--workers" => args.workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--seed" => {
                let v = value("--seed").parse().unwrap_or_else(|_| usage());
                args.seed = Some(v);
                args.cell_seed = Some(v);
            }
            "--seeds-per-cell" => {
                args.seeds_per_cell = Some(
                    value("--seeds-per-cell")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--json" => args.json = Some(value("--json")),
            "--markdown" => args.markdown = Some(value("--markdown")),
            "--cell" => args.cell = Some(value("--cell")),
            "--max-events" => {
                args.max_events = Some(value("--max-events").parse().unwrap_or_else(|_| usage()))
            }
            "--dump-log" => args.dump_log = true,
            "--list" => args.list = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let mut grid = match MatrixGrid::by_name(&args.grid) {
        Some(g) => g,
        None => {
            eprintln!("unknown grid {:?} (try: standard, tiny)", args.grid);
            return ExitCode::from(2);
        }
    };
    if let Some(seed) = args.seed {
        grid.seed = seed;
    }
    if let Some(k) = args.seeds_per_cell {
        grid.seeds_per_cell = k;
    }

    if args.list {
        for cell in grid.cells() {
            println!("{}", cell.name);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(name) = &args.cell {
        // Replay path: run one cell, optionally a single seed capped at
        // a shrunk event prefix.
        let Some(mut cell) = grid.cells().into_iter().find(|c| c.name == *name) else {
            eprintln!("no cell named {name:?} in grid {:?}", grid.name);
            return ExitCode::from(2);
        };
        if let Some(max) = args.max_events {
            cell.scenario.max_events = max;
        }
        if let Some(seed) = args.cell_seed {
            let report = cell.scenario.run(seed);
            if args.dump_log {
                print!("{}", report.log_text());
            }
            println!(
                "cell {} seed {seed}: {} events, {}",
                cell.name,
                report.events,
                match &report.violation {
                    Some(v) => format!("VIOLATION {}: {}", v.invariant, v.detail),
                    None => "all invariants held".to_string(),
                }
            );
            return if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        let result = run_cell(&cell);
        println!(
            "cell {}: {} ({} seeds, {} msgs/sec, shed {})",
            result.name,
            if result.pass { "pass" } else { "FAIL" },
            result.seeds_run,
            result.msgs_per_sec,
            result.shed_rate
        );
        if let Some(detail) = &result.detail {
            println!("  {}: {detail}", result.invariant.as_deref().unwrap_or("?"));
        }
        if let Some(replay) = &result.replay {
            println!("  replay: {replay}");
        }
        return if result.pass {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let report = run_grid(&grid, args.workers);
    let json = serde_json::to_string_pretty(&report.to_json()).expect("serialize");
    if let Some(path) = &args.json {
        std::fs::write(path, format!("{json}\n")).expect("write MATRIX.json");
    }
    if let Some(path) = &args.markdown {
        std::fs::write(path, report.to_markdown()).expect("write markdown");
    }
    println!(
        "grid {}: {} cells, {} failed",
        report.grid,
        report.cells.len(),
        report.failed()
    );
    for cell in report.cells.iter().filter(|c| !c.pass) {
        println!(
            "  FAIL {} [{}] {}",
            cell.name,
            cell.invariant.as_deref().unwrap_or("?"),
            cell.detail.as_deref().unwrap_or("")
        );
        if let Some(replay) = &cell.replay {
            println!("    {replay}");
        }
    }
    if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
