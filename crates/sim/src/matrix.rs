//! The eval-matrix: a declarative topology × chain × chaos × tier sweep.
//!
//! Single scenarios answer "does this configuration hold its
//! invariants?"; the matrix answers the product question — does *every*
//! combination of deployment shape, element chain, failure regime, and
//! engine tier hold them, and do the tiers agree with each other? Each
//! cell of the grid is an independent deterministic [`Scenario`] run
//! under seeds derived from the cell's name, so the whole matrix can be
//! executed by any number of workers and still produce byte-identical
//! results: cell outcomes are a pure function of `(grid, seed)`, never
//! of scheduling.
//!
//! On top of the simulator's standing invariants, every cell gets two
//! matrix-level checks:
//!
//! * **tier verdict identity** — cells that differ only in engine tier
//!   (interpreter / threaded / native JIT) must produce the identical
//!   chain-verdict stream for every seed. The JIT differential tests
//!   check this per element on synthetic inputs; the matrix checks it
//!   end-to-end through retries, dedup, batching, and chaos.
//! * **placement respects the offload verifier** — the placement the
//!   controller solves for the cell's processor class is re-audited
//!   independently: any element assigned to a kernel site must pass
//!   [`adn_verifier::ebpf::audit_element`] on its own, sites must be
//!   non-decreasing along the path, and a DPU whole-chain placement must
//!   put every element on the server NIC.
//!
//! Chains enter the grid only through the pre-flight gate
//! ([`adn_verifier::preflight_source`]): a chain the static layers
//! reject never reaches the dataplane, exactly as in production.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use adn::harness::object_store_schemas;
use adn_backend::jit::{native_available, resolve_tier, JitTier};
use adn_backend::Platform;
use adn_controller::{place_for_class, ElementConstraints, ProcessorClass};
use adn_dataplane::processor::OverloadPolicy;
use adn_ir::ElementIr;
use adn_rpc::chaos::ChaosPolicy;
use adn_verifier::ebpf::{audit_element, EbpfPolicy};
use adn_verifier::{preflight_source, PreflightOptions};
use adn_wire::header::Priority;

use crate::nodes::ElementSpec;
use crate::scenario::{OverloadModel, Scenario, SimAutoscale, SimStats};
use crate::sweep;

// ---------------------------------------------------------------------------
// Axes
// ---------------------------------------------------------------------------

/// One point on the topology axis: how the cluster is shaped.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// Axis label (used in cell names and reports).
    pub name: String,
    /// Chain processors the elements are distributed across.
    pub processors: usize,
    /// Hardware class the placement check solves against.
    pub class: ProcessorClass,
    /// Autoscale shard ceiling; `1` disables autoscale.
    pub shards: usize,
    /// Frames a processor drains per batch (`1` = per-frame delivery).
    pub batch: usize,
}

impl TopologySpec {
    pub fn new(name: &str, processors: usize, class: ProcessorClass) -> Self {
        Self {
            name: name.into(),
            processors,
            class,
            shards: 1,
            batch: 1,
        }
    }
}

/// One point on the chain axis: a pre-flighted element chain.
#[derive(Debug, Clone)]
pub struct ChainSpec {
    /// Axis label.
    pub name: String,
    /// Lowered elements, straight from the pre-flight gate.
    pub elements: Vec<ElementIr>,
    /// Sim specs carrying each element's canonical source.
    pub specs: Vec<ElementSpec>,
    /// Whether the chain can abort calls (ACL denials, fault injection);
    /// aborting chains disarm the goodput floor under overload because
    /// aborted calls are correct behavior, not lost goodput.
    pub aborts: bool,
}

impl ChainSpec {
    /// Gates `source` (a whole `.adn` program, elements in chain order)
    /// through pre-flight and builds the chain axis entry. Errors are
    /// fatal — the grid must never contain a chain the static layers
    /// reject; warnings are tolerated and the chain still runs.
    pub fn from_source(name: &str, source: &str) -> Result<Self, String> {
        let (req, resp) = object_store_schemas();
        let report = preflight_source(source, &req, &resp, &PreflightOptions::default());
        let elements = report.gate(false).map_err(|e| format!("{name}: {e}"))?;
        if elements.is_empty() {
            return Err(format!("{name}: pre-flight produced no elements"));
        }
        let specs = elements
            .iter()
            .map(|ir| ElementSpec::from_source(&ir.name, &ir.source))
            .collect();
        Ok(Self {
            name: name.into(),
            elements: elements.to_vec(),
            specs,
            aborts: source.contains("ABORT"),
        })
    }
}

/// One point on the chaos axis: the failure regime applied to the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChaosProfile {
    /// Clean links, closed-loop workload, strict zero-loss.
    None,
    /// Drops, duplicates, reorders, and delays on every link.
    Drops,
    /// A client↔entry partition that heals mid-run.
    Partition,
    /// Open-loop 2× overload with the shed ladder armed.
    Overload,
    /// Link chaos and overload at once.
    Combined,
}

impl ChaosProfile {
    pub fn name(self) -> &'static str {
        match self {
            ChaosProfile::None => "none",
            ChaosProfile::Drops => "drops",
            ChaosProfile::Partition => "partition",
            ChaosProfile::Overload => "overload",
            ChaosProfile::Combined => "combined",
        }
    }
}

/// Axis label for an engine tier.
pub fn tier_name(tier: JitTier) -> &'static str {
    match tier {
        JitTier::Auto => "auto",
        JitTier::Interp => "interp",
        JitTier::Threaded => "threaded",
        JitTier::Native => "native",
    }
}

// ---------------------------------------------------------------------------
// Grid
// ---------------------------------------------------------------------------

/// A declarative sweep grid: the cross product of the four axes.
#[derive(Debug, Clone)]
pub struct MatrixGrid {
    /// Grid name (reported, and part of replay commands).
    pub name: String,
    /// Base seed; every cell derives its seeds from this and its name.
    pub seed: u64,
    /// Seeds run per cell.
    pub seeds_per_cell: u64,
    pub topologies: Vec<TopologySpec>,
    pub chains: Vec<ChainSpec>,
    pub chaos: Vec<ChaosProfile>,
    pub tiers: Vec<JitTier>,
}

/// The paper's object-store chain (Fault → Acl → Logging).
const OBJECT_STORE_ADN: &str = include_str!("../../../examples/dsl/object_store.adn");
/// Compress → Encrypt → Decrypt → Decompress.
const SECURE_TRANSPORT_ADN: &str = include_str!("../../../examples/dsl/secure_transport.adn");

/// A generated no-op chain: the floor of the chain axis.
const PASSTHROUGH_ADN: &str = "\
element Passthrough() {
    on request { SELECT * FROM input; }
    on response { SELECT * FROM input; }
}
";

/// A generated mutating chain: a header rewrite consumed by a stateful
/// audit log, so the dataflow lints pass warning-free.
const STAMP_AUDIT_ADN: &str = "\
element Stamp() {
    on request {
        SET object_id = input.object_id + 1;
        SELECT * FROM input;
    }
}

element Audit() {
    state seen(seq: u64 key, object_id: u64) capacity 4096;
    on request {
        INSERT INTO seen VALUES (now(), input.object_id);
        SELECT * FROM input;
    }
}
";

impl MatrixGrid {
    /// The standard grid: 4 topologies × 4 chains × 5 chaos profiles ×
    /// the available engine tiers — at least 160 cells everywhere, 240
    /// where the native JIT is available.
    pub fn standard() -> Self {
        let mut host2 = TopologySpec::new("host-2shard", 2, ProcessorClass::Host);
        host2.shards = 3;
        let mut nic = TopologySpec::new("smartnic-batch", 2, ProcessorClass::SmartNic);
        nic.batch = 4;
        let mut dpu = TopologySpec::new("dpu-batch", 1, ProcessorClass::Dpu);
        dpu.batch = 8;
        let mut tiers = vec![JitTier::Interp, JitTier::Threaded];
        if native_available() {
            tiers.push(JitTier::Native);
        }
        Self {
            name: "standard".into(),
            seed: 0,
            seeds_per_cell: 2,
            topologies: vec![
                TopologySpec::new("host-1", 1, ProcessorClass::Host),
                host2,
                nic,
                dpu,
            ],
            chains: Self::chain_catalog(&[
                ("object-store", OBJECT_STORE_ADN),
                ("secure-transport", SECURE_TRANSPORT_ADN),
                ("passthrough", PASSTHROUGH_ADN),
                ("stamp-audit", STAMP_AUDIT_ADN),
            ]),
            chaos: vec![
                ChaosProfile::None,
                ChaosProfile::Drops,
                ChaosProfile::Partition,
                ChaosProfile::Overload,
                ChaosProfile::Combined,
            ],
            tiers,
        }
    }

    /// A 2×2×2 grid (one tier pair) for the golden-output test and the
    /// CI smoke job: 8 cells, seconds to run, still exercising both
    /// matrix-level checks.
    pub fn tiny() -> Self {
        let mut dpu = TopologySpec::new("dpu-batch", 1, ProcessorClass::Dpu);
        dpu.batch = 4;
        Self {
            name: "tiny".into(),
            seed: 0,
            seeds_per_cell: 2,
            topologies: vec![TopologySpec::new("host-1", 1, ProcessorClass::Host), dpu],
            chains: Self::chain_catalog(&[
                ("object-store", OBJECT_STORE_ADN),
                ("passthrough", PASSTHROUGH_ADN),
            ]),
            chaos: vec![ChaosProfile::None, ChaosProfile::Drops],
            tiers: vec![JitTier::Interp, JitTier::Threaded],
        }
    }

    /// Looks a grid up by name (the set the `eval-matrix` binary takes).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "standard" => Some(Self::standard()),
            "tiny" => Some(Self::tiny()),
            _ => None,
        }
    }

    fn chain_catalog(sources: &[(&str, &str)]) -> Vec<ChainSpec> {
        sources
            .iter()
            .map(|(name, src)| ChainSpec::from_source(name, src).expect("catalog chain"))
            .collect()
    }

    /// Enumerates the cells in deterministic axis order: topology ×
    /// chain × chaos × tier.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for topo in &self.topologies {
            for chain in &self.chains {
                for &chaos in &self.chaos {
                    for &tier in &self.tiers {
                        out.push(Cell::new(self, topo, chain, chaos, tier));
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Cells
// ---------------------------------------------------------------------------

/// One grid cell: a fully-resolved scenario plus its axis coordinates.
#[derive(Debug, Clone)]
pub struct Cell {
    /// `topology/chain/chaos/tier` — unique within a grid.
    pub name: String,
    pub topology: TopologySpec,
    pub chain: ChainSpec,
    pub chaos: ChaosProfile,
    pub tier: JitTier,
    /// The scenario this cell runs. Public so tests can doctor a copy
    /// (inject failures) and feed it back through [`run_cell`].
    pub scenario: Scenario,
    /// First seed for this cell, derived from the cell name and the grid
    /// seed — stable under any enumeration or scheduling order.
    pub base_seed: u64,
    /// Seeds run per cell.
    pub seeds: u64,
}

/// FNV-1a over a byte string (the cell-seed derivation).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Cell {
    fn new(
        grid: &MatrixGrid,
        topo: &TopologySpec,
        chain: &ChainSpec,
        chaos: ChaosProfile,
        tier: JitTier,
    ) -> Self {
        let name = format!(
            "{}/{}/{}/{}",
            topo.name,
            chain.name,
            chaos.name(),
            tier_name(tier)
        );
        let scenario = cell_scenario(&name, topo, chain, chaos, tier);
        // The tier is deliberately excluded from the seed: tier-sibling
        // cells must run the *same* seeds or verdict identity would be
        // vacuous.
        let sibling = format!("{}/{}/{}", topo.name, chain.name, chaos.name());
        Self {
            name,
            topology: topo.clone(),
            chain: chain.clone(),
            chaos,
            tier,
            scenario,
            base_seed: fnv1a(sibling.as_bytes()) ^ grid.seed,
            seeds: grid.seeds_per_cell,
        }
    }
}

/// Maps a cell's axis coordinates onto a concrete [`Scenario`].
fn cell_scenario(
    name: &str,
    topo: &TopologySpec,
    chain: &ChainSpec,
    chaos: ChaosProfile,
    tier: JitTier,
) -> Scenario {
    let mut s = Scenario::new(name);
    s.processors = topo.processors;
    s.batch = topo.batch;
    s.chain_specs = Some(chain.specs.clone());
    s.jit = tier;
    s.calls = 24;
    s.concurrency = 4;
    s.users = if chain.aborts {
        vec!["alice".into(), "bob".into()]
    } else {
        vec!["alice".into()]
    };
    let overloaded = matches!(chaos, ChaosProfile::Overload | ChaosProfile::Combined);
    if topo.shards > 1 && !overloaded {
        s.autoscale = Some(SimAutoscale {
            threshold: 10,
            cooldown: Duration::from_millis(60),
            max_shards: topo.shards,
        });
    }
    match chaos {
        ChaosProfile::None => {}
        ChaosProfile::Drops => {
            s.calls = 40;
            s.chaos = link_chaos(0.04, Duration::from_millis(5));
            s.allow_timeouts = true;
        }
        ChaosProfile::Partition => {
            s.partition_window = Some((Duration::from_millis(8), Duration::from_millis(30)));
            s.allow_timeouts = true;
        }
        ChaosProfile::Overload => {
            arm_overload(&mut s, if chain.aborts { 0.0 } else { 0.2 });
        }
        ChaosProfile::Combined => {
            s.chaos = link_chaos(0.02, Duration::from_millis(5));
            arm_overload(&mut s, if chain.aborts { 0.0 } else { 0.1 });
        }
    }
    s
}

fn link_chaos(p: f64, delay: Duration) -> ChaosPolicy {
    ChaosPolicy {
        drop_prob: p,
        dup_prob: p,
        reorder_prob: p,
        delay_prob: p,
        delay,
    }
}

/// 2× offered load, 50ms budgets, real shed ladder — the overload
/// preset's numbers, parameterized by the goodput floor.
fn arm_overload(s: &mut Scenario, goodput_floor: f64) {
    s.calls = 300;
    s.retry = adn_rpc::retry::RetryPolicy {
        max_attempts: 16,
        attempt_timeout: Duration::from_millis(20),
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(8),
        deadline: Duration::from_millis(50),
        propagate_deadline: true,
        priority: Priority::Normal,
    };
    s.allow_timeouts = true;
    s.overload = Some(OverloadModel {
        service_time: Duration::from_millis(1),
        issue_interval: Duration::from_micros(500),
        budget: Duration::from_millis(50),
        policy: OverloadPolicy {
            shed_high_water: 8,
            drop_expired: true,
            brownout: false,
        },
        goodput_floor,
    });
}

// ---------------------------------------------------------------------------
// Per-cell execution and checks
// ---------------------------------------------------------------------------

/// The outcome of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub name: String,
    pub topology: String,
    pub chain: String,
    pub chaos: String,
    /// Tier the cell requested.
    pub tier: JitTier,
    /// Tier the engine actually ran (`ADN_JIT` and availability applied).
    pub tier_used: JitTier,
    pub pass: bool,
    /// Name of the violated invariant or matrix check, when failing.
    pub invariant: Option<String>,
    /// Failure detail, when failing.
    pub detail: Option<String>,
    /// Seed that failed first, when failing.
    pub failed_seed: Option<u64>,
    /// Minimal event prefix reproducing the failure (shrunk), if any.
    pub min_events: Option<u64>,
    /// Copy-pasteable replay for the shrunk failure, if any.
    pub replay: Option<String>,
    pub seeds_run: u64,
    /// Mean completed-OK throughput across seeds, msgs/sec of virtual time.
    pub msgs_per_sec: f64,
    /// Shed verdicts over issued calls, across seeds.
    pub shed_rate: f64,
    /// Chain-verdict stream fingerprint per seed (tier-identity check).
    pub verdict_streams: Vec<u64>,
    /// Event-log fingerprint of the first seed.
    pub fingerprint: u64,
    /// Stats of the first seed (compared across tier siblings).
    pub stats: SimStats,
    /// Human-readable placement the controller solved for this cell.
    pub placement: String,
    /// Whether the DPU took the whole chain.
    pub whole_chain_offload: bool,
}

/// Runs one cell: placement check first, then `cell.seeds` scenario runs
/// with every standing invariant armed, shrinking the first failure.
/// Pure function of the cell — safe to call from any worker thread.
pub fn run_cell(cell: &Cell) -> CellResult {
    let mut out = CellResult {
        name: cell.name.clone(),
        topology: cell.topology.name.clone(),
        chain: cell.chain.name.clone(),
        chaos: cell.chaos.name().to_string(),
        tier: cell.tier,
        tier_used: resolve_tier(cell.tier),
        pass: true,
        invariant: None,
        detail: None,
        failed_seed: None,
        min_events: None,
        replay: None,
        seeds_run: 0,
        msgs_per_sec: 0.0,
        shed_rate: 0.0,
        verdict_streams: Vec::new(),
        fingerprint: 0,
        stats: SimStats::default(),
        placement: String::new(),
        whole_chain_offload: false,
    };
    match placement_check(&cell.chain, cell.topology.class) {
        Ok((describe, whole)) => {
            out.placement = describe;
            out.whole_chain_offload = whole;
        }
        Err(detail) => {
            out.pass = false;
            out.invariant = Some("PlacementOffload".into());
            out.detail = Some(detail);
            return out;
        }
    }
    let mut issued = 0u64;
    let mut ok = 0u64;
    let mut shed = 0u64;
    let mut ns = 0u64;
    for k in 0..cell.seeds {
        let seed = cell.base_seed.wrapping_add(k);
        let report = cell.scenario.run(seed);
        out.seeds_run += 1;
        out.verdict_streams.push(report.stats.verdict_stream);
        if k == 0 {
            out.fingerprint = report.fingerprint();
            out.stats = report.stats.clone();
        }
        issued += report.stats.calls_issued;
        ok += report.stats.calls_ok;
        shed += report.stats.calls_shed;
        ns += report.end_ns;
        if let Some(v) = &report.violation {
            if out.pass {
                out.pass = false;
                out.invariant = Some(v.invariant.clone());
                out.detail = Some(v.detail.clone());
                out.failed_seed = Some(seed);
                if let Some(f) = sweep::shrink(&cell.scenario, seed) {
                    out.min_events = Some(f.min_events);
                    out.replay = Some(cell_replay(&cell.name, seed, f.min_events));
                }
            }
        }
    }
    if ns > 0 {
        out.msgs_per_sec = round1(ok as f64 * 1e9 / ns as f64);
    }
    if issued > 0 {
        out.shed_rate = round4(shed as f64 / issued as f64);
    }
    out
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// The command that replays one shrunk cell failure.
pub fn cell_replay(cell: &str, seed: u64, max_events: u64) -> String {
    format!(
        "cargo run -q --release -p adn-sim --bin eval-matrix -- \
         --cell {cell} --seed {seed} --max-events {max_events} --dump-log"
    )
}

/// The placement-respects-offload-verdict check. Solves placement for
/// the chain under the topology's hardware class, then audits the
/// solution independently: kernel-sited elements must individually pass
/// the offload verifier, sites must be non-decreasing along the path,
/// and a whole-chain DPU placement must put everything on the server
/// NIC. Returns the placement description and whether the DPU took the
/// whole chain.
pub fn placement_check(chain: &ChainSpec, class: ProcessorClass) -> Result<(String, bool), String> {
    let policy = EbpfPolicy::default();
    let cons = vec![ElementConstraints::default(); chain.elements.len()];
    let solved = place_for_class(&chain.elements, &cons, class, &policy)
        .map_err(|e| format!("no feasible placement: {e}"))?;
    let placement = solved.placement();
    for pair in placement.sites.windows(2) {
        if pair[1].path_index() < pair[0].path_index() {
            return Err(format!(
                "sites regress along the path: {:?} after {:?}",
                pair[1], pair[0]
            ));
        }
    }
    for (element, &site) in chain.elements.iter().zip(&placement.sites) {
        if site.platform() == Platform::Ebpf {
            if let Err(diags) = audit_element(element, &policy) {
                let why: Vec<String> = diags.into_iter().map(|d| d.message).collect();
                return Err(format!(
                    "element {} placed at {site:?} but fails the offload audit: {}",
                    element.name,
                    why.join("; ")
                ));
            }
        }
    }
    if solved.whole_chain()
        && placement
            .sites
            .iter()
            .any(|&s| s != adn_controller::Site::ServerNic)
    {
        return Err("whole-chain DPU placement left an element off the NIC".into());
    }
    Ok((placement.describe(&chain.elements), solved.whole_chain()))
}

// ---------------------------------------------------------------------------
// Grid execution
// ---------------------------------------------------------------------------

/// The outcome of a whole grid.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    pub grid: String,
    pub seed: u64,
    pub seeds_per_cell: u64,
    /// Per-cell results in grid enumeration order, independent of how
    /// many workers ran them.
    pub cells: Vec<CellResult>,
}

impl MatrixReport {
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.pass)
    }

    pub fn failed(&self) -> usize {
        self.cells.iter().filter(|c| !c.pass).count()
    }

    /// `MATRIX.json` — same schema-versioned shape the bench artifacts
    /// use, validated by `adn-bench`'s schema checker in CI.
    pub fn to_json(&self) -> serde_json::Value {
        let cells: Vec<serde_json::Value> = self
            .cells
            .iter()
            .map(|c| {
                let streams: Vec<String> = c
                    .verdict_streams
                    .iter()
                    .map(|v| format!("{v:016x}"))
                    .collect();
                serde_json::json!({
                    "name": (c.name.clone()),
                    "topology": (c.topology.clone()),
                    "chain": (c.chain.clone()),
                    "chaos": (c.chaos.clone()),
                    "tier": (tier_name(c.tier)),
                    "tier_used": (tier_name(c.tier_used)),
                    "pass": (c.pass),
                    "invariant": (opt_str(&c.invariant)),
                    "detail": (opt_str(&c.detail)),
                    "failed_seed": (opt_u64(c.failed_seed)),
                    "min_events": (opt_u64(c.min_events)),
                    "replay": (opt_str(&c.replay)),
                    "seeds_run": (c.seeds_run),
                    "msgs_per_sec": (c.msgs_per_sec),
                    "shed_rate": (c.shed_rate),
                    "verdict_streams": (streams),
                    "fingerprint": (format!("{:016x}", c.fingerprint)),
                    "placement": (c.placement.clone()),
                    "whole_chain_offload": (c.whole_chain_offload)
                })
            })
            .collect();
        serde_json::json!({
            "tool": "eval-matrix",
            "schema_version": 1,
            "grid": (self.grid.clone()),
            "seed": (self.seed),
            "seeds_per_cell": (self.seeds_per_cell),
            "summary": {
                "cells": (self.cells.len() as u64),
                "passed": ((self.cells.len() - self.failed()) as u64),
                "failed": (self.failed() as u64)
            },
            "cells": (cells)
        })
    }

    /// Human-readable summary table.
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "# eval-matrix: grid `{}` (seed {}, {} seeds/cell)\n\n",
            self.grid, self.seed, self.seeds_per_cell
        ));
        s.push_str(&format!(
            "{} cells, {} passed, {} failed.\n\n",
            self.cells.len(),
            self.cells.len() - self.failed(),
            self.failed()
        ));
        s.push_str("| cell | tier used | pass | invariant | msgs/sec | shed | offload |\n");
        s.push_str("|---|---|---|---|---|---|---|\n");
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                c.name,
                tier_name(c.tier_used),
                if c.pass { "pass" } else { "FAIL" },
                c.invariant.as_deref().unwrap_or("-"),
                c.msgs_per_sec,
                c.shed_rate,
                if c.whole_chain_offload {
                    "whole-chain"
                } else {
                    "-"
                },
            ));
        }
        for c in self.cells.iter().filter(|c| !c.pass) {
            s.push_str(&format!(
                "\n**FAIL {}**: {} — {}\n",
                c.name,
                c.invariant.as_deref().unwrap_or("?"),
                c.detail.as_deref().unwrap_or("")
            ));
            if let Some(replay) = &c.replay {
                s.push_str(&format!("\n    {replay}\n"));
            }
        }
        s
    }
}

fn opt_str(v: &Option<String>) -> serde_json::Value {
    match v {
        Some(s) => serde_json::Value::from(s.clone()),
        None => serde_json::Value::Null,
    }
}

fn opt_u64(v: Option<u64>) -> serde_json::Value {
    match v {
        Some(n) => serde_json::Value::from(n),
        None => serde_json::Value::Null,
    }
}

/// Runs every cell of `grid` on `workers` threads and applies the
/// matrix-level tier-identity check. Results are byte-identical for any
/// `workers >= 1`: cells are pure functions of their definition, and the
/// report keeps grid enumeration order regardless of which worker ran
/// which cell.
pub fn run_grid(grid: &MatrixGrid, workers: usize) -> MatrixReport {
    let cells = grid.cells();
    run_cells(grid, cells, workers)
}

/// [`run_grid`] over an explicit cell list (tests doctor cells before
/// feeding them back through this).
pub fn run_cells(grid: &MatrixGrid, cells: Vec<Cell>, workers: usize) -> MatrixReport {
    let n = cells.len();
    let slots: Vec<Mutex<Option<CellResult>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers.max(1).min(n.max(1)) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = run_cell(&cells[i]);
                *slots[i].lock().expect("cell slot") = Some(result);
            });
        }
    });
    let mut results: Vec<CellResult> = slots
        .into_iter()
        .map(|m| m.into_inner().expect("poisoned slot").expect("cell ran"))
        .collect();
    apply_tier_identity(&mut results);
    MatrixReport {
        grid: grid.name.clone(),
        seed: grid.seed,
        seeds_per_cell: grid.seeds_per_cell,
        cells: results,
    }
}

/// The tier-verdict-identity check: cells that differ only in engine
/// tier ran the same seeds and must have produced the identical
/// chain-verdict stream and counters. The first tier in grid order is
/// the baseline; a diverging sibling fails with `TierVerdictIdentity`.
pub fn apply_tier_identity(results: &mut [CellResult]) {
    use std::collections::BTreeMap;
    let mut baseline: BTreeMap<String, usize> = BTreeMap::new();
    let mut failures: Vec<(usize, String)> = Vec::new();
    for (i, c) in results.iter().enumerate() {
        let key = format!("{}/{}/{}", c.topology, c.chain, c.chaos);
        match baseline.get(&key) {
            None => {
                baseline.insert(key, i);
            }
            Some(&b) => {
                let base = &results[b];
                if !base.pass || !c.pass {
                    continue; // a standing-invariant failure already reported
                }
                if base.verdict_streams != c.verdict_streams || base.stats != c.stats {
                    failures.push((
                        i,
                        format!(
                            "tier {} diverges from tier {}: verdict streams {:?} vs {:?}",
                            tier_name(c.tier),
                            tier_name(base.tier),
                            c.verdict_streams,
                            base.verdict_streams
                        ),
                    ));
                }
            }
        }
    }
    for (i, detail) in failures {
        results[i].pass = false;
        results[i].invariant = Some("TierVerdictIdentity".into());
        results[i].detail = Some(detail);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_chains_pass_preflight() {
        for (name, src) in [
            ("object-store", OBJECT_STORE_ADN),
            ("secure-transport", SECURE_TRANSPORT_ADN),
            ("passthrough", PASSTHROUGH_ADN),
            ("stamp-audit", STAMP_AUDIT_ADN),
        ] {
            let chain = ChainSpec::from_source(name, src).expect(name);
            assert!(!chain.elements.is_empty());
            assert_eq!(chain.elements.len(), chain.specs.len());
        }
    }

    #[test]
    fn cell_seeds_ignore_the_tier_axis() {
        let grid = MatrixGrid::tiny();
        let cells = grid.cells();
        let a = cells
            .iter()
            .find(|c| c.name.ends_with("/interp"))
            .expect("interp cell");
        let b = cells
            .iter()
            .find(|c| {
                c.name.ends_with("/threaded")
                    && c.name.trim_end_matches("/threaded") == a.name.trim_end_matches("/interp")
            })
            .expect("threaded sibling");
        assert_eq!(a.base_seed, b.base_seed);
    }

    #[test]
    fn placement_check_accepts_the_catalog() {
        let grid = MatrixGrid::tiny();
        for chain in &grid.chains {
            for class in [
                ProcessorClass::Host,
                ProcessorClass::SmartNic,
                ProcessorClass::Dpu,
            ] {
                placement_check(chain, class)
                    .unwrap_or_else(|e| panic!("{}/{:?}: {e}", chain.name, class));
            }
        }
    }

    #[test]
    fn dpu_class_reports_whole_chain_offload() {
        let grid = MatrixGrid::tiny();
        let chain = &grid.chains[1]; // passthrough: trivially DPU-eligible
        let (_, whole) = placement_check(chain, ProcessorClass::Dpu).expect("placement");
        assert!(whole, "a small software chain should offload whole");
    }

    #[test]
    fn tier_identity_flags_a_diverging_sibling() {
        let grid = MatrixGrid::tiny();
        let cells: Vec<Cell> = grid.cells().into_iter().take(2).collect();
        let mut results: Vec<CellResult> = cells.iter().map(run_cell).collect();
        assert!(results.iter().all(|r| r.pass));
        // Corrupt the second tier's stream: the check must catch it.
        results[1].verdict_streams[0] ^= 1;
        apply_tier_identity(&mut results);
        assert!(results[0].pass);
        assert!(!results[1].pass);
        assert_eq!(results[1].invariant.as_deref(), Some("TierVerdictIdentity"));
    }
}
