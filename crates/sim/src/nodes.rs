//! Message-level models of the cluster's node types. Each model is plain
//! data driven by the scenario's event handlers; none owns a thread, a
//! lock, or a clock. Where the real runtime has a mechanism that matters
//! for correctness — dedup windows, NAT flow tables, circuit breakers,
//! retry budgets, engine chains — the model reuses the *real* component
//! rather than a simplified copy, so the simulator exercises the same
//! code the production path runs.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use adn_rpc::engine::EngineChain;
use adn_rpc::retry::{CircuitBreaker, DedupWindow, DegradedMode, RetryPolicy};
use adn_rpc::schema::RpcSchema;
use adn_rpc::transport::Frame;
use adn_rpc::value::Value;
use adn_wire::header::Priority;

/// Dedup window capacity used by simulated processors and the server.
/// Larger than any scenario's in-flight set, so eviction never weakens
/// the at-most-once invariant inside a run.
pub const DEDUP_CAP: usize = 4096;

/// One element of a processor's chain, kept in buildable form so
/// failover and migration can reconstruct the chain deterministically.
#[derive(Debug, Clone)]
pub struct ElementSpec {
    /// Standard element name (e.g. `"Acl"`).
    pub name: String,
    /// Instantiation arguments.
    pub args: Vec<(String, Value)>,
    /// DSL source to compile instead of the catalog element, for chains
    /// that exist only as text (eval-matrix generated chains, `.adn`
    /// files). `None` builds `name` from the standard catalog.
    pub source: Option<String>,
}

impl ElementSpec {
    /// An element with no arguments.
    pub fn plain(name: &str) -> Self {
        Self {
            name: name.to_string(),
            args: Vec::new(),
            source: None,
        }
    }

    /// An element compiled from DSL source text. Callers are expected to
    /// have run the source through `adn_verifier::preflight` first; the
    /// sim panics on sources that do not lower.
    pub fn from_source(name: &str, source: &str) -> Self {
        Self {
            name: name.to_string(),
            args: Vec::new(),
            source: Some(source.to_string()),
        }
    }
}

/// Where a processor sends accepted requests.
#[derive(Debug, Clone)]
pub enum NextHop {
    /// Single downstream endpoint.
    Fixed(u64),
    /// Key-hash over shard replicas (post-scale-out router mode).
    Sharded(Vec<u64>),
}

/// What a processor did with a (deduplicated) message — replayed verbatim
/// on retransmission.
#[derive(Debug, Clone)]
pub enum CachedAction {
    /// A frame was emitted; retransmits resend the identical frame.
    Sent(Frame),
    /// The chain dropped the message; retransmits drop too.
    Dropped,
}

/// The state of one in-flight or finished client call.
#[derive(Debug)]
pub struct CallState {
    /// Workload object id (unique per call in the sim workload).
    pub object_id: u64,
    /// Requesting username (drives the ACL element).
    pub user: String,
    /// The request payload, encoded once; retransmits reuse it so the
    /// trace id and field bytes are identical across attempts.
    pub payload: Vec<u8>,
    /// Current 1-based attempt number.
    pub attempt: u32,
    /// Failed attempts so far (drives backoff growth).
    pub failures: u32,
    /// Absolute virtual deadline for the whole call.
    pub deadline: Duration,
    /// Priority class stamped into the hop header (overload scenarios).
    pub priority: Priority,
    /// Terminal outcome, once resolved.
    pub outcome: Option<CallOutcome>,
}

/// Terminal result of a simulated call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// Completed with an `Ok` response.
    Ok,
    /// Rejected by a network element (ACL, fault injection).
    Aborted,
    /// Retry budget or deadline exhausted.
    TimedOut,
    /// Fast-failed by admission control under overload; definitive (the
    /// client backs off instead of retrying).
    Shed,
}

/// The closed-loop client: issues calls against the chain entry, retries
/// with the real backoff policy, and trips the real circuit breaker.
#[derive(Debug)]
pub struct SimClient {
    /// The client's flat endpoint address.
    pub addr: u64,
    /// First hop (chain entry processor).
    pub via: u64,
    /// Final destination (the server).
    pub server: u64,
    /// Real retry policy (backoff math shared with `call_resilient`).
    pub policy: RetryPolicy,
    /// Real circuit breaker guarding the first hop.
    pub breaker: CircuitBreaker,
    /// Breaker-open behavior.
    pub degraded: DegradedMode,
    /// All calls, keyed by call id (ordered for deterministic iteration).
    pub calls: BTreeMap<u64, CallState>,
    /// Workload indices handed to `IssueCall` so far.
    pub scheduled: u64,
    /// Total calls the workload will issue.
    pub total: u64,
    /// Calls in flight at once.
    pub concurrency: u64,
}

impl SimClient {
    /// Call id for workload index `i` (offset so ids never collide with
    /// endpoint addresses in logs).
    pub fn call_id(index: u64) -> u64 {
        1000 + index
    }
}

/// A simulated chain processor: the real engine chain plus the real
/// dedup/NAT bookkeeping from the serve loop, minus the thread.
#[derive(Debug)]
pub struct SimProcessor {
    /// Flat endpoint address (stable across failover and migration).
    pub addr: u64,
    /// The real compiled element chain.
    pub chain: EngineChain,
    /// Buildable description of `chain` for failover/migration rebuilds.
    pub elements: Vec<ElementSpec>,
    /// Downstream routing for accepted requests.
    pub next_req: NextHop,
    /// NAT flow table: call id → original requester address.
    pub flows: HashMap<u64, u64>,
    /// Request dedup window, keyed by (upstream address, call id).
    pub req_cache: DedupWindow<(u64, u64), CachedAction>,
    /// Response dedup window, keyed by call id.
    pub resp_cache: DedupWindow<u64, CachedAction>,
    /// False after a `Kill`: stops heartbeating, blackholes frames.
    pub alive: bool,
    /// Virtual time of the last heartbeat the controller saw.
    pub last_beat: Duration,
    /// Frames waiting for the next batch drain (`Scenario::batch > 1`
    /// only; the per-frame path never touches it).
    pub inbox: Vec<Frame>,
    /// True while a `FlushBatch` event is scheduled for this processor.
    pub flush_pending: bool,
    /// Virtual time until which this processor's single worker is busy
    /// (overload scenarios only; zero service time leaves it at ZERO).
    pub busy_until: Duration,
}

impl SimProcessor {
    /// A fresh processor with the given chain.
    pub fn new(
        addr: u64,
        chain: EngineChain,
        elements: Vec<ElementSpec>,
        next_req: NextHop,
    ) -> Self {
        Self {
            addr,
            chain,
            elements,
            next_req,
            flows: HashMap::new(),
            req_cache: DedupWindow::new(DEDUP_CAP),
            resp_cache: DedupWindow::new(DEDUP_CAP),
            alive: true,
            last_beat: Duration::ZERO,
            inbox: Vec::new(),
            flush_pending: false,
            busy_until: Duration::ZERO,
        }
    }
}

/// The application server: executes requests at most once (real dedup
/// window) and echoes responses.
#[derive(Debug)]
pub struct SimServer {
    /// Flat endpoint address.
    pub addr: u64,
    /// Request dedup window, keyed by (last-hop address, call id); holds
    /// the cached response frame for replay.
    pub dedup: DedupWindow<(u64, u64), Frame>,
    /// Response schema for building replies.
    pub resp_schema: Arc<RpcSchema>,
}

/// The simulated controller: failure detection, checkpoint/restore, and
/// load-triggered scale-out with a cooldown — the sim analog of the
/// control loops in `adn-controller`.
#[derive(Debug)]
pub struct SimController {
    /// Heartbeat age beyond which a processor is declared dead.
    pub heartbeat_timeout: Duration,
    /// Interval between controller sweeps.
    pub sweep_interval: Duration,
    /// Interval between state checkpoints.
    pub checkpoint_interval: Duration,
    /// Last checkpointed element-state images per processor.
    pub checkpoints: BTreeMap<u64, Vec<Vec<u8>>>,
    /// Scale-out config, when the scenario enables autoscale.
    pub autoscale: Option<AutoscaleModel>,
    /// Virtual time of the most recent scale-out.
    pub last_scaleout: Option<Duration>,
    /// Kills the controller has already repaired (avoid double failover).
    pub failed_over: BTreeMap<u64, Duration>,
}

/// Autoscale parameters for the simulated controller.
#[derive(Debug, Clone)]
pub struct AutoscaleModel {
    /// Entry-processor requests per sweep that trigger a scale-out.
    pub threshold: u64,
    /// Minimum virtual time between consecutive scale-outs.
    pub cooldown: Duration,
    /// Upper bound on shard replicas.
    pub max_shards: usize,
}

/// One recorded trace span (the sim's analog of `adn_telemetry::Span`,
/// reduced to the tree-shape fields the invariant checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanFact {
    /// End-to-end trace id.
    pub trace_id: u64,
    /// This hop's span id (`TraceContext::span_at`).
    pub span_id: u64,
    /// Upstream span id (0 when the client is the parent).
    pub parent_span: u64,
    /// Recording processor address.
    pub processor: u64,
}

/// Everything the invariant checkers observe. The event handlers update
/// these facts inline; checkers only read them.
#[derive(Debug, Default)]
pub struct Facts {
    /// Calls minted by the client.
    pub calls_issued: u64,
    /// Calls resolved `Ok`.
    pub calls_ok: u64,
    /// Calls rejected by an element.
    pub calls_aborted: u64,
    /// Calls that exhausted their retry budget or deadline.
    pub calls_timed_out: u64,
    /// Calls fast-failed with a `Shed` verdict.
    pub calls_shed: u64,
    /// Shed verdicts issued by processor admission control (may exceed
    /// `calls_shed`: retransmits of an unresolved call can shed again).
    pub sheds: u64,
    /// Frames dropped at admission because their deadline budget was
    /// already exhausted — counted, never silent.
    pub expired_drops: u64,
    /// Server executions of a call whose budget was exhausted on
    /// arrival. The no-expired-execution invariant demands zero.
    pub expired_executions: u64,
    /// Deepest entry-processor backlog (in queued requests) observed.
    pub queue_peak: u64,
    /// Retransmissions scheduled by the retry layer.
    pub retries: u64,
    /// Frames handed to the link.
    pub frames_sent: u64,
    /// Frames delivered to a node.
    pub frames_delivered: u64,
    /// Frames the chaos layer dropped (incl. partition blackholes).
    pub frames_dropped: u64,
    /// Frames absorbed by dead processors.
    pub frames_blackholed: u64,
    /// Retransmits recognized by a dedup window (processor or server).
    pub dedup_hits: u64,
    /// Server executions per call id — the at-most-once ledger.
    pub executions: BTreeMap<u64, u32>,
    /// The most recent execution `(call_id, count_after)`, for O(1)
    /// per-event checking.
    pub last_exec: Option<(u64, u32)>,
    /// Every span recorded, in causal order.
    pub spans: Vec<SpanFact>,
    /// Virtual times of scale-outs, in order.
    pub scaleouts: Vec<Duration>,
    /// Kills: processor address → virtual kill time.
    pub kills: BTreeMap<u64, Duration>,
    /// Failovers: processor address → virtual repair time.
    pub failovers: BTreeMap<u64, Duration>,
    /// Live migrations performed.
    pub migrations: u64,
    /// Chain verdicts observed (request + response direction).
    pub verdicts: u64,
    /// Running FNV-1a fingerprint over the verdict stream: for each chain
    /// invocation, `(direction, processor, call_id, verdict tag, code)`.
    /// Engine tiers are pinned observably equivalent by the JIT
    /// differential tests; this fingerprint lets eval-matrix re-check
    /// that claim end-to-end — cells differing only in tier must agree.
    pub verdict_stream: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Facts {
    /// Calls resolved one way or another.
    pub fn calls_resolved(&self) -> u64 {
        self.calls_ok + self.calls_aborted + self.calls_timed_out + self.calls_shed
    }

    /// Folds one chain verdict into the verdict-stream fingerprint.
    pub fn note_verdict(
        &mut self,
        direction: u8,
        processor: u64,
        call_id: u64,
        tag: u8,
        code: u64,
    ) {
        let mut h = if self.verdicts == 0 {
            FNV_OFFSET
        } else {
            self.verdict_stream
        };
        for word in [direction as u64, processor, call_id, tag as u64, code] {
            for byte in word.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        }
        self.verdict_stream = h;
        self.verdicts += 1;
    }
}
