//! Invariant checkers evaluated after every simulated event.
//!
//! A checker reads the run's [`Facts`] — it never touches node state —
//! and returns `Err(detail)` the moment its property is violated, which
//! pins the violation to an exact event index for replay and shrinking.
//! Checkers may keep cursors into append-only fact vectors so each event
//! costs O(new facts), not O(history).
//!
//! To add a new invariant: implement [`Invariant`], decide whether the
//! property is *stepwise* (checkable from the facts at any instant —
//! put it in `check`) or *terminal* (only meaningful once the run drains
//! — put it in `check_end`), and register it in [`invariants_for`].

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Duration;

use crate::nodes::Facts;
use crate::scenario::Scenario;

/// A violated invariant, pinned to the event that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Name of the failed invariant.
    pub invariant: String,
    /// 1-based index of the event after which the check failed.
    pub at_event: u64,
    /// Virtual time of that event, in nanoseconds.
    pub at_ns: u64,
    /// Human-readable description of what went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invariant {} violated at event {} (t={}ns): {}",
            self.invariant, self.at_event, self.at_ns, self.detail
        )
    }
}

/// A property of the whole cluster, checked continuously.
pub trait Invariant {
    /// Stable name used in reports and replay output.
    fn name(&self) -> &'static str;
    /// Checked after every processed event.
    fn check(&mut self, now: Duration, facts: &Facts) -> Result<(), String>;
    /// Checked once, after the event queue drains (skipped on truncated
    /// or already-failed runs).
    fn check_end(&mut self, _now: Duration, _facts: &Facts) -> Result<(), String> {
        Ok(())
    }
}

/// No call id is ever executed twice at the server, regardless of
/// retransmits, duplicated frames, failovers, or reroutes.
pub struct AtMostOnce;

impl Invariant for AtMostOnce {
    fn name(&self) -> &'static str {
        "at-most-once"
    }
    fn check(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        if let Some((call_id, count)) = facts.last_exec {
            if count > 1 {
                return Err(format!(
                    "call {call_id} executed {count} times at the server"
                ));
            }
        }
        Ok(())
    }
}

/// Every issued call resolves, and — unless the scenario tolerates
/// timeouts — none resolves by timing out. Under reconfiguration on a
/// clean link this is the paper's zero-loss property.
pub struct ZeroLoss {
    allow_timeouts: bool,
}

impl ZeroLoss {
    /// Strict when `allow_timeouts` is false.
    pub fn new(allow_timeouts: bool) -> Self {
        Self { allow_timeouts }
    }
}

impl Invariant for ZeroLoss {
    fn name(&self) -> &'static str {
        "zero-loss"
    }
    fn check(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        if !self.allow_timeouts && facts.calls_timed_out > 0 {
            return Err(format!(
                "{} call(s) timed out in a scenario that promises zero loss",
                facts.calls_timed_out
            ));
        }
        Ok(())
    }
    fn check_end(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        if facts.calls_resolved() != facts.calls_issued {
            return Err(format!(
                "{} of {} calls never resolved",
                facts.calls_issued - facts.calls_resolved(),
                facts.calls_issued
            ));
        }
        Ok(())
    }
}

/// Every recorded span's parent is either the client (parent id 0) or a
/// span already recorded for the same trace — i.e. traces always form
/// well-rooted trees, even under duplication, retries, and NAT.
#[derive(Default)]
pub struct TraceWellFormed {
    cursor: usize,
    seen: BTreeMap<u64, BTreeSet<u64>>,
}

impl Invariant for TraceWellFormed {
    fn name(&self) -> &'static str {
        "trace-well-formed"
    }
    fn check(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        while self.cursor < facts.spans.len() {
            let s = facts.spans[self.cursor];
            self.cursor += 1;
            let seen = self.seen.entry(s.trace_id).or_default();
            if s.parent_span != 0 && !seen.contains(&s.parent_span) {
                return Err(format!(
                    "span {:#x} (processor {}) of trace {:#x} has unknown parent {:#x}",
                    s.span_id, s.processor, s.trace_id, s.parent_span
                ));
            }
            seen.insert(s.span_id);
        }
        Ok(())
    }
}

/// Consecutive scale-outs are separated by at least the configured
/// cooldown — the autoscaler never thrashes.
pub struct CooldownMonotonic {
    cooldown: Duration,
    cursor: usize,
}

impl CooldownMonotonic {
    /// Checks gaps against `cooldown`.
    pub fn new(cooldown: Duration) -> Self {
        Self {
            cooldown,
            cursor: 0,
        }
    }
}

impl Invariant for CooldownMonotonic {
    fn name(&self) -> &'static str {
        "autoscale-cooldown"
    }
    fn check(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        while self.cursor < facts.scaleouts.len() {
            let i = self.cursor;
            self.cursor += 1;
            if i == 0 {
                continue;
            }
            let gap = facts.scaleouts[i].saturating_sub(facts.scaleouts[i - 1]);
            if gap < self.cooldown {
                return Err(format!(
                    "scale-outs {}ns apart, cooldown is {}ns",
                    gap.as_nanos(),
                    self.cooldown.as_nanos()
                ));
            }
        }
        Ok(())
    }
}

/// Every killed processor is failed over within the controller's
/// promised bound (heartbeat timeout + detection sweeps + slack).
pub struct FailoverLiveness {
    bound: Duration,
}

impl FailoverLiveness {
    /// Checks repairs against `bound` past the kill time.
    pub fn new(bound: Duration) -> Self {
        Self { bound }
    }
}

impl Invariant for FailoverLiveness {
    fn name(&self) -> &'static str {
        "failover-liveness"
    }
    fn check(&mut self, now: Duration, facts: &Facts) -> Result<(), String> {
        for (addr, t_kill) in &facts.kills {
            match facts.failovers.get(addr) {
                Some(t_fail) if *t_fail >= *t_kill => {
                    let took = t_fail.saturating_sub(*t_kill);
                    if took > self.bound {
                        return Err(format!(
                            "processor {addr} repaired after {}ns, bound is {}ns",
                            took.as_nanos(),
                            self.bound.as_nanos()
                        ));
                    }
                }
                _ => {
                    if now > *t_kill + self.bound {
                        return Err(format!(
                            "processor {addr} killed at {}ns still dead at {}ns (bound {}ns)",
                            t_kill.as_nanos(),
                            now.as_nanos(),
                            self.bound.as_nanos()
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// The server never executes a request whose in-band deadline budget
/// was already exhausted on arrival — expired work must die at an
/// admission check, not burn service time. Armed whenever the upstream
/// processors promise expired-drop (and vacuous when no deadlines are
/// stamped at all).
pub struct NoExpiredExecution;

impl Invariant for NoExpiredExecution {
    fn name(&self) -> &'static str {
        "no-expired-execution"
    }
    fn check(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        if facts.expired_executions > 0 {
            return Err(format!(
                "{} call(s) executed after their deadline budget was exhausted",
                facts.expired_executions
            ));
        }
        Ok(())
    }
}

/// Under overload with the shed ladder armed, goodput degrades
/// gracefully instead of collapsing: at least `floor` of all issued
/// calls must still complete `Ok`. The overload presets offer 2×
/// capacity, so the floor asserts that shedding protects roughly the
/// admitted (higher-priority) half of the load.
pub struct GoodputFloor {
    floor: f64,
}

impl GoodputFloor {
    /// Requires `calls_ok / calls_issued >= floor` at the end of a run.
    pub fn new(floor: f64) -> Self {
        Self { floor }
    }
}

impl Invariant for GoodputFloor {
    fn name(&self) -> &'static str {
        "goodput-floor"
    }
    fn check(&mut self, _now: Duration, _facts: &Facts) -> Result<(), String> {
        Ok(())
    }
    fn check_end(&mut self, _now: Duration, facts: &Facts) -> Result<(), String> {
        if facts.calls_issued == 0 {
            return Ok(());
        }
        let frac = facts.calls_ok as f64 / facts.calls_issued as f64;
        if frac + 1e-9 < self.floor {
            return Err(format!(
                "goodput {frac:.3} ({} ok of {} issued) below floor {:.3}",
                facts.calls_ok, facts.calls_issued, self.floor
            ));
        }
        Ok(())
    }
}

/// The checker set for a scenario: the three universal invariants plus
/// cooldown monotonicity when autoscale is on and the overload pair
/// when an overload model is armed. Failover liveness is always armed —
/// with no kills it is vacuous.
pub fn invariants_for(s: &Scenario) -> Vec<Box<dyn Invariant>> {
    let mut invs: Vec<Box<dyn Invariant>> = vec![
        Box::new(AtMostOnce),
        Box::new(ZeroLoss::new(s.allow_timeouts)),
        Box::new(TraceWellFormed::default()),
        Box::new(FailoverLiveness::new(s.failover_bound())),
    ];
    if let Some(a) = &s.autoscale {
        invs.push(Box::new(CooldownMonotonic::new(a.cooldown)));
    }
    if s.overload.as_ref().is_none_or(|m| m.policy.drop_expired) {
        invs.push(Box::new(NoExpiredExecution));
    }
    if let Some(m) = &s.overload {
        if m.goodput_floor > 0.0 {
            invs.push(Box::new(GoodputFloor::new(m.goodput_floor)));
        }
    }
    invs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nodes::SpanFact;

    #[test]
    fn at_most_once_flags_double_execution() {
        let mut facts = Facts {
            last_exec: Some((7, 1)),
            ..Facts::default()
        };
        assert!(AtMostOnce.check(Duration::ZERO, &facts).is_ok());
        facts.last_exec = Some((7, 2));
        assert!(AtMostOnce.check(Duration::ZERO, &facts).is_err());
    }

    #[test]
    fn trace_checker_requires_known_parents() {
        let mut inv = TraceWellFormed::default();
        let mut facts = Facts::default();
        facts.spans.push(SpanFact {
            trace_id: 1,
            span_id: 10,
            parent_span: 0,
            processor: 50,
        });
        facts.spans.push(SpanFact {
            trace_id: 1,
            span_id: 11,
            parent_span: 10,
            processor: 51,
        });
        assert!(inv.check(Duration::ZERO, &facts).is_ok());
        facts.spans.push(SpanFact {
            trace_id: 1,
            span_id: 12,
            parent_span: 99, // never recorded
            processor: 52,
        });
        assert!(inv.check(Duration::ZERO, &facts).is_err());
    }

    #[test]
    fn cooldown_checker_flags_rapid_scaleouts() {
        let mut inv = CooldownMonotonic::new(Duration::from_millis(100));
        let mut facts = Facts::default();
        facts.scaleouts.push(Duration::from_millis(100));
        facts.scaleouts.push(Duration::from_millis(250));
        assert!(inv.check(Duration::ZERO, &facts).is_ok());
        facts.scaleouts.push(Duration::from_millis(300));
        assert!(inv.check(Duration::ZERO, &facts).is_err());
    }

    #[test]
    fn failover_liveness_waits_for_the_bound() {
        let mut inv = FailoverLiveness::new(Duration::from_millis(200));
        let mut facts = Facts::default();
        facts.kills.insert(50, Duration::from_millis(100));
        // Inside the bound: no verdict yet.
        assert!(inv.check(Duration::from_millis(250), &facts).is_ok());
        // Past the bound with no repair: violation.
        assert!(inv.check(Duration::from_millis(301), &facts).is_err());
        // Repaired in time: clean.
        facts.failovers.insert(50, Duration::from_millis(220));
        assert!(inv.check(Duration::from_millis(301), &facts).is_ok());
    }
}
