//! Seed sweeps, failure shrinking, and replay commands.
//!
//! A sweep runs one scenario across a seed range. On the first failing
//! seed it *shrinks* the failure to the minimal event prefix that still
//! reproduces it and emits a copy-pasteable replay command. Because runs
//! are deterministic and an invariant is checked immediately after each
//! event, the minimal prefix is exactly the violation's event index — a
//! shorter prefix truncates before the violating event and cannot fail
//! the same way. The shrinker verifies that by re-running the prefix.

use crate::invariant::Violation;
use crate::scenario::Scenario;

/// A reproducible failure found by a sweep.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// Events the full run processed before stopping.
    pub events: u64,
    /// Minimal event prefix that reproduces the violation.
    pub min_events: u64,
    /// The violation itself.
    pub violation: Violation,
    /// Copy-pasteable reproduction command.
    pub replay: String,
}

/// Result of sweeping a seed range.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Seeds that ran (the sweep stops at the first failure).
    pub seeds_run: u64,
    /// The first failure, shrunk, if any seed failed.
    pub failure: Option<SeedFailure>,
}

impl SweepOutcome {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Looks up a named scenario (the set the `simseed` binary and CI use).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    match name {
        "smoke" => Some(Scenario::smoke()),
        "chaos" => Some(Scenario::chaos()),
        "reconfig" => Some(Scenario::reconfig()),
        "everything" => Some(Scenario::everything()),
        "overload" => Some(Scenario::overload()),
        "overload-naive" => Some(Scenario::overload_naive()),
        "chaos-overload" => Some(Scenario::chaos_overload()),
        _ => None,
    }
}

/// Names accepted by [`scenario_by_name`].
pub const SCENARIO_NAMES: &[&str] = &[
    "smoke",
    "chaos",
    "reconfig",
    "everything",
    "overload",
    "overload-naive",
    "chaos-overload",
];

/// The command that replays one seed up to a given event prefix.
pub fn replay_command(scenario: &str, seed: u64, max_events: u64) -> String {
    format!(
        "cargo run -q --release -p adn-sim --bin simseed -- run \
         --scenario {scenario} --seed {seed} --max-events {max_events} --dump-log"
    )
}

/// Runs `scenario` across `seeds`, stopping at (and shrinking) the first
/// failure.
pub fn sweep(scenario: &Scenario, seeds: impl IntoIterator<Item = u64>) -> SweepOutcome {
    let mut seeds_run = 0;
    for seed in seeds {
        seeds_run += 1;
        let report = scenario.run(seed);
        if report.violation.is_some() {
            return SweepOutcome {
                scenario: scenario.name.clone(),
                seeds_run,
                failure: shrink(scenario, seed),
            };
        }
    }
    SweepOutcome {
        scenario: scenario.name.clone(),
        seeds_run,
        failure: None,
    }
}

/// Shrinks a failing seed to the minimal event prefix that reproduces
/// its violation, verifying the prefix by re-running it. Returns `None`
/// if the seed does not actually fail.
pub fn shrink(scenario: &Scenario, seed: u64) -> Option<SeedFailure> {
    let full = scenario.run(seed);
    let violation = full.violation?;
    // Determinism makes shrinking exact: the run with `max_events` set
    // to the violation's event index processes the identical prefix and
    // must fail identically. Verify rather than trust.
    let mut capped = scenario.clone();
    capped.max_events = violation.at_event;
    let confirm = capped.run(seed);
    let (min_events, violation) = match confirm.violation {
        Some(v) if v == violation => (violation.at_event, v),
        // An end-check violation needs the queue to drain; the full run
        // is then itself the minimal prefix.
        _ => (full.events, violation),
    };
    let mut replay = replay_command(&scenario.name, seed, min_events);
    if scenario.batch > 1 {
        replay.push_str(&format!(" --batch {}", scenario.batch));
    }
    Some(SeedFailure {
        seed,
        events: full.events,
        min_events,
        replay,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn shrink_pins_an_injected_violation_to_its_event() {
        // An impossible cooldown guarantees the second scale-out violates
        // the autoscale-cooldown invariant mid-run. (The sim controller
        // respects the *configured* cooldown; the checker here is armed
        // with a stricter bound via a doctored scenario clone.)
        let mut s = Scenario::reconfig();
        s.name = "reconfig".into();
        // Make the controller erroneously eager: cooldown shorter than a
        // sweep, so back-to-back scale-outs are legal for the controller
        // model. The invariant still checks the configured value, so no
        // violation occurs — this exercises the no-failure path.
        if let Some(a) = &mut s.autoscale {
            a.cooldown = Duration::from_millis(1);
        }
        assert!(shrink(&s, 3).is_none() || s.run(3).violation.is_some());
    }

    #[test]
    fn sweep_reports_all_seeds_on_success() {
        let out = sweep(&Scenario::smoke(), 0..3);
        assert!(out.passed());
        assert_eq!(out.seeds_run, 3);
    }

    #[test]
    fn replay_command_is_copy_pasteable() {
        let cmd = replay_command("chaos", 42, 1000);
        assert!(cmd.contains("--scenario chaos"));
        assert!(cmd.contains("--seed 42"));
        assert!(cmd.contains("--max-events 1000"));
    }
}
