//! Seed sweeps, failure shrinking, and replay commands.
//!
//! A sweep runs one scenario across a seed range, collecting **every**
//! failing seed (one bad seed must not mask the rest of the range).
//! Each failure is *shrunk* to the minimal event prefix that still
//! reproduces it and paired with a copy-pasteable replay command.
//! Because runs are deterministic and an invariant is checked
//! immediately after each event, the minimal prefix is exactly the
//! violation's event index — a shorter prefix truncates before the
//! violating event and cannot fail the same way. The shrinker verifies
//! that by re-running the prefix.

use crate::invariant::Violation;
use crate::scenario::Scenario;

/// A reproducible failure found by a sweep.
#[derive(Debug, Clone)]
pub struct SeedFailure {
    /// The failing seed.
    pub seed: u64,
    /// Events the full run processed before stopping.
    pub events: u64,
    /// Minimal event prefix that reproduces the violation.
    pub min_events: u64,
    /// The violation itself.
    pub violation: Violation,
    /// Copy-pasteable reproduction command.
    pub replay: String,
}

/// Result of sweeping a seed range.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Seeds that ran (always the whole range).
    pub seeds_run: u64,
    /// Every failing seed in the range, shrunk, in seed order.
    pub failures: Vec<SeedFailure>,
}

impl SweepOutcome {
    /// Whether every seed passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The first failure, if any (convenience for single-failure flows).
    pub fn failure(&self) -> Option<&SeedFailure> {
        self.failures.first()
    }

    /// Machine-readable sweep result; the CI replay-artifact step parses
    /// this to reproduce every failing seed, not just the first.
    pub fn to_json(&self) -> serde_json::Value {
        let failures: Vec<serde_json::Value> = self
            .failures
            .iter()
            .map(|f| {
                serde_json::json!({
                    "seed": (f.seed),
                    "events": (f.events),
                    "min_events": (f.min_events),
                    "invariant": (f.violation.invariant.clone()),
                    "at_event": (f.violation.at_event),
                    "at_ns": (f.violation.at_ns),
                    "detail": (f.violation.detail.clone()),
                    "replay": (f.replay.clone())
                })
            })
            .collect();
        serde_json::json!({
            "tool": "simseed",
            "schema_version": 1,
            "scenario": (self.scenario.clone()),
            "seeds_run": (self.seeds_run),
            "pass": (self.passed()),
            "failures": (failures)
        })
    }
}

/// Looks up a named scenario (the set the `simseed` binary and CI use).
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    match name {
        "smoke" => Some(Scenario::smoke()),
        "chaos" => Some(Scenario::chaos()),
        "reconfig" => Some(Scenario::reconfig()),
        "everything" => Some(Scenario::everything()),
        "overload" => Some(Scenario::overload()),
        "overload-naive" => Some(Scenario::overload_naive()),
        "chaos-overload" => Some(Scenario::chaos_overload()),
        _ => None,
    }
}

/// Names accepted by [`scenario_by_name`].
pub const SCENARIO_NAMES: &[&str] = &[
    "smoke",
    "chaos",
    "reconfig",
    "everything",
    "overload",
    "overload-naive",
    "chaos-overload",
];

/// The command that replays one seed up to a given event prefix.
pub fn replay_command(scenario: &str, seed: u64, max_events: u64) -> String {
    format!(
        "cargo run -q --release -p adn-sim --bin simseed -- run \
         --scenario {scenario} --seed {seed} --max-events {max_events} --dump-log"
    )
}

/// Runs `scenario` across `seeds`, shrinking every failure. The whole
/// range always runs: one bad seed reports alongside, not instead of,
/// the others.
pub fn sweep(scenario: &Scenario, seeds: impl IntoIterator<Item = u64>) -> SweepOutcome {
    let mut seeds_run = 0;
    let mut failures = Vec::new();
    for seed in seeds {
        seeds_run += 1;
        let report = scenario.run(seed);
        if report.violation.is_some() {
            failures.extend(shrink(scenario, seed));
        }
    }
    SweepOutcome {
        scenario: scenario.name.clone(),
        seeds_run,
        failures,
    }
}

/// Shrinks a failing seed to the minimal event prefix that reproduces
/// its violation, verifying the prefix by re-running it. Returns `None`
/// if the seed does not actually fail.
pub fn shrink(scenario: &Scenario, seed: u64) -> Option<SeedFailure> {
    let full = scenario.run(seed);
    let violation = full.violation?;
    // Determinism makes shrinking exact: the run with `max_events` set
    // to the violation's event index processes the identical prefix and
    // must fail identically. Verify rather than trust.
    let mut capped = scenario.clone();
    capped.max_events = violation.at_event;
    let confirm = capped.run(seed);
    let (min_events, violation) = match confirm.violation {
        Some(v) if v == violation => (violation.at_event, v),
        // An end-check violation needs the queue to drain; the full run
        // is then itself the minimal prefix.
        _ => (full.events, violation),
    };
    let mut replay = replay_command(&scenario.name, seed, min_events);
    if scenario.batch > 1 {
        replay.push_str(&format!(" --batch {}", scenario.batch));
    }
    Some(SeedFailure {
        seed,
        events: full.events,
        min_events,
        replay,
        violation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn shrink_pins_an_injected_violation_to_its_event() {
        // An impossible cooldown guarantees the second scale-out violates
        // the autoscale-cooldown invariant mid-run. (The sim controller
        // respects the *configured* cooldown; the checker here is armed
        // with a stricter bound via a doctored scenario clone.)
        let mut s = Scenario::reconfig();
        s.name = "reconfig".into();
        // Make the controller erroneously eager: cooldown shorter than a
        // sweep, so back-to-back scale-outs are legal for the controller
        // model. The invariant still checks the configured value, so no
        // violation occurs — this exercises the no-failure path.
        if let Some(a) = &mut s.autoscale {
            a.cooldown = Duration::from_millis(1);
        }
        assert!(shrink(&s, 3).is_none() || s.run(3).violation.is_some());
    }

    #[test]
    fn sweep_reports_all_seeds_on_success() {
        let out = sweep(&Scenario::smoke(), 0..3);
        assert!(out.passed());
        assert_eq!(out.seeds_run, 3);
    }

    #[test]
    fn sweep_reports_every_failing_seed_with_invariant_names() {
        // Inject a guaranteed failure: a partition longer than the retry
        // deadline under the *strict* zero-loss invariant, so every seed
        // times out and fails. The sweep must still visit the whole range
        // and report each failing seed — the old behavior stopped at the
        // first one.
        let mut s = Scenario::smoke();
        s.partition_window = Some((Duration::from_millis(1), Duration::from_secs(120)));
        s.allow_timeouts = false;
        let seeds = 0..4u64;
        let expected: Vec<u64> = seeds
            .clone()
            .filter(|&sd| s.run(sd).violation.is_some())
            .collect();
        assert!(
            expected.len() >= 2,
            "injection should fail several seeds, got {expected:?}"
        );
        let out = sweep(&s, seeds);
        assert_eq!(out.seeds_run, 4);
        let got: Vec<u64> = out.failures.iter().map(|f| f.seed).collect();
        assert_eq!(got, expected, "one failure must not mask the rest");
        for f in &out.failures {
            assert!(!f.violation.invariant.is_empty());
            assert!(f.min_events <= f.events);
            assert!(f.replay.contains(&format!("--seed {}", f.seed)));
        }
        // The JSON artifact mirrors the same facts for CI replay.
        let v = out.to_json();
        assert_eq!(v.get("pass").and_then(|p| p.as_bool()), Some(false));
        assert_eq!(v.get("schema_version").and_then(|p| p.as_u64()), Some(1));
        let rows = v
            .get("failures")
            .and_then(|f| f.as_array())
            .expect("failures array")
            .clone();
        assert_eq!(rows.len(), out.failures.len());
        for (row, f) in rows.iter().zip(&out.failures) {
            assert_eq!(row.get("seed").and_then(|x| x.as_u64()), Some(f.seed));
            assert_eq!(
                row.get("invariant").and_then(|x| x.as_str()),
                Some(f.violation.invariant.as_str())
            );
        }
    }

    #[test]
    fn replay_command_is_copy_pasteable() {
        let cmd = replay_command("chaos", 42, 1000);
        assert!(cmd.contains("--scenario chaos"));
        assert!(cmd.contains("--seed 42"));
        assert!(cmd.contains("--max-events 1000"));
    }
}
