//! # adn-sim: deterministic whole-cluster simulation
//!
//! FoundationDB-style simulation testing for the ADN runtime: an entire
//! cluster — closed-loop client, chain processors, application server,
//! controller, and a lossy network — runs on **one thread** under a
//! **virtual clock**, driven by a **seeded event executor**. Nothing
//! sleeps, nothing races, and a run's entire behavior is a pure function
//! of `(scenario, seed)`: the same seed replays byte-identically, and a
//! failing seed shrinks to the minimal event prefix that reproduces it.
//!
//! The node models are thin event-driven shells around the *real*
//! runtime components — compiled element chains ([`adn_elements`] →
//! [`adn_backend`]), dedup windows, NAT flow tables, circuit breakers,
//! and retry backoff from [`adn_rpc`], trace contexts from
//! [`adn_wire`] — so invariants are checked against production logic.
//!
//! ## Layout
//!
//! - [`executor`]: virtual clock + seeded RNG + the timed event queue,
//!   and the event-log fingerprint.
//! - [`nodes`]: message-level models of client, processor, server, and
//!   controller, plus the [`nodes::Facts`] record checkers observe.
//! - [`scenario`]: the [`Scenario`] builder and the simulation itself.
//! - [`invariant`]: the five checkers (at-most-once, zero-loss, trace
//!   well-formedness, autoscale cooldown, failover liveness) evaluated
//!   after every event.
//! - [`sweep`]: seed-range sweeps, failure shrinking, replay commands.
//! - [`matrix`]: the eval-matrix — a declarative topology × chain ×
//!   chaos × engine-tier grid where every cell is an independent
//!   deterministic scenario with two extra matrix-level checks (tier
//!   verdict identity, placement-respects-offload-verdict).
//!
//! ## Quick start
//!
//! ```
//! use adn_sim::Scenario;
//!
//! let report = Scenario::smoke().run(7);
//! assert!(report.passed(), "{:?}", report.violation);
//! // Same seed ⇒ byte-identical event log.
//! assert_eq!(report.log_text(), Scenario::smoke().run(7).log_text());
//! ```
//!
//! See `docs/testing.md` for the full workflow (seed sweeps in CI,
//! replaying failures, writing new invariants).

pub mod executor;
pub mod invariant;
pub mod matrix;
pub mod nodes;
pub mod scenario;
pub mod sweep;

pub use executor::{fingerprint, Event, SimExecutor};
pub use invariant::{Invariant, Violation};
pub use matrix::{
    run_cell, run_grid, CellResult, ChainSpec, ChaosProfile, MatrixGrid, MatrixReport, TopologySpec,
};
pub use scenario::{OverloadModel, Scenario, SimAutoscale, SimReport, SimStats};
pub use sweep::{scenario_by_name, shrink, sweep as sweep_seeds, SeedFailure, SweepOutcome};

/// The virtual clock shared with the production `Clock` abstraction —
/// re-exported under the simulator's own name.
pub use adn_wire::clock::VirtualClock as SimClock;
