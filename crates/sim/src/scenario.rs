//! Scenario construction and the simulation world itself.
//!
//! A [`Scenario`] describes a whole cluster — chain topology, workload,
//! chaos policy, failure schedule, controller knobs — and `run(seed)`
//! executes it deterministically inside a [`SimExecutor`]: one thread,
//! one RNG, virtual time only. The node models reuse the real runtime's
//! pure components (compiled element chains, dedup windows, NAT flow
//! tables, circuit breakers, retry backoff, trace contexts), so the
//! invariants checked here are checked against production logic, not a
//! simplified re-implementation.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use adn::harness::{object_store_schemas, object_store_service};
use adn_backend::jit::{compile_engine, JitTier};
use adn_backend::native::CompileOpts;
use adn_dataplane::processor::OverloadPolicy;
use adn_rpc::chaos::ChaosPolicy;
use adn_rpc::engine::{EngineChain, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage, RpcStatus};
use adn_rpc::retry::{BreakerPolicy, CircuitBreaker, DedupWindow, DegradedMode, RetryPolicy};
use adn_rpc::schema::{RpcSchema, ServiceSchema};
use adn_rpc::transport::Frame;
use adn_rpc::value::Value;
use adn_rpc::wire_format::{decode_message_exact, encode_message_to_vec};
use adn_telemetry::trace::mix64;
use adn_wire::header::{OverloadContext, Priority};
use rand::Rng;

use crate::executor::{Event, SimExecutor};
use crate::invariant::{invariants_for, Violation};
use crate::nodes::{
    AutoscaleModel, CachedAction, CallOutcome, CallState, ElementSpec, Facts, NextHop, SimClient,
    SimController, SimProcessor, SimServer, SpanFact, DEDUP_CAP,
};

/// The client's flat endpoint address.
pub const CLIENT_ADDR: u64 = 100;
/// The application server's flat endpoint address.
pub const SERVER_ADDR: u64 = 200;
/// First chain-processor address; hop `i` lives at `PROC_BASE + i`.
pub const PROC_BASE: u64 = 50;
/// First scale-out shard address.
pub const SHARD_BASE: u64 = 500;

/// Fixed one-way link latency before jitter and chaos delay.
const BASE_LATENCY: Duration = Duration::from_millis(1);
/// Uniform per-frame latency jitter bound (exclusive), in nanoseconds.
const JITTER_NS: u64 = 200_000;
/// How long a batching processor waits after the first inboxed frame
/// before draining — small against `BASE_LATENCY`, wide enough that
/// concurrent calls land in one batch.
const BATCH_WINDOW: Duration = Duration::from_micros(100);

/// Open-loop overload model for a scenario. When set, the workload
/// arrives at a fixed offered rate regardless of completions (the
/// defining condition of overload), every call is stamped with an
/// in-band deadline budget and a priority class, and the chain entry
/// becomes a single-worker bottleneck running the *real*
/// [`OverloadPolicy`] admission ladder from the dataplane serve loop.
#[derive(Debug, Clone)]
pub struct OverloadModel {
    /// Virtual service time per admitted request at the entry; capacity
    /// is `1 / service_time`.
    pub service_time: Duration,
    /// Open-loop inter-arrival gap; offered load is `1 / issue_interval`.
    pub issue_interval: Duration,
    /// Relative deadline budget stamped into each call's hop header.
    pub budget: Duration,
    /// The real dataplane admission policy (shed ladder + expired drop).
    pub policy: OverloadPolicy,
    /// Minimum fraction of issued calls that must complete `Ok` for the
    /// goodput-floor invariant; `0.0` disarms it (naive baselines).
    pub goodput_floor: f64,
}

/// Autoscale knobs for a scenario.
#[derive(Debug, Clone)]
pub struct SimAutoscale {
    /// Entry-processor forwards per sweep that trigger a scale-out.
    pub threshold: u64,
    /// Minimum virtual time between consecutive scale-outs.
    pub cooldown: Duration,
    /// Upper bound on shard replicas.
    pub max_shards: usize,
}

/// A whole-cluster test scenario. Build one with the preset constructors
/// or field-by-field, then `run(seed)` as many seeds as you like — each
/// run is deterministic and independent.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Name used in replay commands and reports.
    pub name: String,
    /// Number of chain processors; the paper-eval elements (Logging →
    /// ACL → Fault) are distributed contiguously across them, extra
    /// processors forward with an empty chain.
    pub processors: usize,
    /// Total calls the closed-loop workload issues.
    pub calls: u64,
    /// Calls kept in flight at once.
    pub concurrency: u64,
    /// Usernames cycled across calls (drives the ACL element: `bob` and
    /// `eve` are read-only and get aborted).
    pub users: Vec<String>,
    /// `Fault` element abort probability.
    pub fault_prob: f64,
    /// Link chaos applied to every frame.
    pub chaos: ChaosPolicy,
    /// Client ↔ entry partition window `(start, end)`, if any.
    pub partition_window: Option<(Duration, Duration)>,
    /// Crash `(time, processor index)`, if any.
    pub kill: Option<(Duration, usize)>,
    /// Live migration `(time, processor index)`, if any.
    pub migrate: Option<(Duration, usize)>,
    /// Controller autoscale, if enabled.
    pub autoscale: Option<SimAutoscale>,
    /// Open-loop overload model, if enabled. `None` (the default) keeps
    /// the closed-loop workload and the legacy byte-identical event log.
    pub overload: Option<OverloadModel>,
    /// Heartbeat age that declares a processor dead.
    pub heartbeat_timeout: Duration,
    /// Controller sweep interval.
    pub sweep_interval: Duration,
    /// Controller checkpoint interval.
    pub checkpoint_interval: Duration,
    /// Client retry policy (real backoff math, virtual time).
    pub retry: RetryPolicy,
    /// Client circuit-breaker policy.
    pub breaker: BreakerPolicy,
    /// Breaker-open behavior.
    pub degraded: DegradedMode,
    /// Whether calls carry trace contexts (enables the trace invariant).
    pub trace: bool,
    /// Whether timed-out calls are tolerated (true under chaos; false
    /// means the zero-loss invariant fails the run on any timeout).
    pub allow_timeouts: bool,
    /// Frames a processor drains per batch. `1` (the default) is the
    /// legacy per-frame delivery path — byte-identical to the golden log.
    /// Larger values route deliveries through a per-processor inbox that
    /// drains up to `batch` frames one batch window after the first one
    /// lands, with batch-local duplicate deferral mirroring the real
    /// serve loop.
    pub batch: usize,
    /// Element chain to distribute over the processors. `None` (the
    /// default) runs the paper-eval chain (Logging → ACL → Fault with
    /// `fault_prob`); eval-matrix cells substitute arbitrary preflighted
    /// chains here.
    pub chain_specs: Option<Vec<ElementSpec>>,
    /// Engine tier the chains compile at. `Auto` (the default) resolves
    /// exactly like production (`ADN_JIT` honored) and keeps the legacy
    /// byte-identical event log; eval-matrix pins explicit tiers to
    /// cross-check verdict-stream identity.
    pub jit: JitTier,
    /// Hard cap on processed events (replay/shrink uses this).
    pub max_events: u64,
}

impl Scenario {
    /// A quiet baseline: defaults chosen so a scenario is valid the
    /// moment it's constructed; presets tighten from here.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            processors: 1,
            calls: 20,
            concurrency: 4,
            users: vec!["alice".into()],
            fault_prob: 0.0,
            chaos: ChaosPolicy {
                drop_prob: 0.0,
                dup_prob: 0.0,
                reorder_prob: 0.0,
                delay_prob: 0.0,
                delay: Duration::ZERO,
            },
            partition_window: None,
            kill: None,
            migrate: None,
            autoscale: None,
            overload: None,
            heartbeat_timeout: Duration::from_millis(100),
            sweep_interval: Duration::from_millis(40),
            checkpoint_interval: Duration::from_millis(60),
            retry: RetryPolicy {
                max_attempts: 16,
                attempt_timeout: Duration::from_millis(250),
                base_backoff: Duration::from_millis(2),
                max_backoff: Duration::from_millis(20),
                deadline: Duration::from_secs(30),
                propagate_deadline: false,
                priority: Priority::Normal,
            },
            breaker: BreakerPolicy {
                threshold: 1000,
                cooldown: Duration::from_millis(10),
            },
            degraded: DegradedMode::FailClosed,
            trace: true,
            allow_timeouts: false,
            batch: 1,
            chain_specs: None,
            jit: JitTier::Auto,
            max_events: 500_000,
        }
    }

    /// Tiny deterministic run with a mid-run live migration; the golden
    /// event log and the determinism test use this.
    pub fn smoke() -> Self {
        let mut s = Self::new("smoke");
        s.calls = 8;
        s.concurrency = 2;
        s.migrate = Some((Duration::from_millis(8), 0));
        s
    }

    /// The chaos port of `tests/chaos_failover.rs`: paper-eval chain
    /// split over two processors under drops, dups, reorders, delays and
    /// fault injection, with an ACL-denied user in the mix.
    pub fn chaos() -> Self {
        let mut s = Self::new("chaos");
        s.processors = 2;
        s.calls = 60;
        s.concurrency = 4;
        s.users = vec!["alice".into(), "bob".into()];
        s.fault_prob = 0.02;
        s.chaos = ChaosPolicy {
            drop_prob: 0.05,
            dup_prob: 0.05,
            reorder_prob: 0.05,
            delay_prob: 0.05,
            delay: Duration::from_millis(10),
        };
        s.allow_timeouts = true;
        s
    }

    /// The reconfiguration port of `tests/reconfig_zero_loss.rs`: live
    /// migration plus load-triggered scale-out on a clean link, with the
    /// strict zero-loss invariant (any timed-out call fails the run).
    pub fn reconfig() -> Self {
        let mut s = Self::new("reconfig");
        s.processors = 2;
        s.calls = 120;
        s.concurrency = 4;
        s.migrate = Some((Duration::from_millis(50), 0));
        s.autoscale = Some(SimAutoscale {
            threshold: 15,
            cooldown: Duration::from_millis(60),
            max_shards: 3,
        });
        s
    }

    /// The acceptance scenario: chaos + processor crash/failover +
    /// autoscale in one run, all five invariants armed.
    pub fn everything() -> Self {
        let mut s = Self::new("everything");
        s.processors = 2;
        s.calls = 200;
        s.concurrency = 8;
        s.users = vec!["alice".into(), "bob".into()];
        s.fault_prob = 0.01;
        s.chaos = ChaosPolicy {
            drop_prob: 0.02,
            dup_prob: 0.02,
            reorder_prob: 0.02,
            delay_prob: 0.02,
            delay: Duration::from_millis(5),
        };
        s.kill = Some((Duration::from_millis(60), 0));
        s.autoscale = Some(SimAutoscale {
            threshold: 20,
            cooldown: Duration::from_millis(120),
            max_shards: 3,
        });
        s.allow_timeouts = true;
        s
    }

    /// Open-loop overload at 2× capacity with the shed ladder armed:
    /// service time 1ms (capacity 1000/s) against a 500µs arrival gap,
    /// 50ms budgets, and a priority mix spanning every rung. Shedding
    /// fast-fails the sheddable half so admitted traffic rides a short
    /// queue; the goodput-floor and no-expired-execution invariants
    /// check that degradation is graceful, not a collapse.
    pub fn overload() -> Self {
        let mut s = Self::new("overload");
        s.calls = 600;
        s.retry = RetryPolicy {
            max_attempts: 16,
            attempt_timeout: Duration::from_millis(20),
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(8),
            deadline: Duration::from_millis(50),
            propagate_deadline: true,
            priority: Priority::Normal,
        };
        s.allow_timeouts = true;
        s.overload = Some(OverloadModel {
            service_time: Duration::from_millis(1),
            issue_interval: Duration::from_micros(500),
            budget: Duration::from_millis(50),
            policy: OverloadPolicy {
                shed_high_water: 8,
                drop_expired: true,
                brownout: false,
            },
            goodput_floor: 0.30,
        });
        s
    }

    /// The same 2× offered load with admission control disabled — the
    /// naive FIFO baseline. Every request is accepted and serviced even
    /// after its budget is gone, so the queue grows without bound and
    /// goodput collapses; the bench quantifies the gap. The goodput
    /// floor is disarmed (collapse is the expected result), and so is
    /// the no-expired-execution invariant (nothing drops expired work).
    pub fn overload_naive() -> Self {
        let mut s = Self::overload();
        s.name = "overload-naive".into();
        let model = s.overload.as_mut().expect("overload preset sets model");
        model.policy = OverloadPolicy {
            shed_high_water: 0,
            drop_expired: false,
            brownout: false,
        };
        model.goodput_floor = 0.0;
        s
    }

    /// Overload plus link chaos: drops, dups, reorders, and delays on
    /// top of 2× offered load. The shed ladder still has to hold a
    /// (lower) goodput floor while dedup keeps retransmits from forking
    /// or resurrecting deadline budgets.
    pub fn chaos_overload() -> Self {
        let mut s = Self::overload();
        s.name = "chaos-overload".into();
        s.chaos = ChaosPolicy {
            drop_prob: 0.03,
            dup_prob: 0.03,
            reorder_prob: 0.03,
            delay_prob: 0.03,
            delay: Duration::from_millis(5),
        };
        s.overload.as_mut().expect("model set").goodput_floor = 0.18;
        s
    }

    /// The failover liveness bound this scenario's controller promises:
    /// detection needs the heartbeat to go stale (one timeout) plus at
    /// most two sweeps to notice, with one sweep of slack.
    pub fn failover_bound(&self) -> Duration {
        self.heartbeat_timeout + self.sweep_interval * 3
    }

    /// Runs the scenario under `seed` and returns the full report. Same
    /// seed, same scenario ⇒ byte-identical event log.
    pub fn run(&self, seed: u64) -> SimReport {
        let mut sim = Sim::new(self, seed);
        let mut invs = invariants_for(self);
        let mut violation: Option<Violation> = None;
        let mut truncated = false;
        'outer: while let Some((now, ev)) = sim.exec.pop() {
            sim.exec.processed += 1;
            let n = sim.exec.processed;
            sim.handle(now, ev);
            for inv in invs.iter_mut() {
                if let Err(detail) = inv.check(now, &sim.facts) {
                    violation = Some(Violation {
                        invariant: inv.name().to_string(),
                        at_event: n,
                        at_ns: now.as_nanos() as u64,
                        detail,
                    });
                    break 'outer;
                }
            }
            if n >= self.max_events {
                truncated = true;
                break;
            }
        }
        let end = sim.exec.now();
        let events = sim.exec.processed;
        if violation.is_none() && !truncated {
            for inv in invs.iter_mut() {
                if let Err(detail) = inv.check_end(end, &sim.facts) {
                    violation = Some(Violation {
                        invariant: inv.name().to_string(),
                        at_event: events,
                        at_ns: end.as_nanos() as u64,
                        detail,
                    });
                    break;
                }
            }
        }
        SimReport {
            scenario: self.name.clone(),
            seed,
            events,
            truncated,
            end_ns: end.as_nanos() as u64,
            stats: SimStats::from_facts(&sim.facts),
            violation,
            log: sim.exec.into_log(),
        }
    }
}

/// Counters summarizing one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Calls minted.
    pub calls_issued: u64,
    /// Calls completed `Ok`.
    pub calls_ok: u64,
    /// Calls rejected by an element.
    pub calls_aborted: u64,
    /// Calls that exhausted retries or deadline.
    pub calls_timed_out: u64,
    /// Calls fast-failed with a `Shed` verdict.
    pub calls_shed: u64,
    /// Shed verdicts issued by processors (admission + chain).
    pub sheds: u64,
    /// Frames dropped at admission with an exhausted budget.
    pub expired_drops: u64,
    /// Server executions of already-expired calls (should be zero when
    /// expired-drop is armed).
    pub expired_executions: u64,
    /// Deepest entry backlog observed, in queued requests.
    pub queue_peak: u64,
    /// Retransmissions.
    pub retries: u64,
    /// Frames handed to the link.
    pub frames_sent: u64,
    /// Frames delivered.
    pub frames_delivered: u64,
    /// Frames dropped by chaos or partitions.
    pub frames_dropped: u64,
    /// Frames absorbed by dead processors.
    pub frames_blackholed: u64,
    /// Dedup-window hits across processors and the server.
    pub dedup_hits: u64,
    /// Distinct calls executed at the server.
    pub server_executions: u64,
    /// Trace spans recorded.
    pub spans: u64,
    /// Failovers performed.
    pub failovers: u64,
    /// Scale-outs performed.
    pub scaleouts: u64,
    /// Live migrations performed.
    pub migrations: u64,
    /// Chain verdicts observed.
    pub verdicts: u64,
    /// FNV-1a fingerprint of the verdict stream (tier-identity check).
    pub verdict_stream: u64,
}

impl SimStats {
    fn from_facts(f: &Facts) -> Self {
        Self {
            calls_issued: f.calls_issued,
            calls_ok: f.calls_ok,
            calls_aborted: f.calls_aborted,
            calls_timed_out: f.calls_timed_out,
            calls_shed: f.calls_shed,
            sheds: f.sheds,
            expired_drops: f.expired_drops,
            expired_executions: f.expired_executions,
            queue_peak: f.queue_peak,
            retries: f.retries,
            frames_sent: f.frames_sent,
            frames_delivered: f.frames_delivered,
            frames_dropped: f.frames_dropped,
            frames_blackholed: f.frames_blackholed,
            dedup_hits: f.dedup_hits,
            server_executions: f.executions.len() as u64,
            spans: f.spans.len() as u64,
            failovers: f.failovers.len() as u64,
            scaleouts: f.scaleouts.len() as u64,
            migrations: f.migrations,
            verdicts: f.verdicts,
            verdict_stream: f.verdict_stream,
        }
    }
}

/// The result of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scenario name.
    pub scenario: String,
    /// The run seed.
    pub seed: u64,
    /// Events processed.
    pub events: u64,
    /// True when the run hit `max_events` before draining.
    pub truncated: bool,
    /// Virtual time at which the run ended, in nanoseconds.
    pub end_ns: u64,
    /// Outcome counters.
    pub stats: SimStats,
    /// First invariant violation, if any.
    pub violation: Option<Violation>,
    /// The deterministic event log.
    pub log: Vec<String>,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }

    /// The log as one newline-joined string (trailing newline included).
    pub fn log_text(&self) -> String {
        let mut s = self.log.join("\n");
        s.push('\n');
        s
    }

    /// FNV-1a fingerprint of the event log.
    pub fn fingerprint(&self) -> u64 {
        crate::executor::fingerprint(&self.log)
    }
}

/// Priority mix for the open-loop workload: half sheddable bulk, a
/// quarter normal, a quarter critical — enough spread to exercise every
/// rung of the shed ladder.
fn priority_for(index: u64) -> Priority {
    match index % 4 {
        0 | 2 => Priority::Sheddable,
        1 => Priority::Normal,
        _ => Priority::Critical,
    }
}

/// Builds the paper-eval element list for a scenario.
fn paper_elements(fault_prob: f64) -> Vec<ElementSpec> {
    vec![
        ElementSpec::plain("Logging"),
        ElementSpec::plain("Acl"),
        ElementSpec {
            name: "Fault".into(),
            args: vec![("abort_prob".into(), Value::F64(fault_prob))],
            source: None,
        },
    ]
}

/// Stable discriminant for the verdict-stream fingerprint.
fn verdict_tag(v: &Verdict) -> u8 {
    match v {
        Verdict::Forward => 0,
        Verdict::Drop => 1,
        Verdict::Abort { .. } => 2,
        Verdict::Shed => 3,
    }
}

/// Abort code folded into the verdict-stream fingerprint (0 otherwise).
fn verdict_code(v: &Verdict) -> u64 {
    match v {
        Verdict::Abort { code, .. } => *code as u64,
        _ => 0,
    }
}

/// Compiles a chain from element specs with a fixed per-run compile seed
/// (rebuilds during failover/migration replay the same random stream).
fn build_chain(
    specs: &[ElementSpec],
    req: &RpcSchema,
    resp: &RpcSchema,
    compile_seed: u64,
    jit: JitTier,
) -> EngineChain {
    let mut chain = EngineChain::new();
    for spec in specs {
        let ir = match &spec.source {
            Some(src) => {
                let ast = adn_dsl::parser::parse_element(src)
                    .unwrap_or_else(|e| panic!("element {} must parse: {e:?}", spec.name));
                let checked = adn_dsl::typecheck::check_element(&ast, req, resp)
                    .unwrap_or_else(|e| panic!("element {} must typecheck: {e:?}", spec.name));
                adn_ir::lower_element(&checked, &[], req, resp)
                    .unwrap_or_else(|e| panic!("element {} must lower: {e:?}", spec.name))
            }
            None => adn_elements::build(&spec.name, &spec.args, req, resp)
                .unwrap_or_else(|e| panic!("element {} must build: {e:?}", spec.name)),
        };
        chain.push(compile_engine(
            &ir,
            &CompileOpts {
                seed: compile_seed,
                replicas: vec![],
                jit,
            },
        ));
    }
    chain
}

/// The live simulation: executor + node models + observed facts.
pub(crate) struct Sim<'a> {
    cfg: &'a Scenario,
    pub exec: SimExecutor,
    pub facts: Facts,
    client: SimClient,
    procs: BTreeMap<u64, SimProcessor>,
    server: SimServer,
    ctl: SimController,
    /// Chain-entry address (autoscale target, partition endpoint).
    entry: u64,
    /// Entry-processor forwards since the last sweep (autoscale signal).
    entry_load: u64,
    /// Scale-out shard addresses, in creation order.
    shards: Vec<u64>,
    /// Element specs shards are built from (set at first scale-out).
    shard_elements: Vec<ElementSpec>,
    /// Downstream hop shards forward to (set at first scale-out).
    shard_downstream: u64,
    partitioned: bool,
    compile_seed: u64,
    service: Arc<ServiceSchema>,
    req_schema: Arc<RpcSchema>,
    resp_schema: Arc<RpcSchema>,
}

impl<'a> Sim<'a> {
    pub fn new(cfg: &'a Scenario, seed: u64) -> Self {
        let (req_schema, resp_schema) = object_store_schemas();
        let service = object_store_service();
        let mut exec = SimExecutor::new(seed);
        let compile_seed = mix64(seed ^ 0x0ADD_5EED);

        // Distribute the chain contiguously over N hops; hops past the
        // element count forward with an empty chain.
        let n = cfg.processors.max(1);
        let elements = cfg
            .chain_specs
            .clone()
            .unwrap_or_else(|| paper_elements(cfg.fault_prob));
        let len = elements.len().max(1);
        let mut groups: Vec<Vec<ElementSpec>> = vec![Vec::new(); n];
        for (j, spec) in elements.into_iter().enumerate() {
            let target = (j * n) / len;
            groups[target.min(n - 1)].push(spec);
        }
        let mut procs = BTreeMap::new();
        for (i, group) in groups.into_iter().enumerate() {
            let addr = PROC_BASE + i as u64;
            let next = if i + 1 < n {
                NextHop::Fixed(PROC_BASE + i as u64 + 1)
            } else {
                NextHop::Fixed(SERVER_ADDR)
            };
            let chain = build_chain(&group, &req_schema, &resp_schema, compile_seed, cfg.jit);
            procs.insert(addr, SimProcessor::new(addr, chain, group, next));
        }

        let client = SimClient {
            addr: CLIENT_ADDR,
            via: PROC_BASE,
            server: SERVER_ADDR,
            policy: cfg.retry,
            breaker: CircuitBreaker::new(cfg.breaker),
            degraded: cfg.degraded,
            calls: BTreeMap::new(),
            scheduled: 0,
            total: cfg.calls,
            concurrency: cfg.concurrency.max(1),
        };
        let server = SimServer {
            addr: SERVER_ADDR,
            dedup: DedupWindow::new(DEDUP_CAP),
            resp_schema: resp_schema.clone(),
        };
        let ctl = SimController {
            heartbeat_timeout: cfg.heartbeat_timeout,
            sweep_interval: cfg.sweep_interval,
            checkpoint_interval: cfg.checkpoint_interval,
            checkpoints: BTreeMap::new(),
            autoscale: cfg.autoscale.as_ref().map(|a| AutoscaleModel {
                threshold: a.threshold,
                cooldown: a.cooldown,
                max_shards: a.max_shards,
            }),
            last_scaleout: None,
            failed_over: BTreeMap::new(),
        };

        // Seed the event queue: workload warm-up, controller loops, and
        // the scenario's failure schedule.
        let mut client = client;
        if let Some(model) = &cfg.overload {
            // Open loop: every arrival is scheduled up front at the
            // offered rate; completions never gate arrivals.
            for i in 0..client.total {
                exec.schedule_at(
                    Duration::from_millis(1) + model.issue_interval * i as u32,
                    Event::IssueCall { index: i },
                );
            }
            client.scheduled = client.total;
        } else {
            let warmup = client.concurrency.min(client.total);
            for i in 0..warmup {
                exec.schedule_at(
                    Duration::from_millis(1) + Duration::from_micros(100 * i),
                    Event::IssueCall { index: i },
                );
            }
            client.scheduled = warmup;
        }
        exec.schedule_at(cfg.sweep_interval, Event::Sweep);
        exec.schedule_at(cfg.checkpoint_interval, Event::Checkpoint);
        if let Some((t, idx)) = cfg.kill {
            exec.schedule_at(
                t,
                Event::Kill {
                    addr: PROC_BASE + idx as u64,
                },
            );
        }
        if let Some((t, idx)) = cfg.migrate {
            exec.schedule_at(
                t,
                Event::Migrate {
                    addr: PROC_BASE + idx as u64,
                },
            );
        }
        if let Some((start, end)) = cfg.partition_window {
            exec.schedule_at(start, Event::PartitionStart);
            exec.schedule_at(end.max(start), Event::PartitionEnd);
        }
        Self {
            cfg,
            exec,
            facts: Facts::default(),
            client,
            procs,
            server,
            ctl,
            entry: PROC_BASE,
            entry_load: 0,
            shards: Vec::new(),
            shard_elements: Vec::new(),
            shard_downstream: SERVER_ADDR,
            partitioned: false,
            compile_seed,
            service,
            req_schema,
            resp_schema,
        }
    }

    fn client_done(&self) -> bool {
        self.facts.calls_resolved() >= self.client.total
    }

    pub fn handle(&mut self, now: Duration, ev: Event) {
        match ev {
            Event::IssueCall { index } => self.issue_call(now, index),
            Event::SendAttempt { call_id, attempt } => self.send_attempt(now, call_id, attempt),
            Event::RetryFire { call_id, attempt } => self.retry_fire(now, call_id, attempt),
            Event::Deliver { frame } => self.deliver(now, frame),
            Event::FlushBatch { addr } => self.flush_batch(now, addr),
            Event::Sweep => self.sweep(now),
            Event::Checkpoint => self.checkpoint(now),
            Event::Kill { addr } => self.kill(now, addr),
            Event::Migrate { addr } => self.migrate(now, addr),
            Event::PartitionStart => {
                self.partitioned = true;
                self.exec.log("partition_start");
            }
            Event::PartitionEnd => {
                self.partitioned = false;
                self.exec.log("partition_end");
            }
        }
    }

    // ---- link ----------------------------------------------------------

    /// Applies partition and chaos policy (rolls in the same order as
    /// `ChaosLink`: drop, delay, reorder, dup) and schedules delivery.
    fn send_frame(&mut self, frame: Frame) {
        self.send_frame_extra(frame, Duration::ZERO);
    }

    /// [`Self::send_frame`] with extra latency prepended — the overload
    /// model charges an admitted request's queueing + service time here,
    /// so chaos rolls stay in the same order (and the zero-extra path
    /// stays byte-identical to the golden log).
    fn send_frame_extra(&mut self, frame: Frame, extra: Duration) {
        self.facts.frames_sent += 1;
        if self.partitioned {
            let (a, b) = (frame.src, frame.dst);
            let (cl, entry) = (self.client.addr, self.entry);
            if (a == cl && b == entry) || (a == entry && b == cl) {
                self.facts.frames_dropped += 1;
                self.exec.log(format!("partition_drop src={a} dst={b}"));
                return;
            }
        }
        let p = self.cfg.chaos;
        if p.drop_prob > 0.0 && self.exec.rng.gen_bool(p.drop_prob) {
            self.facts.frames_dropped += 1;
            self.exec
                .log(format!("chaos_drop src={} dst={}", frame.src, frame.dst));
            return;
        }
        let mut latency =
            extra + BASE_LATENCY + Duration::from_nanos(self.exec.rng.gen_range(0..JITTER_NS));
        if p.delay_prob > 0.0 && self.exec.rng.gen_bool(p.delay_prob) {
            latency += p.delay;
            self.exec
                .log(format!("chaos_delay src={} dst={}", frame.src, frame.dst));
        }
        if p.reorder_prob > 0.0 && self.exec.rng.gen_bool(p.reorder_prob) {
            // Holding a frame back past its successors is, in virtual
            // time, extra latency.
            latency += BASE_LATENCY * 2;
            self.exec
                .log(format!("chaos_reorder src={} dst={}", frame.src, frame.dst));
        }
        if p.dup_prob > 0.0 && self.exec.rng.gen_bool(p.dup_prob) {
            self.exec
                .log(format!("chaos_dup src={} dst={}", frame.src, frame.dst));
            self.exec.schedule_after(
                latency + BASE_LATENCY / 2,
                Event::Deliver {
                    frame: frame.clone(),
                },
            );
        }
        self.exec.schedule_after(latency, Event::Deliver { frame });
    }

    fn deliver(&mut self, now: Duration, frame: Frame) {
        self.facts.frames_delivered += 1;
        let dst = frame.dst;
        if dst == self.client.addr {
            self.client_recv(now, frame);
        } else if dst == self.server.addr {
            self.server_recv(frame);
        } else if self.procs.contains_key(&dst) {
            self.proc_recv(now, frame);
        } else {
            self.exec.log(format!("drop_unknown dst={dst}"));
        }
    }

    // ---- client --------------------------------------------------------

    fn issue_call(&mut self, now: Duration, index: u64) {
        let call_id = SimClient::call_id(index);
        let user = self.cfg.users[index as usize % self.cfg.users.len()].clone();
        let object_id = index;
        let mut msg = RpcMessage::request(call_id, 1, self.req_schema.clone());
        msg.src = self.client.addr;
        msg.dst = self.client.server;
        msg.set("object_id", Value::U64(object_id));
        msg.set("username", Value::Str(user.clone()));
        msg.set("payload", Value::Bytes(b"sim".to_vec()));
        if self.cfg.trace {
            msg.trace = Some(adn_wire::header::TraceContext::root(mix64(call_id)));
        }
        let priority = if self.cfg.overload.is_some() {
            priority_for(index)
        } else {
            Priority::Normal
        };
        if let Some(model) = &self.cfg.overload {
            // In-band stamp: relative budget + priority ride the hop
            // header; retransmits reuse the payload so the stamp is
            // identical across attempts (no forked budgets).
            msg.deadline = Some(OverloadContext::root(
                model.budget.as_nanos() as u64,
                priority,
            ));
        }
        let payload = encode_message_to_vec(&msg).expect("request encodes");
        self.client.calls.insert(
            call_id,
            CallState {
                object_id,
                user: user.clone(),
                payload,
                attempt: 1,
                failures: 0,
                deadline: now + self.client.policy.deadline,
                priority,
                outcome: None,
            },
        );
        self.facts.calls_issued += 1;
        self.exec
            .log(format!("issue call={call_id} obj={object_id} user={user}"));
        self.exec.schedule_after(
            Duration::ZERO,
            Event::SendAttempt {
                call_id,
                attempt: 1,
            },
        );
    }

    fn send_attempt(&mut self, now: Duration, call_id: u64, attempt: u32) {
        let Some(call) = self.client.calls.get(&call_id) else {
            return;
        };
        if call.outcome.is_some() || call.attempt != attempt {
            return; // stale timer or already resolved
        }
        let deadline = call.deadline;
        if now >= deadline {
            self.resolve_call(
                call_id,
                CallOutcome::TimedOut,
                format!("call_timeout call={call_id}"),
            );
            return;
        }
        let payload = call.payload.clone();
        let dst = if self.client.breaker.allow(now) {
            self.client.via
        } else {
            match self.client.degraded {
                DegradedMode::FailOpen => {
                    // Availability over policy: skip the (dead) chain.
                    self.exec.log(format!("breaker_bypass call={call_id}"));
                    self.client.server
                }
                DegradedMode::FailClosed => {
                    self.resolve_call(
                        call_id,
                        CallOutcome::TimedOut,
                        format!("breaker_reject call={call_id}"),
                    );
                    return;
                }
            }
        };
        self.exec
            .log(format!("send call={call_id} attempt={attempt} dst={dst}"));
        self.send_frame(Frame {
            src: self.client.addr,
            dst,
            payload,
        });
        let wait = self
            .client
            .policy
            .attempt_timeout
            .min(deadline.saturating_sub(now))
            .max(Duration::from_nanos(1));
        self.exec
            .schedule_after(wait, Event::RetryFire { call_id, attempt });
    }

    fn retry_fire(&mut self, now: Duration, call_id: u64, attempt: u32) {
        let Some(call) = self.client.calls.get_mut(&call_id) else {
            return;
        };
        if call.outcome.is_some() || call.attempt != attempt {
            return; // the call moved on; this timer is stale
        }
        call.failures += 1;
        let failures = call.failures;
        let deadline = call.deadline;
        self.client.breaker.record_failure(now);
        if failures >= self.client.policy.max_attempts {
            self.resolve_call(
                call_id,
                CallOutcome::TimedOut,
                format!("call_timeout call={call_id} attempts={failures}"),
            );
            return;
        }
        let backoff = self.client.policy.backoff(failures, &mut self.exec.rng);
        if now + backoff >= deadline {
            self.resolve_call(
                call_id,
                CallOutcome::TimedOut,
                format!("call_timeout call={call_id} attempts={failures}"),
            );
            return;
        }
        self.client
            .calls
            .get_mut(&call_id)
            .expect("checked")
            .attempt = attempt + 1;
        self.facts.retries += 1;
        self.exec
            .log(format!("retry call={call_id} attempt={}", attempt + 1));
        self.exec.schedule_after(
            backoff,
            Event::SendAttempt {
                call_id,
                attempt: attempt + 1,
            },
        );
    }

    fn client_recv(&mut self, _now: Duration, frame: Frame) {
        let msg = match decode_message_exact(&frame.payload, &self.service) {
            Ok(m) => m,
            Err(e) => {
                self.exec.log(format!("client_decode_error {e:?}"));
                return;
            }
        };
        let call_id = msg.call_id;
        let resolved = match self.client.calls.get(&call_id) {
            None => true,
            Some(c) => c.outcome.is_some(),
        };
        if resolved {
            self.exec.log(format!("late_resp call={call_id}"));
            return;
        }
        self.client.breaker.record_success();
        match &msg.status {
            RpcStatus::Ok => {
                self.resolve_call(call_id, CallOutcome::Ok, format!("call_ok call={call_id}"));
            }
            RpcStatus::Aborted { code, .. } => {
                let line = format!("call_abort call={call_id} code={code}");
                self.resolve_call(call_id, CallOutcome::Aborted, line);
            }
            RpcStatus::Shed => {
                // Definitive fast-fail: the client backs off instead of
                // retrying into an overloaded chain.
                let line = format!("call_shed call={call_id}");
                self.resolve_call(call_id, CallOutcome::Shed, line);
            }
        }
    }

    /// Marks a call terminal, logs `line`, and refills the closed loop.
    fn resolve_call(&mut self, call_id: u64, outcome: CallOutcome, line: String) {
        let call = self.client.calls.get_mut(&call_id).expect("known call");
        if call.outcome.is_some() {
            return;
        }
        call.outcome = Some(outcome);
        match outcome {
            CallOutcome::Ok => self.facts.calls_ok += 1,
            CallOutcome::Aborted => self.facts.calls_aborted += 1,
            CallOutcome::TimedOut => self.facts.calls_timed_out += 1,
            CallOutcome::Shed => self.facts.calls_shed += 1,
        }
        self.exec.log(line);
        if self.client.scheduled < self.client.total {
            let index = self.client.scheduled;
            self.client.scheduled += 1;
            self.exec
                .schedule_after(Duration::from_micros(200), Event::IssueCall { index });
        }
    }

    // ---- processors ----------------------------------------------------

    fn proc_recv(&mut self, now: Duration, frame: Frame) {
        let addr = frame.dst;
        {
            let p = self.procs.get_mut(&addr).expect("routed to a processor");
            if !p.alive {
                self.facts.frames_blackholed += 1;
                self.exec.log(format!("blackhole addr={addr}"));
                return;
            }
            p.last_beat = now;
            if self.cfg.batch > 1 {
                p.inbox.push(frame);
                if !p.flush_pending {
                    p.flush_pending = true;
                    self.exec
                        .schedule_after(BATCH_WINDOW, Event::FlushBatch { addr });
                }
                return;
            }
        }
        self.proc_one(now, frame);
    }

    /// Decodes one frame and runs it through the per-message processor
    /// path (the `batch == 1` hot path, and phase 4 of a batch drain).
    fn proc_one(&mut self, now: Duration, frame: Frame) {
        let msg = match decode_message_exact(&frame.payload, &self.service) {
            Ok(m) => m,
            Err(e) => {
                self.exec
                    .log(format!("proc_decode_error addr={} {e:?}", frame.dst));
                return;
            }
        };
        match msg.kind {
            MessageKind::Request => self.proc_request(now, frame, msg),
            MessageKind::Response => self.proc_response(frame, msg),
        }
    }

    /// Drains up to `batch` frames from a processor's inbox in arrival
    /// order, mirroring the real serve loop's batch pipeline: duplicates
    /// of a message already in the batch are deferred until the
    /// original's verdict is cached, then replayed from the dedup window
    /// — so a retransmit landing in the same batch as its original can
    /// never execute twice.
    fn flush_batch(&mut self, now: Duration, addr: u64) {
        let Some(p) = self.procs.get_mut(&addr) else {
            return;
        };
        p.flush_pending = false;
        if p.inbox.is_empty() {
            return;
        }
        let take = self.cfg.batch.min(p.inbox.len());
        let frames: Vec<Frame> = p.inbox.drain(..take).collect();
        let alive = p.alive;
        if !p.inbox.is_empty() {
            p.flush_pending = true;
            self.exec
                .schedule_after(BATCH_WINDOW, Event::FlushBatch { addr });
        }
        if !alive {
            // Killed while the batch waited in the inbox: it blackholes,
            // exactly as queued frames die with the real worker thread.
            self.facts.frames_blackholed += frames.len() as u64;
            self.exec
                .log(format!("blackhole_batch addr={addr} n={}", frames.len()));
            return;
        }
        self.exec
            .log(format!("batch addr={addr} n={}", frames.len()));
        let mut deferred: Vec<Frame> = Vec::new();
        let mut seen_req: Vec<(u64, u64)> = Vec::new();
        let mut seen_resp: Vec<u64> = Vec::new();
        for frame in frames {
            let msg = match decode_message_exact(&frame.payload, &self.service) {
                Ok(m) => m,
                Err(e) => {
                    self.exec
                        .log(format!("proc_decode_error addr={addr} {e:?}"));
                    continue;
                }
            };
            match msg.kind {
                MessageKind::Request => {
                    let key = (frame.src, msg.call_id);
                    if seen_req.contains(&key) {
                        self.exec
                            .log(format!("batch_defer addr={addr} call={}", msg.call_id));
                        deferred.push(frame);
                    } else {
                        seen_req.push(key);
                        self.proc_request(now, frame, msg);
                    }
                }
                MessageKind::Response => {
                    if seen_resp.contains(&msg.call_id) {
                        self.exec
                            .log(format!("batch_defer addr={addr} call={}", msg.call_id));
                        deferred.push(frame);
                    } else {
                        seen_resp.push(msg.call_id);
                        self.proc_response(frame, msg);
                    }
                }
            }
        }
        // Phase 4: deferred duplicates replay from the now-populated
        // caches (each one lands a dedup hit, never a second execution).
        for frame in deferred {
            self.proc_one(now, frame);
        }
    }

    fn proc_request(&mut self, now: Duration, frame: Frame, mut msg: RpcMessage) {
        let addr = frame.dst;
        let key = (frame.src, msg.call_id);
        let (cached, backlog_wait) = {
            let p = self.procs.get_mut(&addr).expect("alive processor");
            (
                p.req_cache.get(&key).cloned(),
                p.busy_until.saturating_sub(now),
            )
        };
        if let Some(cached) = cached {
            self.facts.dedup_hits += 1;
            match cached {
                CachedAction::Sent(f) => {
                    self.exec
                        .log(format!("dedup_replay addr={addr} call={}", msg.call_id));
                    // Under the overload model the cached verdict exists
                    // the moment the original was *admitted*, but its
                    // output cannot leave before the worker reaches it —
                    // replays are charged the current backlog so a
                    // retransmit never leapfrogs the queue it is in.
                    let extra = if self.cfg.overload.is_some() && addr == self.entry {
                        backlog_wait
                    } else {
                        Duration::ZERO
                    };
                    self.send_frame_extra(f, extra);
                }
                CachedAction::Dropped => {
                    self.exec
                        .log(format!("dedup_drop addr={addr} call={}", msg.call_id));
                }
            }
            return;
        }
        // Overload admission at the bottleneck hop, mirroring the real
        // serve loop's classify phase: charge the queueing delay against
        // the in-band budget, drop expired work, shed below the ladder
        // floor — all before the chain runs. Dedup replays above bypass
        // admission: their verdict was already paid for.
        let mut queue_extra = Duration::ZERO;
        if self.cfg.overload.is_some() && addr == self.entry {
            let model = self.cfg.overload.as_ref().expect("checked");
            let (wait, backlog) = {
                let p = self.procs.get_mut(&addr).expect("alive processor");
                let wait = p.busy_until.saturating_sub(now);
                let backlog = (wait.as_nanos() / model.service_time.as_nanos().max(1)) as usize;
                (wait, backlog)
            };
            self.facts.queue_peak = self.facts.queue_peak.max(backlog as u64);
            let remaining = msg.deadline.map(|d| d.consume(wait.as_nanos() as u64));
            if model.policy.drop_expired && remaining.as_ref().is_some_and(|d| d.expired()) {
                // Counted, never cached: a retransmit gets a fresh
                // admission decision instead of a replayed corpse.
                self.facts.expired_drops += 1;
                self.exec
                    .log(format!("expired_drop addr={addr} call={}", msg.call_id));
                return;
            }
            let priority = remaining.as_ref().map_or(Priority::Normal, |d| d.priority);
            if priority < model.policy.admission_floor(backlog) {
                // Fast-fail before any work: tell the client to back
                // off. Not cached either — admission is pre-execution.
                self.facts.sheds += 1;
                self.exec.log(format!(
                    "shed addr={addr} call={} prio={}",
                    msg.call_id, priority as u8
                ));
                let mut resp = RpcMessage::response_to(&msg, self.resp_schema.clone());
                resp.status = RpcStatus::Shed;
                resp.src = addr;
                resp.dst = frame.src;
                resp.deadline = remaining;
                let payload = encode_message_to_vec(&resp).expect("shed encodes");
                self.send_frame(Frame {
                    src: addr,
                    dst: frame.src,
                    payload,
                });
                return;
            }
            // Admitted: the forwarded hop carries the decremented budget,
            // and the single worker is busy for one more service time.
            msg.deadline = remaining;
            let p = self.procs.get_mut(&addr).expect("alive processor");
            p.busy_until = now.max(p.busy_until) + model.service_time;
            queue_extra = wait + model.service_time;
        }
        let mut out: Option<Frame> = None;
        {
            let p = self.procs.get_mut(&addr).expect("alive processor");
            {
                if let Some(ctx) = msg.trace {
                    if ctx.budget {
                        self.facts.spans.push(SpanFact {
                            trace_id: ctx.trace_id,
                            span_id: ctx.span_at(addr),
                            parent_span: ctx.parent_span,
                            processor: addr,
                        });
                    }
                    msg.trace = Some(ctx.child_from(addr));
                }
                let verdict = p.chain.process(&mut msg);
                self.facts.note_verdict(
                    0,
                    addr,
                    msg.call_id,
                    verdict_tag(&verdict),
                    verdict_code(&verdict),
                );
                match verdict {
                    Verdict::Forward => {
                        p.flows.insert(msg.call_id, frame.src);
                        let oid = match msg.get("object_id") {
                            Some(Value::U64(v)) => *v,
                            _ => msg.call_id,
                        };
                        let next = match &p.next_req {
                            NextHop::Fixed(a) => *a,
                            NextHop::Sharded(v) => v[(mix64(oid) % v.len() as u64) as usize],
                        };
                        msg.src = addr;
                        msg.dst = next;
                        let payload = encode_message_to_vec(&msg).expect("forward encodes");
                        let f = Frame {
                            src: addr,
                            dst: next,
                            payload,
                        };
                        p.req_cache.insert(key, CachedAction::Sent(f.clone()));
                        if addr == self.entry {
                            self.entry_load += 1;
                        }
                        self.exec
                            .log(format!("fwd addr={addr} call={} dst={next}", msg.call_id));
                        out = Some(f);
                    }
                    Verdict::Drop => {
                        p.req_cache.insert(key, CachedAction::Dropped);
                        self.exec
                            .log(format!("chain_drop addr={addr} call={}", msg.call_id));
                    }
                    Verdict::Abort { code, message } => {
                        let mut resp = RpcMessage::response_to(&msg, self.resp_schema.clone());
                        resp.status = RpcStatus::Aborted { code, message };
                        resp.src = addr;
                        resp.dst = frame.src;
                        let payload = encode_message_to_vec(&resp).expect("abort encodes");
                        let f = Frame {
                            src: addr,
                            dst: frame.src,
                            payload,
                        };
                        p.req_cache.insert(key, CachedAction::Sent(f.clone()));
                        self.exec.log(format!(
                            "abort addr={addr} call={} code={code}",
                            msg.call_id
                        ));
                        out = Some(f);
                    }
                    Verdict::Shed => {
                        // A chain element shed this request. Unlike an
                        // admission shed the chain partially ran, so the
                        // verdict is cached and replayed on retransmit.
                        let mut resp = RpcMessage::response_to(&msg, self.resp_schema.clone());
                        resp.status = RpcStatus::Shed;
                        resp.src = addr;
                        resp.dst = frame.src;
                        let payload = encode_message_to_vec(&resp).expect("shed encodes");
                        let f = Frame {
                            src: addr,
                            dst: frame.src,
                            payload,
                        };
                        p.req_cache.insert(key, CachedAction::Sent(f.clone()));
                        self.facts.sheds += 1;
                        self.exec
                            .log(format!("chain_shed addr={addr} call={}", msg.call_id));
                        out = Some(f);
                    }
                }
            }
        }
        if let Some(f) = out {
            self.send_frame_extra(f, queue_extra);
        }
    }

    fn proc_response(&mut self, frame: Frame, mut msg: RpcMessage) {
        let addr = frame.dst;
        let mut out: Option<Frame> = None;
        {
            let p = self.procs.get_mut(&addr).expect("alive processor");
            let call_id = msg.call_id;
            if let Some(cached) = p.resp_cache.get(&call_id) {
                self.facts.dedup_hits += 1;
                match cached {
                    CachedAction::Sent(f) => {
                        out = Some(f.clone());
                        self.exec
                            .log(format!("resp_dedup addr={addr} call={call_id}"));
                    }
                    CachedAction::Dropped => {
                        self.exec
                            .log(format!("resp_dedup_drop addr={addr} call={call_id}"));
                    }
                }
            } else {
                // The chain sees responses too (paper-eval elements only
                // match `on request`, so this is Forward for them — but
                // response-matching elements keep their real semantics).
                let verdict = p.chain.process(&mut msg);
                self.facts.note_verdict(
                    1,
                    addr,
                    call_id,
                    verdict_tag(&verdict),
                    verdict_code(&verdict),
                );
                if let Verdict::Drop = verdict {
                    p.resp_cache.insert(call_id, CachedAction::Dropped);
                    self.exec
                        .log(format!("resp_drop addr={addr} call={call_id}"));
                } else {
                    match verdict {
                        Verdict::Abort { code, message } => {
                            msg.status = RpcStatus::Aborted { code, message };
                        }
                        // A response-path shed rewrites status in place,
                        // exactly like the real serve loop.
                        Verdict::Shed => msg.status = RpcStatus::Shed,
                        _ => {}
                    }
                    match p.flows.remove(&call_id) {
                        Some(orig) => {
                            msg.src = addr;
                            msg.dst = orig;
                            let payload = encode_message_to_vec(&msg).expect("response encodes");
                            let f = Frame {
                                src: addr,
                                dst: orig,
                                payload,
                            };
                            p.resp_cache.insert(call_id, CachedAction::Sent(f.clone()));
                            self.exec
                                .log(format!("resp_fwd addr={addr} call={call_id} dst={orig}"));
                            out = Some(f);
                        }
                        None => {
                            p.resp_cache.insert(call_id, CachedAction::Dropped);
                            self.exec
                                .log(format!("stale_resp addr={addr} call={call_id}"));
                        }
                    }
                }
            }
        }
        if let Some(f) = out {
            self.send_frame(f);
        }
    }

    // ---- server --------------------------------------------------------

    fn server_recv(&mut self, frame: Frame) {
        let msg = match decode_message_exact(&frame.payload, &self.service) {
            Ok(m) => m,
            Err(e) => {
                self.exec.log(format!("server_decode_error {e:?}"));
                return;
            }
        };
        let key = (frame.src, msg.call_id);
        if let Some(f) = self.server.dedup.get(&key) {
            let f = f.clone();
            self.facts.dedup_hits += 1;
            self.exec.log(format!("server_dedup call={}", msg.call_id));
            self.send_frame(f);
            return;
        }
        if msg.deadline.as_ref().is_some_and(|d| d.expired()) {
            // The caller already gave up on this work; executing it is
            // pure waste. Counted so the no-expired-execution invariant
            // can demand zero whenever expired-drop is armed upstream.
            self.facts.expired_executions += 1;
            self.exec.log(format!("expired_exec call={}", msg.call_id));
        }
        let count = {
            let e = self.facts.executions.entry(msg.call_id).or_insert(0);
            *e += 1;
            *e
        };
        self.facts.last_exec = Some((msg.call_id, count));
        let oid = match msg.get("object_id") {
            Some(Value::U64(v)) => *v,
            _ => 0,
        };
        self.exec
            .log(format!("exec call={} obj={oid}", msg.call_id));
        let mut resp = RpcMessage::response_to(&msg, self.server.resp_schema.clone());
        resp.set("ok", Value::Bool(true));
        let payload = encode_message_to_vec(&resp).expect("response encodes");
        let f = Frame {
            src: self.server.addr,
            dst: frame.src,
            payload,
        };
        self.server.dedup.insert(key, f.clone());
        self.send_frame(f);
    }

    // ---- controller ----------------------------------------------------

    fn sweep(&mut self, now: Duration) {
        // Heartbeat collection + failure detection. Live processors beat
        // between sweeps; a killed one's last beat goes stale.
        let addrs: Vec<u64> = self.procs.keys().copied().collect();
        for addr in addrs {
            let (alive, last_beat) = {
                let p = &self.procs[&addr];
                (p.alive, p.last_beat)
            };
            if alive {
                self.procs.get_mut(&addr).expect("present").last_beat = now;
                continue;
            }
            let age = now.saturating_sub(last_beat);
            if age > self.ctl.heartbeat_timeout {
                self.failover(now, addr, age);
            }
        }
        // Load-triggered scale-out on the chain entry, gated by cooldown.
        if let Some(cfg) = self.ctl.autoscale.clone() {
            let load = self.entry_load;
            self.entry_load = 0;
            let cooled = match self.ctl.last_scaleout {
                None => true,
                Some(t) => now.saturating_sub(t) >= cfg.cooldown,
            };
            let entry_alive = self.procs.get(&self.entry).map(|p| p.alive) == Some(true);
            if load > cfg.threshold && cooled && self.shards.len() < cfg.max_shards && entry_alive {
                self.scale_out(now);
            }
        }
        if !self.client_done() || self.procs.values().any(|p| !p.alive) {
            self.exec
                .schedule_after(self.ctl.sweep_interval, Event::Sweep);
        }
    }

    fn checkpoint(&mut self, now: Duration) {
        let _ = now;
        let addrs: Vec<u64> = self.procs.keys().copied().collect();
        for addr in addrs {
            let images = {
                let p = &self.procs[&addr];
                if !p.alive {
                    continue;
                }
                p.chain.export_states()
            };
            self.exec
                .log(format!("checkpoint addr={addr} engines={}", images.len()));
            self.ctl.checkpoints.insert(addr, images);
        }
        if !self.client_done() {
            self.exec
                .schedule_after(self.ctl.checkpoint_interval, Event::Checkpoint);
        }
    }

    fn failover(&mut self, now: Duration, addr: u64, age: Duration) {
        let (elements, images) = {
            let p = &self.procs[&addr];
            (
                p.elements.clone(),
                self.ctl.checkpoints.get(&addr).cloned().unwrap_or_default(),
            )
        };
        let mut chain = build_chain(
            &elements,
            &self.req_schema,
            &self.resp_schema,
            self.compile_seed,
            self.cfg.jit,
        );
        if !images.is_empty() {
            // Best effort, like the real controller: a stale checkpoint
            // shape (post-reconfig) falls back to fresh state.
            let _ = chain.import_states(&images);
        }
        let p = self.procs.get_mut(&addr).expect("present");
        p.chain = chain;
        p.flows.clear();
        p.req_cache = DedupWindow::new(DEDUP_CAP);
        p.resp_cache = DedupWindow::new(DEDUP_CAP);
        p.alive = true;
        p.last_beat = now;
        self.ctl.failed_over.insert(addr, now);
        self.facts.failovers.insert(addr, now);
        self.exec
            .log(format!("failover addr={addr} age_ns={}", age.as_nanos()));
    }

    fn scale_out(&mut self, now: Duration) {
        let new_addr = SHARD_BASE + self.shards.len() as u64;
        if self.shards.is_empty() {
            // First scale-out: the entry's elements move to shard 0 (with
            // exported state) and the entry becomes a pure router.
            let (elements, downstream, images) = {
                let p = self.procs.get_mut(&self.entry).expect("entry");
                let downstream = match &p.next_req {
                    NextHop::Fixed(a) => *a,
                    NextHop::Sharded(_) => unreachable!("entry is not yet a router"),
                };
                let images = p.chain.export_states();
                let elements = std::mem::take(&mut p.elements);
                p.chain = EngineChain::new();
                (elements, downstream, images)
            };
            let mut chain = build_chain(
                &elements,
                &self.req_schema,
                &self.resp_schema,
                self.compile_seed,
                self.cfg.jit,
            );
            let _ = chain.import_states(&images);
            let shard = SimProcessor::new(
                new_addr,
                chain,
                elements.clone(),
                NextHop::Fixed(downstream),
            );
            self.procs.insert(new_addr, shard);
            self.shard_elements = elements;
            self.shard_downstream = downstream;
        } else {
            let chain = build_chain(
                &self.shard_elements,
                &self.req_schema,
                &self.resp_schema,
                self.compile_seed,
                self.cfg.jit,
            );
            let shard = SimProcessor::new(
                new_addr,
                chain,
                self.shard_elements.clone(),
                NextHop::Fixed(self.shard_downstream),
            );
            self.procs.insert(new_addr, shard);
        }
        self.shards.push(new_addr);
        let p = self.procs.get_mut(&self.entry).expect("entry");
        p.next_req = NextHop::Sharded(self.shards.clone());
        self.ctl.last_scaleout = Some(now);
        self.facts.scaleouts.push(now);
        self.exec.log(format!(
            "scaleout shards={} new_addr={new_addr}",
            self.shards.len()
        ));
    }

    fn kill(&mut self, now: Duration, addr: u64) {
        if let Some(p) = self.procs.get_mut(&addr) {
            p.alive = false;
        }
        self.facts.kills.insert(addr, now);
        self.exec.log(format!("kill addr={addr}"));
    }

    /// Live migration: export element state, rebuild the chain, import —
    /// flows and dedup caches ride along, exactly like the real
    /// `migrate_processor` (same address, no frame loss).
    fn migrate(&mut self, _now: Duration, addr: u64) {
        let (elements, images, alive) = {
            let Some(p) = self.procs.get(&addr) else {
                return;
            };
            (p.elements.clone(), p.chain.export_states(), p.alive)
        };
        if !alive {
            return;
        }
        let mut chain = build_chain(
            &elements,
            &self.req_schema,
            &self.resp_schema,
            self.compile_seed,
            self.cfg.jit,
        );
        let _ = chain.import_states(&images);
        self.procs.get_mut(&addr).expect("present").chain = chain;
        self.facts.migrations += 1;
        self.exec.log(format!("migrate addr={addr}"));
    }
}
