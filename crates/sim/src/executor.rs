//! The deterministic heart of the simulator: a virtual clock, a seeded
//! RNG, and a priority queue of timed events processed one at a time on a
//! single thread.
//!
//! Determinism contract: given the same seed and the same scenario, the
//! executor pops the same events at the same virtual times in the same
//! order, the RNG produces the same draws, and the event log comes out
//! byte-identical. Three rules keep that true:
//!
//! 1. **Total order.** Events are ordered by `(virtual time, sequence
//!    number)`. The sequence number is assigned at scheduling time, so two
//!    events scheduled for the same instant pop in scheduling order —
//!    `BinaryHeap`'s tie-breaking never shows through.
//! 2. **One RNG.** Every random draw in a run (chaos rolls, latency
//!    jitter, retry jitter) comes from the single executor RNG, seeded
//!    from the run seed. Node models never own a generator.
//! 3. **No wall clock.** The log carries virtual nanoseconds only; real
//!    time never enters an event, a timestamp, or a log line.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Duration;

use adn_rpc::transport::Frame;
use adn_wire::clock::{Clock, VirtualClock};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Everything that can happen in a simulated cluster. Scenario hooks
/// (kill, migrate, partition) are ordinary events so they interleave with
/// traffic deterministically.
#[derive(Debug, Clone)]
pub enum Event {
    /// The closed-loop client mints call `index` of the workload.
    IssueCall {
        /// Zero-based workload index; determines call id, object and user.
        index: u64,
    },
    /// The client transmits (or retransmits) a call.
    SendAttempt {
        /// Correlation id of the call.
        call_id: u64,
        /// 1-based attempt number this transmission belongs to.
        attempt: u32,
    },
    /// The per-attempt timer fired; the client decides retry vs. give-up.
    RetryFire {
        /// Correlation id of the call.
        call_id: u64,
        /// Attempt the timer was armed for; stale if the call moved on.
        attempt: u32,
    },
    /// A frame arrives at its destination endpoint.
    Deliver {
        /// The frame, exactly as sent (possibly a chaos duplicate).
        frame: Frame,
    },
    /// A batching processor drains its inbox (scheduled one batch window
    /// after the first frame lands; never emitted when `batch == 1`).
    FlushBatch {
        /// Flat endpoint address of the draining processor.
        addr: u64,
    },
    /// Controller sweep: collect heartbeats, fail over dead processors,
    /// evaluate autoscale.
    Sweep,
    /// Controller checkpoint: snapshot element state of live processors.
    Checkpoint,
    /// Scenario hook: the processor at `addr` crashes (stops heartbeating
    /// and blackholes frames).
    Kill {
        /// Flat endpoint address of the victim.
        addr: u64,
    },
    /// Scenario hook: live-migrate the processor at `addr` (export state,
    /// rebuild, import — the sim analog of `migrate_processor`).
    Migrate {
        /// Flat endpoint address of the processor to migrate.
        addr: u64,
    },
    /// Scenario hook: the client ↔ chain-entry link partitions.
    PartitionStart,
    /// Scenario hook: the partition heals.
    PartitionEnd,
}

impl Event {
    /// Short tag used in log lines.
    pub fn tag(&self) -> &'static str {
        match self {
            Event::IssueCall { .. } => "issue",
            Event::SendAttempt { .. } => "send",
            Event::RetryFire { .. } => "retry_fire",
            Event::Deliver { .. } => "deliver",
            Event::FlushBatch { .. } => "flush_batch",
            Event::Sweep => "sweep",
            Event::Checkpoint => "checkpoint",
            Event::Kill { .. } => "kill",
            Event::Migrate { .. } => "migrate",
            Event::PartitionStart => "partition_start",
            Event::PartitionEnd => "partition_end",
        }
    }
}

/// A queued event: ordered by `(at, seq)` so ties pop in scheduling order.
#[derive(Debug)]
struct Scheduled {
    at: Duration,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Seeded single-threaded event executor. Owns the virtual clock, the
/// run's only RNG, the event queue, and the append-only event log.
#[derive(Debug)]
pub struct SimExecutor {
    /// Virtual time; advanced to each popped event's timestamp. Shared so
    /// reused components (breakers, views) can read the same timeline.
    pub clock: Arc<VirtualClock>,
    /// The run's only randomness source.
    pub rng: StdRng,
    queue: BinaryHeap<Scheduled>,
    next_seq: u64,
    /// Events processed so far (set by the run loop).
    pub processed: u64,
    log: Vec<String>,
}

impl SimExecutor {
    /// A fresh executor at virtual time zero.
    pub fn new(seed: u64) -> Self {
        Self {
            clock: VirtualClock::shared(),
            rng: StdRng::seed_from_u64(seed),
            queue: BinaryHeap::new(),
            next_seq: 0,
            processed: 0,
            log: Vec::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.clock.now()
    }

    /// Schedules `event` at absolute virtual time `at` (clamped to now —
    /// virtual time never runs backwards).
    pub fn schedule_at(&mut self, at: Duration, event: Event) {
        let at = at.max(self.clock.now());
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedules `event` after a virtual delay.
    pub fn schedule_after(&mut self, delay: Duration, event: Event) {
        self.schedule_at(self.clock.now() + delay, event);
    }

    /// Pops the next event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Duration, Event)> {
        let s = self.queue.pop()?;
        self.clock.advance_to(s.at);
        Some((s.at, s.event))
    }

    /// Events still queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Appends a log line stamped with the current virtual time. Lines
    /// must never contain wall-clock data — the log is the determinism
    /// witness (same seed ⇒ byte-identical log).
    pub fn log(&mut self, line: impl AsRef<str>) {
        self.log.push(format!(
            "t={} {}",
            self.clock.now().as_nanos(),
            line.as_ref()
        ));
    }

    /// The event log so far.
    pub fn log_lines(&self) -> &[String] {
        &self.log
    }

    /// Consumes the executor, returning the event log.
    pub fn into_log(self) -> Vec<String> {
        self.log
    }
}

/// FNV-1a over the joined log — the run's determinism fingerprint.
pub fn fingerprint(lines: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in lines {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_then_fifo_order() {
        let mut ex = SimExecutor::new(1);
        ex.schedule_at(Duration::from_millis(5), Event::Sweep);
        ex.schedule_at(Duration::from_millis(1), Event::Checkpoint);
        ex.schedule_at(Duration::from_millis(5), Event::PartitionStart);
        let (t1, e1) = ex.pop().unwrap();
        let (t2, e2) = ex.pop().unwrap();
        let (t3, e3) = ex.pop().unwrap();
        assert_eq!(t1, Duration::from_millis(1));
        assert!(matches!(e1, Event::Checkpoint));
        // Same-instant ties resolve in scheduling order.
        assert_eq!(t2, Duration::from_millis(5));
        assert!(matches!(e2, Event::Sweep));
        assert_eq!(t3, Duration::from_millis(5));
        assert!(matches!(e3, Event::PartitionStart));
        assert_eq!(ex.now(), Duration::from_millis(5));
    }

    #[test]
    fn pop_advances_the_shared_clock() {
        let mut ex = SimExecutor::new(2);
        let clock = ex.clock.clone();
        ex.schedule_at(Duration::from_secs(3), Event::Sweep);
        assert_eq!(clock.now(), Duration::ZERO);
        ex.pop().unwrap();
        assert_eq!(clock.now(), Duration::from_secs(3));
    }

    #[test]
    fn fingerprint_is_order_sensitive() {
        let a = vec!["x".to_string(), "y".to_string()];
        let b = vec!["y".to_string(), "x".to_string()];
        assert_ne!(fingerprint(&a), fingerprint(&b));
        assert_eq!(fingerprint(&a), fingerprint(&a.clone()));
    }
}
