//! Three-tier differential test: the direct-threaded and native tiers must
//! be observably identical to the tree-walking interpreter — verdicts,
//! message mutations, RNG streams, and exported state images — over random
//! chains and random message sequences.
//!
//! The template pool is chosen so the generated chains exercise every
//! specialized thunk: `InsertRow` (keyed insert with `now()`, literal, and
//! field columns), `KeyJoinFilter` (keyed join + conjunctive equality
//! WHERE), inline arithmetic with overflow/divide faults, and the seeded
//! `random()` stream.

use std::sync::Arc;

use adn_backend::jit::{native_available, JitEngine, JitTier};
use adn_backend::native::{compile_element, compile_fused, element_seed, CompileOpts};
use adn_ir::ElementIr;
use adn_rpc::engine::Engine;
use adn_rpc::message::RpcMessage;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;
use proptest::prelude::*;

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    (
        Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        ),
        Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        ),
    )
}

fn lower_src(src: &str) -> ElementIr {
    let (req, resp) = schemas();
    let checked = adn_dsl::typecheck::check_element(
        &adn_dsl::parser::parse_element(src).unwrap(),
        &req,
        &resp,
    )
    .unwrap();
    adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
}

/// One template per specialized lowering path, plus generic escapes.
#[derive(Debug, Clone, Copy)]
enum Template {
    /// Keyed insert: `InsertRow` fast path (now() + const + field columns).
    Log { capacity: u32 },
    /// Keyed join + equality WHERE: `KeyJoinFilter` fast path.
    Acl { require_w: bool },
    /// Inline arithmetic with a guard; overflow faults on large ids.
    Arith { mul: u64, min: u64 },
    /// Seeded random() stream feeding an ABORT.
    Fault { p_tenths: u32 },
    /// Generic escape path: keyed upsert accumulation (no fast path).
    Quota { limit: u64 },
    /// Unspecialized DELETE: keyed insert then a predicate sweep.
    Sweep { cutoff: u64 },
    /// UDF-bearing SET: `compress()` has no inline lowering.
    Seal,
}

impl Template {
    fn source(&self) -> String {
        match *self {
            Template::Log { capacity } => format!(
                r#"element Log() {{
                    state log_tab(seq: u64 key, direction: string, username: string, object_id: u64) capacity {capacity};
                    on request {{
                        INSERT INTO log_tab VALUES (now(), 'req', input.username, input.object_id);
                        SELECT * FROM input;
                    }}
                }}"#
            ),
            Template::Acl { require_w } => {
                let filter = if require_w {
                    "WHERE ac_tab.permission == 'W'"
                } else {
                    ""
                };
                format!(
                    r#"element Acl() {{
                        state ac_tab(username: string key, permission: string) init {{
                            ('alice', 'W'), ('bob', 'R'), ('carol', 'W')
                        }};
                        on request {{
                            SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username {filter};
                        }}
                    }}"#
                )
            }
            Template::Arith { mul, min } => format!(
                r#"element Arith() {{
                    on request {{
                        SET object_id = input.object_id * {mul} WHERE input.object_id > {min};
                        SELECT * FROM input;
                    }}
                }}"#
            ),
            Template::Fault { p_tenths } => format!(
                "element Fault(p: f64 = 0.{p_tenths}) {{ on request {{ ABORT(3, 'injected fault') WHERE random() < p; SELECT * FROM input; }} }}"
            ),
            Template::Quota { limit } => format!(
                r#"element Quota() {{
                    state used(username: string key, count: u64) capacity 1024;
                    on request {{
                        INSERT INTO used VALUES (input.username, 0);
                        UPDATE used SET count = used.count + 1 WHERE used.username == input.username;
                        SELECT * FROM input JOIN used ON input.username == used.username
                        WHERE used.count <= {limit};
                    }}
                }}"#
            ),
            Template::Sweep { cutoff } => format!(
                r#"element Sweep() {{
                    state sess(username: string key, object_id: u64) capacity 128;
                    on request {{
                        INSERT INTO sess VALUES (input.username, input.object_id);
                        DELETE FROM sess WHERE sess.object_id < {cutoff};
                        SELECT * FROM input;
                    }}
                }}"#
            ),
            Template::Seal => r#"element Seal() {
                    on request {
                        SET payload = compress(input.payload);
                        SELECT * FROM input;
                    }
                }"#
            .to_string(),
        }
    }
}

fn template_strategy() -> impl Strategy<Value = Template> {
    prop_oneof![
        (4u32..64).prop_map(|capacity| Template::Log { capacity }),
        any::<bool>().prop_map(|require_w| Template::Acl { require_w }),
        ((0u64..5), (0u64..100)).prop_map(|(m, min)| Template::Arith {
            mul: m * 3 + 1,
            min
        }),
        (1u32..9).prop_map(|p_tenths| Template::Fault { p_tenths }),
        (1u64..6).prop_map(|limit| Template::Quota { limit }),
        (10u64..150).prop_map(|cutoff| Template::Sweep { cutoff }),
        Just(Template::Seal),
    ]
}

#[derive(Debug, Clone)]
struct Msg {
    object_id: u64,
    user: usize,
    payload: Vec<u8>,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (
        prop_oneof![
            0u64..200,
            Just(0u64),
            Just(u64::MAX),
            Just(u64::MAX / 3 + 11),
        ],
        0usize..6,
        proptest::collection::vec(any::<u8>(), 0..24),
    )
        .prop_map(|(object_id, user, payload)| Msg {
            object_id,
            user,
            payload,
        })
}

const USERS: [&str; 6] = ["alice", "bob", "carol", "eve", "dave", ""];

fn request(m: &Msg) -> RpcMessage {
    let (req, _) = schemas();
    RpcMessage::request(1, 1, req)
        .with("object_id", m.object_id)
        .with("username", USERS[m.user])
        .with("payload", m.payload.clone())
}

fn tiers() -> Vec<JitTier> {
    let mut t = vec![JitTier::Threaded];
    if native_available() {
        t.push(JitTier::Native);
    }
    t
}

/// Runs `msgs` through a reference interpreter chain and a JIT chain at
/// `tier`, comparing the verdict and the mutated message after every step
/// and the exported state images at the end.
fn assert_equivalent(elements: &[ElementIr], msgs: &[Msg], seed: u64, tier: JitTier, fused: bool) {
    let opts_at = |i: usize| CompileOpts {
        seed: element_seed(seed, i),
        ..Default::default()
    };
    if fused {
        let opts = CompileOpts {
            seed,
            ..Default::default()
        };
        let mut interp = compile_fused(elements, &opts);
        let mut jit = JitEngine::fused(elements, &opts, tier);
        for (n, m) in msgs.iter().enumerate() {
            let mut a = request(m);
            let mut b = a.clone();
            let va = Engine::process(&mut interp, &mut a);
            let vb = jit.process(&mut b);
            assert_eq!(va, vb, "fused verdict diverged at msg {n} on {tier:?}");
            assert_eq!(
                a.fields, b.fields,
                "fused fields diverged at msg {n} on {tier:?}"
            );
        }
        assert_eq!(
            interp.export_state(),
            jit.export_state(),
            "fused state image diverged on {tier:?}"
        );
    } else {
        let mut interp: Vec<_> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| compile_element(e, &opts_at(i)))
            .collect();
        let mut jit: Vec<_> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| JitEngine::single(e, &opts_at(i), tier))
            .collect();
        for (n, m) in msgs.iter().enumerate() {
            let mut a = request(m);
            let mut b = a.clone();
            let mut va = adn_rpc::engine::Verdict::Forward;
            for e in interp.iter_mut() {
                va = Engine::process(e, &mut a);
                if !matches!(va, adn_rpc::engine::Verdict::Forward) {
                    break;
                }
            }
            let mut vb = adn_rpc::engine::Verdict::Forward;
            for e in jit.iter_mut() {
                vb = e.process(&mut b);
                if !matches!(vb, adn_rpc::engine::Verdict::Forward) {
                    break;
                }
            }
            assert_eq!(va, vb, "chain verdict diverged at msg {n} on {tier:?}");
            assert_eq!(
                a.fields, b.fields,
                "chain fields diverged at msg {n} on {tier:?}"
            );
        }
        for (i, (a, b)) in interp.iter().zip(jit.iter()).enumerate() {
            assert_eq!(
                a.export_state(),
                b.export_state(),
                "state image diverged for element {i} on {tier:?}"
            );
        }
    }
}

/// The unspecialized statements — UPDATE, DELETE, and UDF-bearing SET —
/// must *decline* to interpreter thunks (the lowering reports escapes,
/// never a bogus fast path) and the declined thunks must stay
/// byte-identical to the interpreter across tiers, state images
/// included. Pins the gap named in ROADMAP item 1.
#[test]
fn unspecialized_update_delete_and_udf_set_decline_to_thunks() {
    use adn_backend::jit::jit_eligibility;

    let (req, resp) = schemas();
    let cases = [
        ("update", Template::Quota { limit: 3 }.source()),
        ("delete", Template::Sweep { cutoff: 90 }.source()),
        ("udf-set", Template::Seal.source()),
    ];
    // A fixed message sweep: every user, wrapping ids, growing payloads,
    // enough volume to cycle state through insert/update/delete paths.
    let msgs: Vec<Msg> = (0..48u64)
        .map(|i| Msg {
            object_id: (i * 37) % 211,
            user: (i % 6) as usize,
            payload: vec![i as u8; (i % 17) as usize],
        })
        .collect();
    for (label, src) in cases {
        let element = lower_src(&src);
        let (req_stats, _) = jit_eligibility(&element, Some(&req), Some(&resp));
        assert!(
            req_stats.escapes > 0,
            "{label}: must decline to interpreter thunks, got {req_stats:?}"
        );
        for tier in tiers() {
            assert_equivalent(std::slice::from_ref(&element), &msgs, 7, tier, false);
            assert_equivalent(std::slice::from_ref(&element), &msgs, 7, tier, true);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48 })]

    /// Random chains x random messages: every tier agrees with the
    /// interpreter message-by-message and state-byte-by-state-byte.
    #[test]
    fn tiers_agree_on_random_chains(
        templates in proptest::collection::vec(template_strategy(), 1..4),
        msgs in proptest::collection::vec(msg_strategy(), 1..32),
        seed in 0u64..1024,
        fused in any::<bool>(),
    ) {
        let elements: Vec<ElementIr> =
            templates.iter().map(|t| lower_src(&t.source())).collect();
        for tier in tiers() {
            assert_equivalent(&elements, &msgs, seed, tier, fused);
        }
    }

    /// The InsertRow fast path under table wrap-around: a keyed log table
    /// with tiny capacity is driven far past capacity so recycled rows and
    /// FIFO eviction are on the measured path.
    #[test]
    fn insert_row_wraparound_agrees(
        capacity in 4u32..12,
        msgs in proptest::collection::vec(msg_strategy(), 24..64),
        seed in 0u64..256,
    ) {
        let elements = vec![lower_src(&Template::Log { capacity }.source())];
        for tier in tiers() {
            assert_equivalent(&elements, &msgs, seed, tier, true);
        }
    }
}
