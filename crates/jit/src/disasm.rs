//! Annotated listings for compiled programs (`adn-lint --jit-dump`).
//!
//! The listing interleaves three layers: the plan-IR note attached by the
//! lowering (`ProgramBuilder::note`), the op IR line, and — when native
//! code is available — the emitted machine-code bytes for that op.

use crate::program::{Op, Program};

/// Machine-code bytes plus the per-op byte spans within them.
type NativeCode<'a> = (&'a [u8], &'a [(usize, usize)]);

/// One listing line per op, plus the note lines above it.
pub struct Listing {
    pub lines: Vec<String>,
}

impl Listing {
    /// Renders `p` alone (threaded/interp tiers: no machine code).
    pub fn of_program(p: &Program) -> Listing {
        Self::render(p, None)
    }

    /// Renders `p` with the machine-code bytes of each op.
    ///
    /// `spans[i]` is the byte range op `i` emitted into `code`.
    pub fn with_code(p: &Program, code: &[u8], spans: &[(usize, usize)]) -> Listing {
        Self::render(p, Some((code, spans)))
    }

    fn render(p: &Program, native: Option<NativeCode<'_>>) -> Listing {
        let mut lines = Vec::with_capacity(p.ops.len() * 2);
        for (i, op) in p.ops.iter().enumerate() {
            if let Some(note) = p.note_at(i as u32) {
                lines.push(format!("        ; {note}"));
            }
            let mut line = format!("  {i:>4}: {}", fmt_op(op));
            if let Some((code, spans)) = native {
                if let Some(&(start, end)) = spans.get(i) {
                    let hex: Vec<String> = code[start..end.min(code.len())]
                        .iter()
                        .map(|b| format!("{b:02x}"))
                        .collect();
                    if !hex.is_empty() {
                        line = format!("{line:<60} | {:#06x}: {}", start, hex.join(" "));
                    }
                }
            }
            lines.push(line);
        }
        Listing { lines }
    }
}

impl std::fmt::Display for Listing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for l in &self.lines {
            writeln!(f, "{l}")?;
        }
        Ok(())
    }
}

fn fmt_op(op: &Op) -> String {
    match *op {
        Op::ConstBits { dst, bits } => format!("const     r{dst} <- {bits:#x}"),
        Op::Mov { dst, src } => format!("mov       r{dst} <- r{src}"),
        Op::Arith {
            kind,
            dst,
            a,
            b,
            on_overflow,
            on_div_zero,
        } => {
            let mut s = format!(
                "{:<9} r{dst} <- r{a}, r{b}",
                format!("{kind:?}").to_lowercase()
            );
            s.push_str(&format!(" [of->{on_overflow}"));
            if kind.can_div_zero() {
                s.push_str(&format!(", dz->{on_div_zero}"));
            }
            s.push(']');
            s
        }
        Op::Neg {
            kind,
            dst,
            src,
            on_overflow,
        } => format!("neg.{kind:?}  r{dst} <- r{src} [of->{on_overflow}]").to_lowercase(),
        Op::NotBool { dst, src } => format!("not       r{dst} <- r{src}"),
        Op::Cmp { kind, dst, a, b } => {
            format!(
                "{:<9} r{dst} <- r{a}, r{b}",
                format!("cmp.{kind:?}").to_lowercase()
            )
        }
        Op::TruthyF64 { dst, src } => format!("truthy.f  r{dst} <- r{src}"),
        Op::CastU64F64 { dst, src } => format!("u64->f64  r{dst} <- r{src}"),
        Op::CastI64F64 { dst, src } => format!("i64->f64  r{dst} <- r{src}"),
        Op::CastU64I64 {
            dst,
            src,
            on_overflow,
        } => format!("u64->i64  r{dst} <- r{src} [of->{on_overflow}]"),
        Op::Jump { target } => format!("jmp       ->{target}"),
        Op::JumpIfFalse { cond, target } => format!("jz        r{cond} ->{target}"),
        Op::JumpIfTrue { cond, target } => format!("jnz       r{cond} ->{target}"),
        Op::CallExpr {
            spec,
            dst,
            args_at,
            argc,
            on_fault,
        } => {
            format!("call.expr r{dst} <- spec#{spec} args[{args_at}..+{argc}] [fault->{on_fault}]")
        }
        Op::CallStmt { spec } => format!("call.stmt spec#{spec}"),
        Op::Return { code } => format!("ret       {code:#x}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CmpKind, ProgramBuilder};

    #[test]
    fn listing_includes_notes_and_ops() {
        let mut b = ProgramBuilder::new();
        let (x, y, z) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
        b.note("stmt 0: demo compare");
        b.const_bits(x, 1);
        b.const_bits(y, 2);
        b.cmp(CmpKind::LtU, z, x, y);
        b.ret(0);
        let p = b.finish();
        let text = Listing::of_program(&p).to_string();
        assert!(text.contains("; stmt 0: demo compare"), "{text}");
        assert!(text.contains("cmp.ltu"), "{text}");
        assert!(text.contains("ret"), "{text}");
    }
}
