//! The portable typed direct-threaded tier.
//!
//! [`ThreadedProgram::compile`] pre-decodes every [`Op`] into a flat
//! `TOp` record paired with a per-opcode handler function pointer, so the
//! execution loop is an indirect call per op — no enum match, no operand
//! re-decoding — while staying entirely safe, portable Rust. This is the
//! default tier off x86-64 and the reference implementation the template
//! JIT is differentially tested against.

use crate::program::{ArithKind, CmpKind, NegKind, Op, Program};
use crate::VmCtx;

/// Pre-decoded op: opcode-specific fields flattened into scalars.
struct TOp {
    f: Handler,
    a: u32,
    b: u32,
    c: u32,
    imm: u64,
}

enum Ctl {
    Next,
    Jump(u32),
    Ret(u64),
}

struct Vm<'a> {
    slots: &'a mut [u64],
    args: &'a mut [u64],
    arg_slots: &'a [u16],
    ctx: &'a mut VmCtx,
}

type Handler = fn(&mut Vm, &TOp) -> Ctl;

/// A program compiled to the direct-threaded form.
pub struct ThreadedProgram {
    ops: Vec<TOp>,
    slot_count: u16,
    arg_buf_len: u16,
    arg_slots: Vec<u16>,
}

impl ThreadedProgram {
    /// Number of register slots the program expects.
    pub fn slot_count(&self) -> usize {
        self.slot_count as usize
    }

    /// Size of the thunk argument buffer the program expects.
    pub fn arg_buf_len(&self) -> usize {
        self.arg_buf_len as usize
    }

    /// Pre-decodes `p` (which must be finished/validated).
    pub fn compile(p: &Program) -> ThreadedProgram {
        let ops = p.ops.iter().map(decode).collect();
        ThreadedProgram {
            ops,
            slot_count: p.slot_count,
            arg_buf_len: p.arg_buf_len,
            arg_slots: p.arg_slots.clone(),
        }
    }

    /// Runs to termination, returning the program's return code (see
    /// [`crate::ret`]). `slots`/`args` must be at least
    /// [`slot_count`](Self::slot_count)/[`arg_buf_len`](Self::arg_buf_len)
    /// long.
    pub fn run(&self, ctx: &mut VmCtx, slots: &mut [u64], args: &mut [u64]) -> u64 {
        debug_assert!(slots.len() >= self.slot_count as usize);
        debug_assert!(args.len() >= self.arg_buf_len as usize);
        let mut vm = Vm {
            slots,
            args,
            arg_slots: &self.arg_slots,
            ctx,
        };
        let mut pc = 0usize;
        loop {
            let op = &self.ops[pc];
            match (op.f)(&mut vm, op) {
                Ctl::Next => pc += 1,
                Ctl::Jump(t) => pc = t as usize,
                Ctl::Ret(v) => return v,
            }
        }
    }
}

fn decode(op: &Op) -> TOp {
    let t = |f: Handler, a: u32, b: u32, c: u32, imm: u64| TOp { f, a, b, c, imm };
    match *op {
        Op::ConstBits { dst, bits } => t(h_const, dst as u32, 0, 0, bits),
        Op::Mov { dst, src } => t(h_mov, dst as u32, src as u32, 0, 0),
        Op::Arith {
            kind,
            dst,
            a,
            b,
            on_overflow,
            on_div_zero,
        } => {
            let f: Handler = match kind {
                ArithKind::AddU => h_add_u,
                ArithKind::AddI => h_add_i,
                ArithKind::AddF => h_add_f,
                ArithKind::SubI => h_sub_i,
                ArithKind::SubF => h_sub_f,
                ArithKind::MulU => h_mul_u,
                ArithKind::MulI => h_mul_i,
                ArithKind::MulF => h_mul_f,
                ArithKind::DivU => h_div_u,
                ArithKind::DivI => h_div_i,
                ArithKind::DivF => h_div_f,
                ArithKind::ModU => h_mod_u,
                ArithKind::ModI => h_mod_i,
                ArithKind::ModF => h_mod_f,
            };
            t(
                f,
                dst as u32,
                a as u32,
                b as u32,
                ((on_overflow as u64) << 32) | on_div_zero as u64,
            )
        }
        Op::Neg {
            kind,
            dst,
            src,
            on_overflow,
        } => t(
            match kind {
                NegKind::I64 => h_neg_i,
                NegKind::F64 => h_neg_f,
            },
            dst as u32,
            src as u32,
            0,
            (on_overflow as u64) << 32,
        ),
        Op::NotBool { dst, src } => t(h_not, dst as u32, src as u32, 0, 0),
        Op::Cmp { kind, dst, a, b } => {
            let f: Handler = match kind {
                CmpKind::EqBits => h_eq,
                CmpKind::NeBits => h_ne,
                CmpKind::LtU => h_lt_u,
                CmpKind::LeU => h_le_u,
                CmpKind::GtU => h_gt_u,
                CmpKind::GeU => h_ge_u,
                CmpKind::LtI => h_lt_i,
                CmpKind::LeI => h_le_i,
                CmpKind::GtI => h_gt_i,
                CmpKind::GeI => h_ge_i,
                CmpKind::LtF => h_lt_f,
                CmpKind::LeF => h_le_f,
                CmpKind::GtF => h_gt_f,
                CmpKind::GeF => h_ge_f,
            };
            t(f, dst as u32, a as u32, b as u32, 0)
        }
        Op::TruthyF64 { dst, src } => t(h_truthy_f, dst as u32, src as u32, 0, 0),
        Op::CastU64F64 { dst, src } => t(h_u2f, dst as u32, src as u32, 0, 0),
        Op::CastI64F64 { dst, src } => t(h_i2f, dst as u32, src as u32, 0, 0),
        Op::CastU64I64 {
            dst,
            src,
            on_overflow,
        } => t(h_u2i, dst as u32, src as u32, 0, (on_overflow as u64) << 32),
        Op::Jump { target } => t(h_jump, 0, 0, 0, target as u64),
        Op::JumpIfFalse { cond, target } => t(h_jf, cond as u32, 0, 0, target as u64),
        Op::JumpIfTrue { cond, target } => t(h_jt, cond as u32, 0, 0, target as u64),
        Op::CallExpr {
            spec,
            dst,
            args_at,
            argc,
            on_fault,
        } => t(
            h_call_expr,
            dst as u32,
            args_at,
            argc as u32,
            ((spec as u64) << 32) | on_fault as u64,
        ),
        Op::CallStmt { spec } => t(h_call_stmt, 0, 0, 0, spec as u64),
        Op::Return { code } => t(h_ret, 0, 0, 0, code),
    }
}

#[inline(always)]
fn of(op: &TOp) -> Ctl {
    Ctl::Jump((op.imm >> 32) as u32)
}

#[inline(always)]
fn dz(op: &TOp) -> Ctl {
    Ctl::Jump(op.imm as u32)
}

fn h_const(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = op.imm;
    Ctl::Next
}

fn h_mov(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = vm.slots[op.b as usize];
    Ctl::Next
}

macro_rules! checked_int {
    ($name:ident, $ty:ty, $method:ident) => {
        fn $name(vm: &mut Vm, op: &TOp) -> Ctl {
            let a = vm.slots[op.b as usize] as $ty;
            let b = vm.slots[op.c as usize] as $ty;
            match a.$method(b) {
                Some(v) => {
                    vm.slots[op.a as usize] = v as u64;
                    Ctl::Next
                }
                None => of(op),
            }
        }
    };
}

checked_int!(h_add_u, u64, checked_add);
checked_int!(h_add_i, i64, checked_add);
checked_int!(h_sub_i, i64, checked_sub);
checked_int!(h_mul_u, u64, checked_mul);
checked_int!(h_mul_i, i64, checked_mul);

macro_rules! float_arith {
    ($name:ident, $op:tt) => {
        fn $name(vm: &mut Vm, op: &TOp) -> Ctl {
            let a = f64::from_bits(vm.slots[op.b as usize]);
            let b = f64::from_bits(vm.slots[op.c as usize]);
            vm.slots[op.a as usize] = (a $op b).to_bits();
            Ctl::Next
        }
    };
}

float_arith!(h_add_f, +);
float_arith!(h_sub_f, -);
float_arith!(h_mul_f, *);

fn h_div_u(vm: &mut Vm, op: &TOp) -> Ctl {
    let b = vm.slots[op.c as usize];
    if b == 0 {
        return dz(op);
    }
    vm.slots[op.a as usize] = vm.slots[op.b as usize] / b;
    Ctl::Next
}

fn h_mod_u(vm: &mut Vm, op: &TOp) -> Ctl {
    let b = vm.slots[op.c as usize];
    if b == 0 {
        return dz(op);
    }
    vm.slots[op.a as usize] = vm.slots[op.b as usize] % b;
    Ctl::Next
}

fn h_div_i(vm: &mut Vm, op: &TOp) -> Ctl {
    let a = vm.slots[op.b as usize] as i64;
    let b = vm.slots[op.c as usize] as i64;
    if b == 0 {
        return dz(op);
    }
    match a.checked_div(b) {
        Some(v) => {
            vm.slots[op.a as usize] = v as u64;
            Ctl::Next
        }
        None => of(op),
    }
}

fn h_mod_i(vm: &mut Vm, op: &TOp) -> Ctl {
    let a = vm.slots[op.b as usize] as i64;
    let b = vm.slots[op.c as usize] as i64;
    if b == 0 {
        return dz(op);
    }
    match a.checked_rem(b) {
        Some(v) => {
            vm.slots[op.a as usize] = v as u64;
            Ctl::Next
        }
        None => of(op),
    }
}

fn h_div_f(vm: &mut Vm, op: &TOp) -> Ctl {
    let a = f64::from_bits(vm.slots[op.b as usize]);
    let b = f64::from_bits(vm.slots[op.c as usize]);
    if b == 0.0 {
        return dz(op);
    }
    vm.slots[op.a as usize] = (a / b).to_bits();
    Ctl::Next
}

fn h_mod_f(vm: &mut Vm, op: &TOp) -> Ctl {
    let a = f64::from_bits(vm.slots[op.b as usize]);
    let b = f64::from_bits(vm.slots[op.c as usize]);
    if b == 0.0 {
        return dz(op);
    }
    vm.slots[op.a as usize] = (a % b).to_bits();
    Ctl::Next
}

fn h_neg_i(vm: &mut Vm, op: &TOp) -> Ctl {
    match (vm.slots[op.b as usize] as i64).checked_neg() {
        Some(v) => {
            vm.slots[op.a as usize] = v as u64;
            Ctl::Next
        }
        None => of(op),
    }
}

fn h_neg_f(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = vm.slots[op.b as usize] ^ (1u64 << 63);
    Ctl::Next
}

fn h_not(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = vm.slots[op.b as usize] ^ 1;
    Ctl::Next
}

/// The IEEE total-order key: signed compare of transformed bits matches
/// `f64::total_cmp`.
#[inline(always)]
fn fkey(bits: u64) -> i64 {
    let b = bits as i64;
    b ^ ((((b >> 63) as u64) >> 1) as i64)
}

macro_rules! cmp {
    ($name:ident, |$a:ident, $b:ident| $e:expr) => {
        fn $name(vm: &mut Vm, op: &TOp) -> Ctl {
            let $a = vm.slots[op.b as usize];
            let $b = vm.slots[op.c as usize];
            vm.slots[op.a as usize] = ($e) as u64;
            Ctl::Next
        }
    };
}

cmp!(h_eq, |a, b| a == b);
cmp!(h_ne, |a, b| a != b);
cmp!(h_lt_u, |a, b| a < b);
cmp!(h_le_u, |a, b| a <= b);
cmp!(h_gt_u, |a, b| a > b);
cmp!(h_ge_u, |a, b| a >= b);
cmp!(h_lt_i, |a, b| (a as i64) < (b as i64));
cmp!(h_le_i, |a, b| (a as i64) <= (b as i64));
cmp!(h_gt_i, |a, b| (a as i64) > (b as i64));
cmp!(h_ge_i, |a, b| (a as i64) >= (b as i64));
cmp!(h_lt_f, |a, b| fkey(a) < fkey(b));
cmp!(h_le_f, |a, b| fkey(a) <= fkey(b));
cmp!(h_gt_f, |a, b| fkey(a) > fkey(b));
cmp!(h_ge_f, |a, b| fkey(a) >= fkey(b));

fn h_truthy_f(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = ((vm.slots[op.b as usize] << 1) != 0) as u64;
    Ctl::Next
}

fn h_u2f(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = (vm.slots[op.b as usize] as f64).to_bits();
    Ctl::Next
}

fn h_i2f(vm: &mut Vm, op: &TOp) -> Ctl {
    vm.slots[op.a as usize] = (vm.slots[op.b as usize] as i64 as f64).to_bits();
    Ctl::Next
}

fn h_u2i(vm: &mut Vm, op: &TOp) -> Ctl {
    let v = vm.slots[op.b as usize];
    if v > i64::MAX as u64 {
        return of(op);
    }
    vm.slots[op.a as usize] = v;
    Ctl::Next
}

fn h_jump(_: &mut Vm, op: &TOp) -> Ctl {
    Ctl::Jump(op.imm as u32)
}

fn h_jf(vm: &mut Vm, op: &TOp) -> Ctl {
    if vm.slots[op.a as usize] == 0 {
        Ctl::Jump(op.imm as u32)
    } else {
        Ctl::Next
    }
}

fn h_jt(vm: &mut Vm, op: &TOp) -> Ctl {
    if vm.slots[op.a as usize] != 0 {
        Ctl::Jump(op.imm as u32)
    } else {
        Ctl::Next
    }
}

fn h_call_expr(vm: &mut Vm, op: &TOp) -> Ctl {
    let args_at = op.b as usize;
    let argc = op.c as usize;
    for (k, &slot) in vm.arg_slots[args_at..args_at + argc].iter().enumerate() {
        vm.args[k] = vm.slots[slot as usize];
    }
    let spec = op.imm >> 32;
    let r = (vm.ctx.expr_thunk)(vm.ctx.env, spec, vm.args.as_ptr(), argc as u64);
    // SAFETY: the embedder env's first byte is the fault flag (the
    // `ENV_FAULT_OFFSET` contract); the env outlives the run.
    if unsafe { vm.ctx.fault_raised() } {
        return Ctl::Jump(op.imm as u32);
    }
    vm.slots[op.a as usize] = r;
    Ctl::Next
}

fn h_call_stmt(vm: &mut Vm, op: &TOp) -> Ctl {
    let r = (vm.ctx.stmt_thunk)(vm.ctx.env, op.imm);
    if r != 0 {
        Ctl::Ret(r)
    } else {
        Ctl::Next
    }
}

fn h_ret(_: &mut Vm, op: &TOp) -> Ctl {
    Ctl::Ret(op.imm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ArithKind, CmpKind, ProgramBuilder};
    use std::ffi::c_void;

    extern "C" fn no_expr(_: *mut c_void, _: u64, _: *const u64, _: u64) -> u64 {
        0
    }
    extern "C" fn no_stmt(_: *mut c_void, _: u64) -> u64 {
        0
    }

    fn run(p: &Program) -> (u64, Vec<u64>) {
        let tp = ThreadedProgram::compile(p);
        let mut slots = vec![0u64; tp.slot_count()];
        let mut args = vec![0u64; tp.arg_buf_len()];
        let mut ctx = VmCtx::new(std::ptr::null_mut(), no_expr, no_stmt);
        let r = tp.run(&mut ctx, &mut slots, &mut args);
        (r, slots)
    }

    #[test]
    fn arith_and_return() {
        let mut b = ProgramBuilder::new();
        let (x, y, z) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
        let fault = b.new_label();
        b.const_bits(x, 40);
        b.const_bits(y, 2);
        b.arith(ArithKind::AddU, z, x, y, fault, fault);
        b.ret(0);
        b.bind(fault);
        b.ret(101);
        let (r, slots) = run(&b.finish());
        assert_eq!(r, 0);
        assert_eq!(slots[2], 42);
    }

    #[test]
    fn overflow_routes_to_fault_block() {
        let mut b = ProgramBuilder::new();
        let (x, y, z) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
        let fault = b.new_label();
        b.const_bits(x, u64::MAX);
        b.const_bits(y, 1);
        b.arith(ArithKind::AddU, z, x, y, fault, fault);
        b.ret(0);
        b.bind(fault);
        b.ret(101);
        assert_eq!(run(&b.finish()).0, 101);
    }

    #[test]
    fn i64_min_div_minus_one_overflows() {
        let mut b = ProgramBuilder::new();
        let (x, y, z) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
        let of = b.new_label();
        let dz = b.new_label();
        b.const_bits(x, i64::MIN as u64);
        b.const_bits(y, -1i64 as u64);
        b.arith(ArithKind::DivI, z, x, y, of, dz);
        b.ret(0);
        b.bind(of);
        b.ret(101);
        b.bind(dz);
        b.ret(102);
        assert_eq!(run(&b.finish()).0, 101);
    }

    #[test]
    fn float_total_order_compare() {
        for (a, b, kind, want) in [
            (1.5f64, 2.5f64, CmpKind::LtF, 1u64),
            (f64::NAN, 0.0, CmpKind::GtF, 1), // positive NaN sorts above all reals
            (-0.0, 0.0, CmpKind::LtF, 1),     // total order separates zeros
            (2.0, 2.0, CmpKind::EqBits, 1),
        ] {
            let mut pb = ProgramBuilder::new();
            let (x, y, z) = (pb.alloc_slot(), pb.alloc_slot(), pb.alloc_slot());
            pb.const_bits(x, a.to_bits());
            pb.const_bits(y, b.to_bits());
            pb.cmp(kind, z, x, y);
            pb.ret(0);
            let (_, slots) = run(&pb.finish());
            assert_eq!(slots[2], want, "{a} {kind:?} {b}");
            // Spot-check against the library total order.
            if matches!(kind, CmpKind::LtF) {
                assert_eq!(slots[2] == 1, a.total_cmp(&b) == std::cmp::Ordering::Less);
            }
        }
    }

    #[test]
    fn thunk_fault_routes_to_handler() {
        extern "C" fn faulting(env: *mut c_void, _: u64, _: *const u64, _: u64) -> u64 {
            // The env's first byte is the fault flag.
            unsafe { *(env as *mut u8) = 1 };
            0
        }
        let mut b = ProgramBuilder::new();
        let d = b.alloc_slot();
        let fault = b.new_label();
        b.call_expr(9, d, &[], fault);
        b.ret(0);
        b.bind(fault);
        b.ret(103);
        let p = b.finish();
        let tp = ThreadedProgram::compile(&p);
        let mut slots = vec![0u64; tp.slot_count()];
        let mut args = vec![0u64; tp.arg_buf_len()];
        let mut flag = 0u8;
        let mut ctx = VmCtx::new(&mut flag as *mut u8 as *mut c_void, faulting, no_stmt);
        assert_eq!(tp.run(&mut ctx, &mut slots, &mut args), 103);
        assert_eq!(flag, 1);
    }
}
