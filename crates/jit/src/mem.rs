//! Canary-guarded memory for generated code.
//!
//! The register slots and the thunk argument buffer are the only memory
//! the emitted templates write to directly (everything else goes through
//! thunks into safe Rust). [`AlignedMemory`] packs both into one 8-byte
//! aligned allocation bracketed and separated by canary words, so an
//! out-of-range template store is detected after every run instead of
//! silently corrupting the host heap.

/// Guard words on each side of every region.
const GUARD_WORDS: usize = 4;
/// The canary pattern (arbitrary, odd, unlikely bits).
const CANARY: u64 = 0xD15C_0DE5_CAFE_B007;

/// `[guard | slots | guard | args | guard]`, all `u64` words.
pub struct AlignedMemory {
    buf: Vec<u64>,
    slots: usize,
    args: usize,
}

impl AlignedMemory {
    /// Allocates a region with `slots` register slots and `args` argument
    /// words, zero-initialized, guards armed.
    pub fn new(slots: usize, args: usize) -> AlignedMemory {
        let mut buf = vec![0u64; slots + args + 3 * GUARD_WORDS];
        for g in 0..GUARD_WORDS {
            buf[g] = CANARY;
            buf[GUARD_WORDS + slots + g] = CANARY;
            buf[2 * GUARD_WORDS + slots + args + g] = CANARY;
        }
        AlignedMemory { buf, slots, args }
    }

    /// Mutable views of the two live regions, guard words excluded.
    pub fn regions_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        let (head, rest) = self.buf.split_at_mut(GUARD_WORDS + self.slots);
        let slots = &mut head[GUARD_WORDS..];
        let args = &mut rest[GUARD_WORDS..GUARD_WORDS + self.args];
        (slots, args)
    }

    /// Verifies every canary word; returns which guard was clobbered.
    pub fn check(&self) -> Result<(), &'static str> {
        let (s, a) = (self.slots, self.args);
        for g in 0..GUARD_WORDS {
            if self.buf[g] != CANARY {
                return Err("front guard clobbered");
            }
            if self.buf[GUARD_WORDS + s + g] != CANARY {
                return Err("slots/args guard clobbered");
            }
            if self.buf[2 * GUARD_WORDS + s + a + g] != CANARY {
                return Err("rear guard clobbered");
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_detect_overruns() {
        let mut m = AlignedMemory::new(4, 2);
        assert!(m.check().is_ok());
        {
            let (slots, args) = m.regions_mut();
            slots.fill(u64::MAX);
            args.fill(u64::MAX);
        }
        // Writes inside the regions never trip the guards.
        assert!(m.check().is_ok());
        // A write one past the slots region does.
        m.buf[GUARD_WORDS + 4] = 0;
        assert_eq!(m.check(), Err("slots/args guard clobbered"));
    }
}
