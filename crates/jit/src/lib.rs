//! # adn-jit — compiled execution tiers for ADN element plans
//!
//! The native backend's tree-walking interpreter (`adn_backend::plan::exec`)
//! is the semantic oracle but pays enum dispatch, `Cow` plumbing and
//! recursion per message. This crate provides the two compiled tiers that
//! replace it on the hot path:
//!
//! * [`program`] — a linear, slot-based op IR ([`program::Program`]) that
//!   the backend lowers each statement list into. Everything the IR cannot
//!   express natively escapes through two embedder-provided thunks (an
//!   expression thunk and a statement thunk), so the lowering is total:
//!   any plan compiles, and unsupported constructs simply run interpreted
//!   behind a helper call.
//! * [`threaded`] — a typed direct-threaded executor: ops are pre-decoded
//!   into flat structs paired with per-opcode handler function pointers.
//!   This is the portable tier and the default off x86-64.
//! * [`x86`] — an RBPF-style template JIT for x86-64 Linux: each op emits
//!   a fixed machine-code template into an mmap'd W^X [`x86::CodeBuf`].
//!   Same op IR, same thunk ABI, same return protocol as the threaded
//!   tier, so the two are drop-in interchangeable.
//! * [`mem`] — [`mem::AlignedMemory`], the canary-guarded region holding
//!   the register slots and the thunk argument buffer the generated code
//!   writes through.
//! * [`disasm`] — annotated listings for both tiers (`adn-lint --jit-dump`).
//!
//! The crate is deliberately policy-free: it knows nothing about messages,
//! state tables or UDFs. The backend owns lowering and the thunk
//! implementations; this crate owns execution.

pub mod disasm;
pub mod mem;
pub mod program;
pub mod threaded;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub mod x86;

use std::ffi::c_void;

/// Which execution tier `compile_engine` should produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JitTier {
    /// Native JIT where supported (x86-64 Linux), otherwise direct-threaded.
    #[default]
    Auto,
    /// The tree-walking interpreter (the differential oracle).
    Interp,
    /// The portable typed direct-threaded executor.
    Threaded,
    /// The x86-64 template JIT (errors at compile time if unsupported).
    Native,
}

impl JitTier {
    /// Parses the `ADN_JIT` environment override.
    pub fn from_env_str(s: &str) -> Option<JitTier> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "auto" => JitTier::Auto,
            "interp" | "off" => JitTier::Interp,
            "threaded" => JitTier::Threaded,
            "native" | "jit" => JitTier::Native,
            _ => return None,
        })
    }
}

/// True when the native template JIT can run on this build target.
pub const fn native_available() -> bool {
    cfg!(all(target_arch = "x86_64", target_os = "linux"))
}

/// Byte offset, inside the embedder env, of the fault flag.
///
/// Contract: the first byte of the structure `VmCtx::env` points at is a
/// fault flag. An expression thunk that fails records its error in the
/// env and sets this byte nonzero; both executors check it after every
/// expression call (the x86 tier as `cmp byte [env], 0`). The embedder
/// clears it before each run.
pub const ENV_FAULT_OFFSET: usize = 0;

/// The execution context both tiers hand to generated/threaded code.
///
/// `repr(C)` with fixed field order: the x86 templates address fields by
/// constant offset (env +0, expr_thunk +8, stmt_thunk +16, mod_f64 +24).
#[repr(C)]
pub struct VmCtx {
    /// Opaque embedder state passed back to the thunks. Its first byte is
    /// the fault flag (see [`ENV_FAULT_OFFSET`]).
    pub env: *mut c_void,
    /// Expression escape: `(env, spec, args_ptr, argc) -> result bits`.
    /// On failure the thunk records the error in `env` and sets the env
    /// fault byte.
    pub expr_thunk: extern "C" fn(*mut c_void, u64, *const u64, u64) -> u64,
    /// Statement escape: `(env, spec) -> 0` to continue, or a nonzero
    /// program return code (verdict/fault) that terminates execution.
    pub stmt_thunk: extern "C" fn(*mut c_void, u64) -> u64,
    /// `fmod` for the `ModF` template (kept out of line so the emitter
    /// never needs a libm relocation).
    pub mod_f64: extern "C" fn(f64, f64) -> f64,
}

impl VmCtx {
    /// A context around an embedder env and its two escape thunks.
    pub fn new(
        env: *mut c_void,
        expr_thunk: extern "C" fn(*mut c_void, u64, *const u64, u64) -> u64,
        stmt_thunk: extern "C" fn(*mut c_void, u64) -> u64,
    ) -> VmCtx {
        VmCtx {
            env,
            expr_thunk,
            stmt_thunk,
            mod_f64: mod_f64_impl,
        }
    }

    /// Reads the env fault flag (first byte of the env structure).
    ///
    /// # Safety
    /// `env` must point to a live embedder env honoring the fault-byte
    /// contract.
    #[inline(always)]
    pub unsafe fn fault_raised(&self) -> bool {
        !self.env.is_null() && *(self.env as *const u8) != 0
    }
}

extern "C" fn mod_f64_impl(a: f64, b: f64) -> f64 {
    a % b
}

/// Program return protocol shared by both tiers (and decoded by the
/// backend's `JitEngine`).
pub mod ret {
    /// Fell off the end: forward the message.
    pub const FORWARD: u64 = 0;
    /// A verdict was recorded in the embedder env (abort/prebuilt).
    pub const VERDICT: u64 = 1;
    /// Drop the message.
    pub const DROP: u64 = 2;
    /// Inline arithmetic overflowed (`kind` byte of an encoded fault).
    pub const FAULT_OVERFLOW: u64 = 101;
    /// Inline division by zero.
    pub const FAULT_DIV_ZERO: u64 = 102;
    /// A thunk recorded a detailed error in the embedder env.
    pub const FAULT_ENV: u64 = 103;

    /// Encodes a fault with the element index that raised it (fused
    /// programs run several elements through one return path).
    pub const fn encode_fault(element: usize, kind: u64) -> u64 {
        ((element as u64) << 8) | kind
    }

    /// Splits an encoded fault into `(element, kind)`; `None` for
    /// non-fault codes.
    pub fn decode_fault(code: u64) -> Option<(usize, u64)> {
        let kind = code & 0xff;
        if matches!(kind, FAULT_OVERFLOW | FAULT_DIV_ZERO | FAULT_ENV) {
            Some(((code >> 8) as usize, kind))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_env_parse() {
        assert_eq!(JitTier::from_env_str("auto"), Some(JitTier::Auto));
        assert_eq!(JitTier::from_env_str("OFF"), Some(JitTier::Interp));
        assert_eq!(JitTier::from_env_str("threaded"), Some(JitTier::Threaded));
        assert_eq!(JitTier::from_env_str("native"), Some(JitTier::Native));
        assert_eq!(JitTier::from_env_str("bogus"), None);
    }

    #[test]
    fn fault_codes_roundtrip() {
        for elem in [0usize, 1, 7, 255] {
            for kind in [ret::FAULT_OVERFLOW, ret::FAULT_DIV_ZERO, ret::FAULT_ENV] {
                let enc = ret::encode_fault(elem, kind);
                assert_eq!(ret::decode_fault(enc), Some((elem, kind)));
            }
        }
        assert_eq!(ret::decode_fault(ret::FORWARD), None);
        assert_eq!(ret::decode_fault(ret::VERDICT), None);
        assert_eq!(ret::decode_fault(ret::DROP), None);
    }

    #[test]
    fn vmctx_field_offsets_match_templates() {
        let ctx = VmCtx::new(std::ptr::null_mut(), dummy_expr, dummy_stmt);
        let base = &ctx as *const VmCtx as usize;
        assert_eq!(&ctx.env as *const _ as usize - base, 0);
        assert_eq!(&ctx.expr_thunk as *const _ as usize - base, 8);
        assert_eq!(&ctx.stmt_thunk as *const _ as usize - base, 16);
        assert_eq!(&ctx.mod_f64 as *const _ as usize - base, 24);
    }

    extern "C" fn dummy_expr(_: *mut c_void, _: u64, _: *const u64, _: u64) -> u64 {
        0
    }
    extern "C" fn dummy_stmt(_: *mut c_void, _: u64) -> u64 {
        0
    }
}
