//! The linear op IR both compiled tiers execute.
//!
//! A [`Program`] is a flat op array over `u64` register slots. Values are
//! raw bits: unboxed scalars (`u64`/`i64` two's complement, `f64` bit
//! patterns, booleans as 0/1) or opaque embedder handles — the IR never
//! inspects handle bits, it only moves them and passes them to thunks.
//!
//! Control flow is fully explicit: every fallible op carries the op index
//! it jumps to on failure (typically a per-element `Return` block emitted
//! by the lowering), so the executors need no implicit fault state beyond
//! the thunk fault flag.

/// A register slot index.
pub type Slot = u16;

/// Binary arithmetic templates. Semantics mirror the reference
/// evaluator's `eval_arith` for operands of the same static type:
/// checked integer ops fault `Overflow`, division/modulo by zero faults
/// `DivZero` (checked before the op, including `±0.0` for floats).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithKind {
    AddU,
    AddI,
    AddF,
    SubI,
    SubF,
    MulU,
    MulI,
    MulF,
    DivU,
    DivI,
    DivF,
    ModU,
    ModI,
    ModF,
}

impl ArithKind {
    /// True for kinds that can raise a divide-by-zero fault.
    pub fn can_div_zero(self) -> bool {
        matches!(
            self,
            ArithKind::DivU
                | ArithKind::DivI
                | ArithKind::DivF
                | ArithKind::ModU
                | ArithKind::ModI
                | ArithKind::ModF
        )
    }
}

/// Comparison templates producing a 0/1 boolean. Equality on same-typed
/// operands is bit equality for every scalar (for `f64` this matches
/// `total_cmp == Equal`); ordered float compares use the IEEE total-order
/// key transform to match `f64::total_cmp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    EqBits,
    NeBits,
    LtU,
    LeU,
    GtU,
    GeU,
    LtI,
    LeI,
    GtI,
    GeI,
    LtF,
    LeF,
    GtF,
    GeF,
}

/// Unary negation templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegKind {
    /// `i64` checked negation (faults on `i64::MIN`).
    I64,
    /// `f64` sign-bit flip.
    F64,
}

/// One op. `target`/`on_*` fields are op indexes after
/// [`ProgramBuilder::finish`] resolves labels.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `slots[dst] = bits`.
    ConstBits { dst: Slot, bits: u64 },
    /// `slots[dst] = slots[src]`.
    Mov { dst: Slot, src: Slot },
    /// `slots[dst] = slots[a] <kind> slots[b]`, jumping to `on_overflow`
    /// or `on_div_zero` on fault.
    Arith {
        kind: ArithKind,
        dst: Slot,
        a: Slot,
        b: Slot,
        on_overflow: u32,
        on_div_zero: u32,
    },
    /// Checked/bitwise negation.
    Neg {
        kind: NegKind,
        dst: Slot,
        src: Slot,
        on_overflow: u32,
    },
    /// Boolean not: `slots[dst] = slots[src] ^ 1`.
    NotBool { dst: Slot, src: Slot },
    /// Comparison producing 0/1.
    Cmp {
        kind: CmpKind,
        dst: Slot,
        a: Slot,
        b: Slot,
    },
    /// `f64` truthiness: 1 unless the value is `+0.0`/`-0.0`.
    TruthyF64 { dst: Slot, src: Slot },
    /// `u64 -> f64` (Rust `as` rounding).
    CastU64F64 { dst: Slot, src: Slot },
    /// `i64 -> f64`.
    CastI64F64 { dst: Slot, src: Slot },
    /// `u64 -> i64`, faulting (overflow) above `i64::MAX`.
    CastU64I64 {
        dst: Slot,
        src: Slot,
        on_overflow: u32,
    },
    /// Unconditional jump.
    Jump { target: u32 },
    /// Jump when `slots[cond] == 0`.
    JumpIfFalse { cond: Slot, target: u32 },
    /// Jump when `slots[cond] != 0`.
    JumpIfTrue { cond: Slot, target: u32 },
    /// Copy `argc` arg slots into the arg buffer and call the expression
    /// thunk; result bits land in `dst`. Jumps to `on_fault` when the
    /// thunk raised the context fault flag.
    CallExpr {
        spec: u32,
        dst: Slot,
        args_at: u32,
        argc: u16,
        on_fault: u32,
    },
    /// Call the statement thunk; a nonzero return terminates the program
    /// with that code.
    CallStmt { spec: u32 },
    /// Terminate with `code`.
    Return { code: u64 },
}

/// A finished program: ops with resolved targets plus the flattened
/// argument-slot lists `CallExpr` ops reference.
#[derive(Debug, Clone)]
pub struct Program {
    pub ops: Vec<Op>,
    /// Flattened `CallExpr` argument slot lists (`args_at`/`argc` index
    /// into this).
    pub arg_slots: Vec<Slot>,
    /// Number of register slots the program uses.
    pub slot_count: u16,
    /// Size of the thunk argument buffer (max argc over all calls).
    pub arg_buf_len: u16,
    /// Source annotations: `(op index, text)`, sorted by op index. Used
    /// by the disassembler to tie templates back to plan-IR lines.
    pub notes: Vec<(u32, String)>,
}

/// An unresolved jump target handed out by [`ProgramBuilder::new_label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Builds a [`Program`]: allocates slots, emits ops against labels, then
/// resolves all targets in [`finish`](ProgramBuilder::finish).
#[derive(Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    arg_slots: Vec<Slot>,
    next_slot: u16,
    max_args: u16,
    labels: Vec<Option<u32>>,
    notes: Vec<(u32, String)>,
}

impl ProgramBuilder {
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Allocates a fresh register slot.
    pub fn alloc_slot(&mut self) -> Slot {
        let s = self.next_slot;
        self.next_slot = self
            .next_slot
            .checked_add(1)
            .expect("program exceeds 65535 slots");
        s
    }

    /// Creates an unbound label for forward jumps.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the next emitted op.
    pub fn bind(&mut self, label: Label) {
        let at = self.ops.len() as u32;
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(at);
    }

    /// Attaches a source annotation to the next emitted op.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push((self.ops.len() as u32, text.into()));
    }

    /// Emits an op whose `target`/`on_*` fields (if any) hold *label ids*
    /// (use the `emit_*` helpers to make that explicit).
    fn push(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    pub fn const_bits(&mut self, dst: Slot, bits: u64) {
        self.push(Op::ConstBits { dst, bits });
    }

    pub fn mov(&mut self, dst: Slot, src: Slot) {
        self.push(Op::Mov { dst, src });
    }

    pub fn arith(
        &mut self,
        kind: ArithKind,
        dst: Slot,
        a: Slot,
        b: Slot,
        on_overflow: Label,
        on_div_zero: Label,
    ) {
        self.push(Op::Arith {
            kind,
            dst,
            a,
            b,
            on_overflow: on_overflow.0,
            on_div_zero: on_div_zero.0,
        });
    }

    pub fn neg(&mut self, kind: NegKind, dst: Slot, src: Slot, on_overflow: Label) {
        self.push(Op::Neg {
            kind,
            dst,
            src,
            on_overflow: on_overflow.0,
        });
    }

    pub fn not_bool(&mut self, dst: Slot, src: Slot) {
        self.push(Op::NotBool { dst, src });
    }

    pub fn cmp(&mut self, kind: CmpKind, dst: Slot, a: Slot, b: Slot) {
        self.push(Op::Cmp { kind, dst, a, b });
    }

    pub fn truthy_f64(&mut self, dst: Slot, src: Slot) {
        self.push(Op::TruthyF64 { dst, src });
    }

    pub fn cast_u64_f64(&mut self, dst: Slot, src: Slot) {
        self.push(Op::CastU64F64 { dst, src });
    }

    pub fn cast_i64_f64(&mut self, dst: Slot, src: Slot) {
        self.push(Op::CastI64F64 { dst, src });
    }

    pub fn cast_u64_i64(&mut self, dst: Slot, src: Slot, on_overflow: Label) {
        self.push(Op::CastU64I64 {
            dst,
            src,
            on_overflow: on_overflow.0,
        });
    }

    pub fn jump(&mut self, target: Label) {
        self.push(Op::Jump { target: target.0 });
    }

    pub fn jump_if_false(&mut self, cond: Slot, target: Label) {
        self.push(Op::JumpIfFalse {
            cond,
            target: target.0,
        });
    }

    pub fn jump_if_true(&mut self, cond: Slot, target: Label) {
        self.push(Op::JumpIfTrue {
            cond,
            target: target.0,
        });
    }

    pub fn call_expr(&mut self, spec: u32, dst: Slot, args: &[Slot], on_fault: Label) {
        let args_at = self.arg_slots.len() as u32;
        self.arg_slots.extend_from_slice(args);
        self.max_args = self.max_args.max(args.len() as u16);
        self.push(Op::CallExpr {
            spec,
            dst,
            args_at,
            argc: args.len() as u16,
            on_fault: on_fault.0,
        });
    }

    pub fn call_stmt(&mut self, spec: u32) {
        self.push(Op::CallStmt { spec });
    }

    pub fn ret(&mut self, code: u64) {
        self.push(Op::Return { code });
    }

    /// Resolves labels to op indexes and validates the program.
    pub fn finish(mut self) -> Program {
        let resolve = |labels: &[Option<u32>], id: u32| -> u32 {
            labels[id as usize].expect("jump to unbound label")
        };
        let labels = std::mem::take(&mut self.labels);
        for op in &mut self.ops {
            match op {
                Op::Arith {
                    on_overflow,
                    on_div_zero,
                    ..
                } => {
                    *on_overflow = resolve(&labels, *on_overflow);
                    *on_div_zero = resolve(&labels, *on_div_zero);
                }
                Op::Neg { on_overflow, .. } | Op::CastU64I64 { on_overflow, .. } => {
                    *on_overflow = resolve(&labels, *on_overflow);
                }
                Op::Jump { target }
                | Op::JumpIfFalse { target, .. }
                | Op::JumpIfTrue { target, .. } => *target = resolve(&labels, *target),
                Op::CallExpr { on_fault, .. } => *on_fault = resolve(&labels, *on_fault),
                _ => {}
            }
        }
        let p = Program {
            ops: self.ops,
            arg_slots: self.arg_slots,
            slot_count: self.next_slot.max(1),
            arg_buf_len: self.max_args.max(1),
            notes: self.notes,
        };
        p.validate();
        p
    }
}

impl Program {
    /// Panics on malformed programs (out-of-range slots/targets); called
    /// from `finish` so executors can trust indices.
    pub fn validate(&self) {
        let n = self.ops.len() as u32;
        let slot_ok = |s: Slot| assert!(s < self.slot_count, "slot {s} out of range");
        let tgt_ok = |t: u32| assert!(t < n, "jump target {t} out of range ({n} ops)");
        assert!(
            matches!(
                self.ops.last(),
                Some(Op::Return { .. }) | Some(Op::Jump { .. })
            ),
            "program must end in Return or Jump"
        );
        for op in &self.ops {
            match op {
                Op::ConstBits { dst, .. } => slot_ok(*dst),
                Op::Mov { dst, src } | Op::NotBool { dst, src } | Op::TruthyF64 { dst, src } => {
                    slot_ok(*dst);
                    slot_ok(*src);
                }
                Op::Arith {
                    dst,
                    a,
                    b,
                    on_overflow,
                    on_div_zero,
                    ..
                } => {
                    slot_ok(*dst);
                    slot_ok(*a);
                    slot_ok(*b);
                    tgt_ok(*on_overflow);
                    tgt_ok(*on_div_zero);
                }
                Op::Neg {
                    dst,
                    src,
                    on_overflow,
                    ..
                } => {
                    slot_ok(*dst);
                    slot_ok(*src);
                    tgt_ok(*on_overflow);
                }
                Op::Cmp { dst, a, b, .. } => {
                    slot_ok(*dst);
                    slot_ok(*a);
                    slot_ok(*b);
                }
                Op::CastU64F64 { dst, src } | Op::CastI64F64 { dst, src } => {
                    slot_ok(*dst);
                    slot_ok(*src);
                }
                Op::CastU64I64 {
                    dst,
                    src,
                    on_overflow,
                } => {
                    slot_ok(*dst);
                    slot_ok(*src);
                    tgt_ok(*on_overflow);
                }
                Op::Jump { target } => tgt_ok(*target),
                Op::JumpIfFalse { cond, target } | Op::JumpIfTrue { cond, target } => {
                    slot_ok(*cond);
                    tgt_ok(*target);
                }
                Op::CallExpr {
                    dst,
                    args_at,
                    argc,
                    on_fault,
                    ..
                } => {
                    slot_ok(*dst);
                    tgt_ok(*on_fault);
                    let end = *args_at as usize + *argc as usize;
                    assert!(end <= self.arg_slots.len(), "arg list out of range");
                    for &s in &self.arg_slots[*args_at as usize..end] {
                        slot_ok(s);
                    }
                }
                Op::CallStmt { .. } | Op::Return { .. } => {}
            }
        }
    }

    /// The note attached to `op`, if any.
    pub fn note_at(&self, op: u32) -> Option<&str> {
        self.notes
            .binary_search_by_key(&op, |(i, _)| *i)
            .ok()
            .map(|i| self.notes[i].1.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_forward_labels() {
        let mut b = ProgramBuilder::new();
        let s = b.alloc_slot();
        let done = b.new_label();
        b.const_bits(s, 1);
        b.jump_if_true(s, done);
        b.ret(7);
        b.bind(done);
        b.ret(0);
        let p = b.finish();
        assert_eq!(p.ops[1], Op::JumpIfTrue { cond: s, target: 3 });
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.new_label();
        b.jump(l);
        b.finish();
    }
}
