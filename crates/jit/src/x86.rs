//! The x86-64 template JIT tier (Linux only).
//!
//! [`NativeProgram::compile`] walks the op IR once and emits a fixed
//! machine-code template per op into an anonymous mapping, then flips it
//! W^X ([`CodeBuf`]): pages are never writable and executable at the same
//! time. Calling convention inside generated code:
//!
//! * `rbx` — the [`VmCtx`] pointer (thunk table)
//! * `r12` — register slot base (`slots[i]` at `[r12 + 8*i]`)
//! * `r13` — thunk argument buffer base
//! * `r14` — the embedder env pointer (first byte = fault flag)
//! * `rax`/`rcx`/`rdx`/`xmm0`/`xmm1` — template scratch
//!
//! Entry: `extern "C" fn(ctx: *mut VmCtx, slots: *mut u64, args: *mut u64)
//! -> u64`, returning the shared program return code. All fallible
//! templates branch to explicit per-program `Return` blocks (the op IR
//! carries the targets), so the only implicit state is the env fault byte
//! checked after each expression call.

use std::ffi::c_void;

use crate::program::{ArithKind, CmpKind, NegKind, Op, Program};
use crate::VmCtx;

extern "C" {
    fn mmap(
        addr: *mut c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        offset: i64,
    ) -> *mut c_void;
    fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    fn munmap(addr: *mut c_void, len: usize) -> i32;
}

const PROT_READ: i32 = 1;
const PROT_WRITE: i32 = 2;
const PROT_EXEC: i32 = 4;
const MAP_PRIVATE: i32 = 2;
const MAP_ANONYMOUS: i32 = 0x20;
const MAP_FAILED: usize = usize::MAX;

/// An mmap'd W^X code region: written once while `RW`, then sealed `RX`.
pub struct CodeBuf {
    ptr: *mut u8,
    len: usize,
}

// The mapping is executable+readable only after sealing; the raw pointer
// is never written again, so moving it across threads is sound.
unsafe impl Send for CodeBuf {}
unsafe impl Sync for CodeBuf {}

impl CodeBuf {
    /// Maps `code` into fresh executable memory.
    pub fn new(code: &[u8]) -> Result<CodeBuf, String> {
        let len = code.len().max(1).div_ceil(4096) * 4096;
        // SAFETY: anonymous private mapping, checked for failure; the
        // region is exclusively ours until munmap in Drop.
        unsafe {
            let ptr = mmap(
                std::ptr::null_mut(),
                len,
                PROT_READ | PROT_WRITE,
                MAP_PRIVATE | MAP_ANONYMOUS,
                -1,
                0,
            );
            if ptr as usize == MAP_FAILED || ptr.is_null() {
                return Err("mmap failed for JIT code buffer".into());
            }
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
            if mprotect(ptr, len, PROT_READ | PROT_EXEC) != 0 {
                munmap(ptr, len);
                return Err("mprotect(RX) failed for JIT code buffer".into());
            }
            Ok(CodeBuf {
                ptr: ptr as *mut u8,
                len,
            })
        }
    }

    fn entry(&self) -> EntryFn {
        // SAFETY: the buffer holds a complete function emitted by
        // `NativeProgram::compile` with the documented ABI.
        unsafe { std::mem::transmute::<*mut u8, EntryFn>(self.ptr) }
    }
}

impl Drop for CodeBuf {
    fn drop(&mut self) {
        // SAFETY: ptr/len came from mmap and are unmapped exactly once.
        unsafe {
            munmap(self.ptr as *mut c_void, self.len);
        }
    }
}

type EntryFn = unsafe extern "C" fn(*mut VmCtx, *mut u64, *mut u64) -> u64;

/// Emitted machine code plus `(start, end)` byte spans per op.
type CodeAndSpans = (Vec<u8>, Vec<(usize, usize)>);

/// A program compiled to native x86-64 code.
pub struct NativeProgram {
    buf: CodeBuf,
    code: Vec<u8>,
    /// `(code_start, code_end)` per op, for the disassembler.
    spans: Vec<(usize, usize)>,
    slot_count: u16,
    arg_buf_len: u16,
}

impl NativeProgram {
    pub fn slot_count(&self) -> usize {
        self.slot_count as usize
    }

    pub fn arg_buf_len(&self) -> usize {
        self.arg_buf_len as usize
    }

    /// The emitted machine code (a private copy, for listings).
    pub fn code(&self) -> &[u8] {
        &self.code
    }

    /// Emitted byte range of op `i`.
    pub fn span_of_op(&self, i: usize) -> (usize, usize) {
        self.spans[i]
    }

    /// All per-op byte ranges (for [`crate::disasm::Listing::with_code`]).
    pub fn spans(&self) -> &[(usize, usize)] {
        &self.spans
    }

    /// Runs the generated code to termination.
    pub fn run(&self, ctx: &mut VmCtx, slots: &mut [u64], args: &mut [u64]) -> u64 {
        assert!(slots.len() >= self.slot_count as usize);
        assert!(args.len() >= self.arg_buf_len as usize);
        // SAFETY: buffer sizes checked above; the generated code only
        // touches slots/args/ctx and calls the provided thunks.
        unsafe { (self.buf.entry())(ctx as *mut VmCtx, slots.as_mut_ptr(), args.as_mut_ptr()) }
    }

    /// Emits templates for every op of `p` (finished/validated).
    pub fn compile(p: &Program) -> Result<NativeProgram, String> {
        let mut a = Asm::new(p.ops.len());
        a.prologue();
        for (i, op) in p.ops.iter().enumerate() {
            a.begin_op(i);
            a.emit_op(op, &p.arg_slots);
        }
        a.end_ops();
        let (code, spans) = a.finish()?;
        let buf = CodeBuf::new(&code)?;
        Ok(NativeProgram {
            buf,
            code,
            spans,
            slot_count: p.slot_count,
            arg_buf_len: p.arg_buf_len,
        })
    }
}

/// A pending rel32 to patch once all op offsets are known.
struct Fixup {
    /// Offset of the 4 displacement bytes.
    at: usize,
    /// Target op index, or `u32::MAX` for the epilogue.
    target: u32,
}

const EPILOGUE: u32 = u32::MAX;

struct Asm {
    code: Vec<u8>,
    op_offsets: Vec<usize>,
    spans: Vec<(usize, usize)>,
    fixups: Vec<Fixup>,
    epilogue_at: usize,
}

impl Asm {
    fn new(ops: usize) -> Asm {
        Asm {
            code: Vec::with_capacity(ops * 24 + 64),
            op_offsets: Vec::with_capacity(ops),
            spans: Vec::with_capacity(ops),
            fixups: Vec::new(),
            epilogue_at: 0,
        }
    }

    fn u8(&mut self, b: u8) {
        self.code.push(b);
    }

    fn bytes(&mut self, b: &[u8]) {
        self.code.extend_from_slice(b);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn begin_op(&mut self, i: usize) {
        debug_assert_eq!(self.op_offsets.len(), i);
        self.op_offsets.push(self.code.len());
        self.spans.push((self.code.len(), self.code.len()));
    }

    fn end_ops(&mut self) {
        // Falling off the end is impossible (programs end in Return/Jump),
        // but close the last span and place the epilogue.
        if let Some(last) = self.spans.last_mut() {
            last.1 = self.code.len();
        }
        self.epilogue_at = self.code.len();
        // add rsp,8 ; pop r15 r14 r13 r12 rbx rbp ; ret
        self.bytes(&[0x48, 0x83, 0xC4, 0x08]);
        self.bytes(&[
            0x41, 0x5F, 0x41, 0x5E, 0x41, 0x5D, 0x41, 0x5C, 0x5B, 0x5D, 0xC3,
        ]);
    }

    fn prologue(&mut self) {
        // push rbp rbx r12 r13 r14 r15 ; sub rsp,8 (16-byte call alignment)
        self.bytes(&[0x55, 0x53, 0x41, 0x54, 0x41, 0x55, 0x41, 0x56, 0x41, 0x57]);
        self.bytes(&[0x48, 0x83, 0xEC, 0x08]);
        // mov rbx,rdi ; mov r12,rsi ; mov r13,rdx ; mov r14,[rbx] (env)
        self.bytes(&[0x48, 0x89, 0xFB]);
        self.bytes(&[0x49, 0x89, 0xF4]);
        self.bytes(&[0x49, 0x89, 0xD5]);
        self.bytes(&[0x4C, 0x8B, 0x33]);
    }

    /// `mov <reg>, [r12 + 8*slot]` for rax(0)/rcx(1).
    fn load_slot(&mut self, reg: u8, slot: u16) {
        self.bytes(&[0x49, 0x8B, 0x84 | (reg << 3), 0x24]);
        self.u32(slot as u32 * 8);
    }

    /// `mov [r12 + 8*slot], <reg>` for rax(0)/rcx(1)/rdx(2).
    fn store_slot(&mut self, slot: u16, reg: u8) {
        self.bytes(&[0x49, 0x89, 0x84 | (reg << 3), 0x24]);
        self.u32(slot as u32 * 8);
    }

    /// Emits `jcc rel32` (or `jmp` with `cc == 0`) to an op target.
    fn jump_fix(&mut self, cc: Option<u8>, target: u32) {
        match cc {
            Some(cc) => self.bytes(&[0x0F, cc]),
            None => self.u8(0xE9),
        }
        self.fixups.push(Fixup {
            at: self.code.len(),
            target,
        });
        self.u32(0);
    }

    /// `mov rax, imm` (short form when it fits in 32 bits zero-extended).
    fn mov_rax_imm(&mut self, imm: u64) {
        if imm <= u32::MAX as u64 {
            self.u8(0xB8);
            self.u32(imm as u32);
        } else {
            self.bytes(&[0x48, 0xB8]);
            self.u64(imm);
        }
    }

    /// `movabs rdx, imm64`.
    fn mov_rdx_imm64(&mut self, imm: u64) {
        self.bytes(&[0x48, 0xBA]);
        self.u64(imm);
    }

    /// The float total-order key transform on rax and rcx (clobbers rdx).
    fn fkey_rax_rcx(&mut self) {
        // mov rdx,rax ; sar rdx,63 ; shr rdx,1 ; xor rax,rdx
        self.bytes(&[
            0x48, 0x89, 0xC2, 0x48, 0xC1, 0xFA, 0x3F, 0x48, 0xD1, 0xEA, 0x48, 0x31, 0xD0,
        ]);
        // mov rdx,rcx ; sar rdx,63 ; shr rdx,1 ; xor rcx,rdx
        self.bytes(&[
            0x48, 0x89, 0xCA, 0x48, 0xC1, 0xFA, 0x3F, 0x48, 0xD1, 0xEA, 0x48, 0x31, 0xD1,
        ]);
    }

    /// `setcc al ; movzx eax, al`.
    fn setcc_bool(&mut self, setcc: u8) {
        self.bytes(&[0x0F, setcc, 0xC0, 0x0F, 0xB6, 0xC0]);
    }

    /// Loads xmm0/xmm1 from rax/rcx.
    fn movq_xmm_from_gpr(&mut self) {
        self.bytes(&[0x66, 0x48, 0x0F, 0x6E, 0xC0]); // movq xmm0, rax
        self.bytes(&[0x66, 0x48, 0x0F, 0x6E, 0xC9]); // movq xmm1, rcx
    }

    /// `movq rax, xmm0`.
    fn movq_rax_from_xmm0(&mut self) {
        self.bytes(&[0x66, 0x48, 0x0F, 0x7E, 0xC0]);
    }

    fn emit_op(&mut self, op: &Op, arg_slots: &[u16]) {
        match *op {
            Op::ConstBits { dst, bits } => {
                self.mov_rax_imm(bits);
                self.store_slot(dst, 0);
            }
            Op::Mov { dst, src } => {
                self.load_slot(0, src);
                self.store_slot(dst, 0);
            }
            Op::Arith {
                kind,
                dst,
                a,
                b,
                on_overflow,
                on_div_zero,
            } => self.emit_arith(kind, dst, a, b, on_overflow, on_div_zero),
            Op::Neg {
                kind,
                dst,
                src,
                on_overflow,
            } => {
                self.load_slot(0, src);
                match kind {
                    NegKind::I64 => {
                        self.mov_rdx_imm64(i64::MIN as u64);
                        self.bytes(&[0x48, 0x39, 0xD0]); // cmp rax, rdx
                        self.jump_fix(Some(0x84), on_overflow); // je
                        self.bytes(&[0x48, 0xF7, 0xD8]); // neg rax
                    }
                    NegKind::F64 => {
                        self.mov_rdx_imm64(1u64 << 63);
                        self.bytes(&[0x48, 0x31, 0xD0]); // xor rax, rdx
                    }
                }
                self.store_slot(dst, 0);
            }
            Op::NotBool { dst, src } => {
                self.load_slot(0, src);
                self.bytes(&[0x48, 0x83, 0xF0, 0x01]); // xor rax, 1
                self.store_slot(dst, 0);
            }
            Op::Cmp { kind, dst, a, b } => {
                self.load_slot(0, a);
                self.load_slot(1, b);
                let setcc = match kind {
                    CmpKind::EqBits => 0x94,
                    CmpKind::NeBits => 0x95,
                    CmpKind::LtU => 0x92,
                    CmpKind::LeU => 0x96,
                    CmpKind::GtU => 0x97,
                    CmpKind::GeU => 0x93,
                    CmpKind::LtI | CmpKind::LtF => 0x9C,
                    CmpKind::LeI | CmpKind::LeF => 0x9E,
                    CmpKind::GtI | CmpKind::GtF => 0x9F,
                    CmpKind::GeI | CmpKind::GeF => 0x9D,
                };
                if matches!(
                    kind,
                    CmpKind::LtF | CmpKind::LeF | CmpKind::GtF | CmpKind::GeF
                ) {
                    self.fkey_rax_rcx();
                }
                self.bytes(&[0x48, 0x39, 0xC8]); // cmp rax, rcx
                self.setcc_bool(setcc);
                self.store_slot(dst, 0);
            }
            Op::TruthyF64 { dst, src } => {
                self.load_slot(0, src);
                self.bytes(&[0x48, 0xD1, 0xE0]); // shl rax,1 (drops sign bit)
                self.setcc_bool(0x95); // setne
                self.store_slot(dst, 0);
            }
            Op::CastU64F64 { dst, src } => {
                self.load_slot(0, src);
                self.bytes(&[0x48, 0x85, 0xC0]); // test rax, rax
                self.bytes(&[0x78, 0x07]); // js +7 (to the slow path)
                self.bytes(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]); // cvtsi2sd xmm0, rax
                self.bytes(&[0xEB, 0x15]); // jmp +21 (over the slow path)
                                           // Slow path (bit 63 set): halve with round-to-odd, double.
                self.bytes(&[0x48, 0x89, 0xC1]); // mov rcx, rax
                self.bytes(&[0x48, 0xD1, 0xE8]); // shr rax, 1
                self.bytes(&[0x83, 0xE1, 0x01]); // and ecx, 1
                self.bytes(&[0x48, 0x09, 0xC8]); // or rax, rcx
                self.bytes(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]); // cvtsi2sd xmm0, rax
                self.bytes(&[0xF2, 0x0F, 0x58, 0xC0]); // addsd xmm0, xmm0
                self.movq_rax_from_xmm0();
                self.store_slot(dst, 0);
            }
            Op::CastI64F64 { dst, src } => {
                self.load_slot(0, src);
                self.bytes(&[0xF2, 0x48, 0x0F, 0x2A, 0xC0]); // cvtsi2sd xmm0, rax
                self.movq_rax_from_xmm0();
                self.store_slot(dst, 0);
            }
            Op::CastU64I64 {
                dst,
                src,
                on_overflow,
            } => {
                self.load_slot(0, src);
                self.bytes(&[0x48, 0x85, 0xC0]); // test rax, rax
                self.jump_fix(Some(0x88), on_overflow); // js (bit 63 => > i64::MAX)
                self.store_slot(dst, 0);
            }
            Op::Jump { target } => self.jump_fix(None, target),
            Op::JumpIfFalse { cond, target } => {
                self.load_slot(0, cond);
                self.bytes(&[0x48, 0x85, 0xC0]); // test rax, rax
                self.jump_fix(Some(0x84), target); // jz
            }
            Op::JumpIfTrue { cond, target } => {
                self.load_slot(0, cond);
                self.bytes(&[0x48, 0x85, 0xC0]);
                self.jump_fix(Some(0x85), target); // jnz
            }
            Op::CallExpr {
                spec,
                dst,
                args_at,
                argc,
                on_fault,
            } => {
                for k in 0..argc as usize {
                    let slot = arg_slots[args_at as usize + k];
                    self.load_slot(0, slot);
                    // mov [r13 + 8k], rax
                    self.bytes(&[0x49, 0x89, 0x85]);
                    self.u32(k as u32 * 8);
                }
                self.bytes(&[0x4C, 0x89, 0xF7]); // mov rdi, r14 (env)
                self.u8(0xBE); // mov esi, spec
                self.u32(spec);
                self.bytes(&[0x4C, 0x89, 0xEA]); // mov rdx, r13 (args)
                self.u8(0xB9); // mov ecx, argc
                self.u32(argc as u32);
                self.bytes(&[0xFF, 0x53, 0x08]); // call [rbx+8] (expr_thunk)
                self.bytes(&[0x41, 0x80, 0x3E, 0x00]); // cmp byte [r14], 0
                self.jump_fix(Some(0x85), on_fault); // jne
                self.store_slot(dst, 0);
            }
            Op::CallStmt { spec } => {
                self.bytes(&[0x4C, 0x89, 0xF7]); // mov rdi, r14
                self.u8(0xBE);
                self.u32(spec);
                self.bytes(&[0xFF, 0x53, 0x10]); // call [rbx+16] (stmt_thunk)
                self.bytes(&[0x48, 0x85, 0xC0]); // test rax, rax
                self.jump_fix(Some(0x85), EPILOGUE); // jnz -> return rax
            }
            Op::Return { code } => {
                self.mov_rax_imm(code);
                self.jump_fix(None, EPILOGUE);
            }
        }
        if let Some(last) = self.spans.last_mut() {
            last.1 = self.code.len();
        }
        // Close the span of the previous op (spans are begun in begin_op;
        // the current op's span end is refreshed above on each emission).
        let n = self.spans.len();
        if n >= 2 {
            let start = self.op_offsets[n - 1];
            self.spans[n - 2].1 = start;
        }
    }

    fn emit_arith(&mut self, kind: ArithKind, dst: u16, a: u16, b: u16, of: u32, dz: u32) {
        self.load_slot(0, a);
        self.load_slot(1, b);
        let mut result_reg = 0u8; // rax unless noted
        match kind {
            ArithKind::AddU => {
                self.bytes(&[0x48, 0x01, 0xC8]); // add rax, rcx
                self.jump_fix(Some(0x82), of); // jc
            }
            ArithKind::AddI => {
                self.bytes(&[0x48, 0x01, 0xC8]);
                self.jump_fix(Some(0x80), of); // jo
            }
            ArithKind::SubI => {
                self.bytes(&[0x48, 0x29, 0xC8]); // sub rax, rcx
                self.jump_fix(Some(0x80), of);
            }
            ArithKind::MulU => {
                self.bytes(&[0x48, 0xF7, 0xE1]); // mul rcx (rdx:rax)
                self.jump_fix(Some(0x82), of); // jc (high half nonzero)
            }
            ArithKind::MulI => {
                self.bytes(&[0x48, 0x0F, 0xAF, 0xC1]); // imul rax, rcx
                self.jump_fix(Some(0x80), of);
            }
            ArithKind::DivU | ArithKind::ModU => {
                self.bytes(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                self.jump_fix(Some(0x84), dz); // jz
                self.bytes(&[0x31, 0xD2]); // xor edx, edx
                self.bytes(&[0x48, 0xF7, 0xF1]); // div rcx
                if kind == ArithKind::ModU {
                    result_reg = 2; // rdx
                }
            }
            ArithKind::DivI | ArithKind::ModI => {
                self.bytes(&[0x48, 0x85, 0xC9]); // test rcx, rcx
                self.jump_fix(Some(0x84), dz); // jz
                                               // i64::MIN / -1 traps in hardware; route it to overflow
                                               // to match checked_div/checked_rem.
                self.mov_rdx_imm64(i64::MIN as u64);
                self.bytes(&[0x48, 0x39, 0xD0]); // cmp rax, rdx
                self.bytes(&[0x75, 0x0A]); // jne +10 (skip the -1 check)
                self.bytes(&[0x48, 0x83, 0xF9, 0xFF]); // cmp rcx, -1
                self.jump_fix(Some(0x84), of); // je (6 bytes)
                self.bytes(&[0x48, 0x99]); // cqo
                self.bytes(&[0x48, 0xF7, 0xF9]); // idiv rcx
                if kind == ArithKind::ModI {
                    result_reg = 2;
                }
            }
            ArithKind::AddF | ArithKind::SubF | ArithKind::MulF => {
                self.movq_xmm_from_gpr();
                let opc = match kind {
                    ArithKind::AddF => 0x58,
                    ArithKind::SubF => 0x5C,
                    _ => 0x59,
                };
                self.bytes(&[0xF2, 0x0F, opc, 0xC1]); // op xmm0, xmm1
                self.movq_rax_from_xmm0();
            }
            ArithKind::DivF => {
                // shl-by-1 zero test treats ±0.0 as zero divisors.
                self.bytes(&[0x48, 0x89, 0xCA]); // mov rdx, rcx
                self.bytes(&[0x48, 0xD1, 0xE2]); // shl rdx, 1
                self.jump_fix(Some(0x84), dz); // jz
                self.movq_xmm_from_gpr();
                self.bytes(&[0xF2, 0x0F, 0x5E, 0xC1]); // divsd xmm0, xmm1
                self.movq_rax_from_xmm0();
            }
            ArithKind::ModF => {
                self.bytes(&[0x48, 0x89, 0xCA]);
                self.bytes(&[0x48, 0xD1, 0xE2]);
                self.jump_fix(Some(0x84), dz);
                self.movq_xmm_from_gpr();
                self.bytes(&[0xFF, 0x53, 0x18]); // call [rbx+24] (mod_f64)
                self.movq_rax_from_xmm0();
            }
        }
        self.store_slot(dst, result_reg);
    }

    fn finish(mut self) -> Result<CodeAndSpans, String> {
        for f in &self.fixups {
            let target = if f.target == EPILOGUE {
                self.epilogue_at
            } else {
                *self
                    .op_offsets
                    .get(f.target as usize)
                    .ok_or("fixup to unknown op")?
            };
            let rel = target as i64 - (f.at as i64 + 4);
            let rel: i32 = rel.try_into().map_err(|_| "jump out of rel32 range")?;
            self.code[f.at..f.at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        Ok((self.code, self.spans))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;
    use crate::threaded::ThreadedProgram;

    extern "C" fn echo_expr(_: *mut c_void, spec: u64, args: *const u64, argc: u64) -> u64 {
        // Sums spec and all args, for call-template testing.
        let mut acc = spec;
        for i in 0..argc as usize {
            acc = acc.wrapping_add(unsafe { *args.add(i) });
        }
        acc
    }
    extern "C" fn stop_stmt(_: *mut c_void, spec: u64) -> u64 {
        if spec == 7 {
            1
        } else {
            0
        }
    }

    fn run_native(p: &Program) -> (u64, Vec<u64>) {
        let np = NativeProgram::compile(p).unwrap();
        let mut slots = vec![0u64; np.slot_count()];
        let mut args = vec![0u64; np.arg_buf_len()];
        let mut flag = 0u8;
        let mut ctx = VmCtx::new(&mut flag as *mut u8 as *mut c_void, echo_expr, stop_stmt);
        let r = np.run(&mut ctx, &mut slots, &mut args);
        (r, slots)
    }

    fn run_threaded(p: &Program) -> (u64, Vec<u64>) {
        let tp = ThreadedProgram::compile(p);
        let mut slots = vec![0u64; tp.slot_count()];
        let mut args = vec![0u64; tp.arg_buf_len()];
        let mut flag = 0u8;
        let mut ctx = VmCtx::new(&mut flag as *mut u8 as *mut c_void, echo_expr, stop_stmt);
        let r = tp.run(&mut ctx, &mut slots, &mut args);
        (r, slots)
    }

    fn agree(p: &Program) -> (u64, Vec<u64>) {
        let n = run_native(p);
        let t = run_threaded(p);
        assert_eq!(n, t, "native and threaded tiers diverge");
        n
    }

    #[test]
    fn arith_matrix_matches_threaded_tier() {
        use crate::program::ArithKind::*;
        let cases: &[(ArithKind, u64, u64)] = &[
            (AddU, 40, 2),
            (AddU, u64::MAX, 1),
            (AddI, 5i64 as u64, (-9i64) as u64),
            (AddI, i64::MAX as u64, 1),
            (SubI, 3i64 as u64, 10i64 as u64),
            (SubI, i64::MIN as u64, 1),
            (MulU, 1 << 40, 1 << 23),
            (MulU, 1 << 40, 1 << 24),
            (MulI, (-3i64) as u64, 9i64 as u64),
            (MulI, i64::MIN as u64, (-1i64) as u64),
            (DivU, 100, 7),
            (DivU, 100, 0),
            (DivI, (-100i64) as u64, 7i64 as u64),
            (DivI, i64::MIN as u64, (-1i64) as u64),
            (DivI, 5i64 as u64, 0),
            (ModU, 100, 7),
            (ModI, (-100i64) as u64, 7i64 as u64),
            (ModI, i64::MIN as u64, (-1i64) as u64),
            (AddF, 1.5f64.to_bits(), 2.25f64.to_bits()),
            (SubF, 1.5f64.to_bits(), 2.25f64.to_bits()),
            (MulF, 3.0f64.to_bits(), (-0.5f64).to_bits()),
            (DivF, 1.0f64.to_bits(), 0.0f64.to_bits()),
            (DivF, 1.0f64.to_bits(), (-0.0f64).to_bits()),
            (DivF, 7.5f64.to_bits(), 2.5f64.to_bits()),
            (ModF, 7.5f64.to_bits(), 2.0f64.to_bits()),
            (ModF, 7.5f64.to_bits(), 0.0f64.to_bits()),
            (ModF, (-7.5f64).to_bits(), 2.0f64.to_bits()),
        ];
        for &(kind, x, y) in cases {
            let mut b = ProgramBuilder::new();
            let (sx, sy, sz) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
            let of = b.new_label();
            let dz = b.new_label();
            b.const_bits(sx, x);
            b.const_bits(sy, y);
            b.arith(kind, sz, sx, sy, of, dz);
            b.ret(0);
            b.bind(of);
            b.ret(101);
            b.bind(dz);
            b.ret(102);
            agree(&b.finish());
        }
    }

    #[test]
    fn compare_and_cast_matrix_matches_threaded_tier() {
        use crate::program::CmpKind::*;
        for kind in [
            EqBits, NeBits, LtU, LeU, GtU, GeU, LtI, LeI, GtI, GeI, LtF, LeF, GtF, GeF,
        ] {
            for (x, y) in [
                (0u64, 0u64),
                (1, 2),
                ((-5i64) as u64, 3),
                (f64::NAN.to_bits(), 1.0f64.to_bits()),
                ((-0.0f64).to_bits(), 0.0f64.to_bits()),
                (u64::MAX, 1),
            ] {
                let mut b = ProgramBuilder::new();
                let (sx, sy, sz) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
                b.const_bits(sx, x);
                b.const_bits(sy, y);
                b.cmp(kind, sz, sx, sy);
                b.ret(0);
                agree(&b.finish());
            }
        }
        for v in [0u64, 1, 1 << 53, u64::MAX, i64::MAX as u64, (1 << 63) + 3] {
            let mut b = ProgramBuilder::new();
            let (s, d) = (b.alloc_slot(), b.alloc_slot());
            b.const_bits(s, v);
            b.cast_u64_f64(d, s);
            b.ret(0);
            let (_, slots) = agree(&b.finish());
            assert_eq!(slots[1], (v as f64).to_bits(), "u64->f64 of {v}");

            let mut b = ProgramBuilder::new();
            let (s, d) = (b.alloc_slot(), b.alloc_slot());
            let of = b.new_label();
            b.const_bits(s, v);
            b.cast_u64_i64(d, s, of);
            b.ret(0);
            b.bind(of);
            b.ret(101);
            agree(&b.finish());
        }
    }

    #[test]
    fn call_templates_and_control_flow() {
        let mut b = ProgramBuilder::new();
        let (x, y, r) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
        let fault = b.new_label();
        b.const_bits(x, 10);
        b.const_bits(y, 20);
        b.call_expr(5, r, &[x, y], fault); // echo: 5 + 10 + 20 = 35
        b.call_stmt(3); // continues
        b.call_stmt(7); // returns 1
        b.ret(99);
        b.bind(fault);
        b.ret(103);
        let (code, slots) = agree(&b.finish());
        assert_eq!(code, 1);
        assert_eq!(slots[2], 35);
    }

    #[test]
    fn truthy_and_neg_templates() {
        for v in [0.0f64, -0.0, 1.0, f64::NAN, -5.5] {
            let mut b = ProgramBuilder::new();
            let (s, d, n) = (b.alloc_slot(), b.alloc_slot(), b.alloc_slot());
            let of = b.new_label();
            b.const_bits(s, v.to_bits());
            b.truthy_f64(d, s);
            b.neg(NegKind::F64, n, s, of);
            b.ret(0);
            b.bind(of);
            b.ret(101);
            let (_, slots) = agree(&b.finish());
            assert_eq!(slots[1], (v != 0.0) as u64, "truthy {v}");
            assert_eq!(slots[2], (-v).to_bits(), "neg {v}");
        }
    }
}
