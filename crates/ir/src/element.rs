//! Lowered element and chain representations.

use std::sync::Arc;

use adn_rpc::schema::RpcSchema;
use adn_rpc::value::{Value, ValueType};

use crate::expr::IrExpr;

/// Message direction (mirrors the DSL's `on request` / `on response`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    Request,
    Response,
}

/// A state table layout with initial contents.
#[derive(Debug, Clone, PartialEq)]
pub struct TableIr {
    /// Table name (diagnostics, state migration manifests).
    pub name: String,
    /// Column names.
    pub column_names: Vec<String>,
    /// Column types.
    pub column_types: Vec<ValueType>,
    /// Indices of key columns.
    pub key_columns: Vec<usize>,
    /// Maximum live rows (FIFO eviction beyond it); `None` = unbounded.
    pub capacity: Option<usize>,
    /// Initial rows (already type-coerced).
    pub init_rows: Vec<Vec<Value>>,
}

/// How a SELECT's JOIN will be executed.
#[derive(Debug, Clone, PartialEq)]
pub enum JoinStrategy {
    /// `input.field == table.key_column` conjunct found: O(1) hash lookup of
    /// the key built from these input fields (one per key column, in key
    /// order).
    KeyLookup { input_fields: Vec<usize> },
    /// Fallback: scan rows in insertion order, first match wins.
    Scan,
}

/// A join within a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct IrJoin {
    /// Index into the element's `tables`.
    pub table: usize,
    /// Join predicate over input fields and candidate-row columns.
    pub on: IrExpr,
    /// Chosen execution strategy.
    pub strategy: JoinStrategy,
}

/// A lowered statement. Runtime semantics (implemented by every backend):
/// statements run in order per message; `Drop`/`Abort` with a true (or
/// absent) condition terminate processing with that verdict; a `Select`
/// whose join finds no row or whose condition is false terminates with
/// `Drop`; reaching the end of the list forwards the message.
#[derive(Debug, Clone, PartialEq)]
pub enum IrStmt {
    Select {
        /// Field writes applied on successful selection (non-identity
        /// projection items), as (field index, expression).
        assignments: Vec<(usize, IrExpr)>,
        join: Option<IrJoin>,
        condition: Option<IrExpr>,
        /// When set, a failed join/condition aborts with (code, message)
        /// instead of dropping.
        else_abort: Option<(IrExpr, Option<IrExpr>)>,
    },
    Insert {
        table: usize,
        values: Vec<IrExpr>,
    },
    Update {
        table: usize,
        assignments: Vec<(usize, IrExpr)>,
        condition: Option<IrExpr>,
    },
    Delete {
        table: usize,
        condition: Option<IrExpr>,
    },
    Drop {
        condition: Option<IrExpr>,
    },
    /// Rewrite the message destination to a replica chosen by stable hash
    /// of `key` over the replica set bound at deployment.
    Route {
        key: IrExpr,
        condition: Option<IrExpr>,
    },
    Abort {
        code: IrExpr,
        message: Option<IrExpr>,
        condition: Option<IrExpr>,
    },
    Set {
        field: usize,
        value: IrExpr,
        condition: Option<IrExpr>,
    },
}

impl IrStmt {
    /// Every expression in the statement, for analyses.
    pub fn expressions(&self) -> Vec<&IrExpr> {
        match self {
            IrStmt::Select {
                assignments,
                join,
                condition,
                else_abort,
            } => {
                let mut out: Vec<&IrExpr> = assignments.iter().map(|(_, e)| e).collect();
                if let Some(j) = join {
                    out.push(&j.on);
                }
                if let Some(c) = condition {
                    out.push(c);
                }
                if let Some((code, message)) = else_abort {
                    out.push(code);
                    if let Some(m) = message {
                        out.push(m);
                    }
                }
                out
            }
            IrStmt::Insert { values, .. } => values.iter().collect(),
            IrStmt::Update {
                assignments,
                condition,
                ..
            } => {
                let mut out: Vec<&IrExpr> = assignments.iter().map(|(_, e)| e).collect();
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Delete { condition, .. } => condition.iter().collect(),
            IrStmt::Drop { condition } => condition.iter().collect(),
            IrStmt::Route { key, condition } => {
                let mut out = vec![key];
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Abort {
                code,
                message,
                condition,
            } => {
                let mut out = vec![code];
                if let Some(m) = message {
                    out.push(m);
                }
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Set {
                value, condition, ..
            } => {
                let mut out = vec![value];
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
        }
    }

    /// Mutable access to every expression (for the constant folder).
    pub fn expressions_mut(&mut self) -> Vec<&mut IrExpr> {
        match self {
            IrStmt::Select {
                assignments,
                join,
                condition,
                else_abort,
            } => {
                let mut out: Vec<&mut IrExpr> = assignments.iter_mut().map(|(_, e)| e).collect();
                if let Some(j) = join {
                    out.push(&mut j.on);
                }
                if let Some(c) = condition {
                    out.push(c);
                }
                if let Some((code, message)) = else_abort {
                    out.push(code);
                    if let Some(m) = message {
                        out.push(m);
                    }
                }
                out
            }
            IrStmt::Insert { values, .. } => values.iter_mut().collect(),
            IrStmt::Update {
                assignments,
                condition,
                ..
            } => {
                let mut out: Vec<&mut IrExpr> = assignments.iter_mut().map(|(_, e)| e).collect();
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Delete { condition, .. } => condition.iter_mut().collect(),
            IrStmt::Drop { condition } => condition.iter_mut().collect(),
            IrStmt::Route { key, condition } => {
                let mut out = vec![key];
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Abort {
                code,
                message,
                condition,
            } => {
                let mut out = vec![code];
                if let Some(m) = message {
                    out.push(m);
                }
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
            IrStmt::Set {
                value, condition, ..
            } => {
                let mut out = vec![value];
                if let Some(c) = condition {
                    out.push(c);
                }
                out
            }
        }
    }

    /// Whether the statement writes state tables.
    pub fn writes_state(&self) -> bool {
        matches!(
            self,
            IrStmt::Insert { .. } | IrStmt::Update { .. } | IrStmt::Delete { .. }
        )
    }

    /// Whether the statement can terminate the message.
    pub fn can_terminate(&self) -> bool {
        match self {
            IrStmt::Drop { .. } | IrStmt::Abort { .. } => true,
            IrStmt::Select {
                join, condition, ..
            } => join.is_some() || condition.is_some(),
            _ => false,
        }
    }
}

/// One element lowered against a concrete request/response schema pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementIr {
    /// Element name (from the DSL) plus instantiation suffix if any.
    pub name: String,
    /// State table layouts.
    pub tables: Vec<TableIr>,
    /// Request-direction statements (empty = pass-through).
    pub request: Vec<IrStmt>,
    /// Response-direction statements (empty = pass-through).
    pub response: Vec<IrStmt>,
    /// The original DSL source (for the Rust codegen backend and LoC
    /// accounting). Canonical-printed.
    pub source: String,
    /// Marks elements whose state writes are tolerable on messages that a
    /// neighbouring element would drop (e.g. telemetry counters). Licenses
    /// reordering across droppers; set through the compiler API, never
    /// inferred.
    pub drop_insensitive: bool,
    /// Must run outside the application binary (paper §3: "mandatory RPC
    /// policies should not be enforced inside the same application binary").
    pub enforce_off_app: bool,
    /// Pin the element to the sender side (e.g. encryption must be
    /// co-located with the sender — paper §4 Q1).
    pub pin_sender_side: bool,
}

impl ElementIr {
    /// Statements for one direction.
    pub fn stmts(&self, dir: Direction) -> &[IrStmt] {
        match dir {
            Direction::Request => &self.request,
            Direction::Response => &self.response,
        }
    }

    /// All statements of both directions.
    pub fn all_stmts(&self) -> impl Iterator<Item = &IrStmt> {
        self.request.iter().chain(self.response.iter())
    }
}

/// A lowered chain: the unit the optimizer and the placement solver work on.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainIr {
    /// Elements in application order (sender side first).
    pub elements: Vec<ElementIr>,
    /// Request message schema.
    pub request_schema: Arc<RpcSchema>,
    /// Response message schema.
    pub response_schema: Arc<RpcSchema>,
}

impl ChainIr {
    /// Creates a chain from lowered elements.
    pub fn new(
        elements: Vec<ElementIr>,
        request_schema: Arc<RpcSchema>,
        response_schema: Arc<RpcSchema>,
    ) -> Self {
        Self {
            elements,
            request_schema,
            response_schema,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Element names in order.
    pub fn names(&self) -> Vec<&str> {
        self.elements.iter().map(|e| e.name.as_str()).collect()
    }
}
