//! Resolved IR expressions.
//!
//! Unlike AST expressions, IR expressions carry indices (input field slot,
//! joined-row column slot) instead of names, have parameters folded to
//! constants, and make every numeric coercion an explicit [`IrExpr::Cast`].
//! This is the form every backend consumes.

use std::fmt;

use adn_rpc::value::{Value, ValueType};

/// Binary operators (same set as the AST; re-declared so backends need not
/// depend on `adn-dsl`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrBinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrUnOp {
    Not,
    Neg,
}

/// A resolved expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum IrExpr {
    /// A constant (literals and folded parameters).
    Const(Value),
    /// Input message field by schema index.
    Field(usize),
    /// Column of the joined/scoped state row by column index.
    Col(usize),
    /// UDF call by name (backends bind implementations by name).
    Udf {
        name: String,
        args: Vec<IrExpr>,
    },
    /// Explicit numeric widening cast.
    Cast {
        to: ValueType,
        inner: Box<IrExpr>,
    },
    Unary {
        op: IrUnOp,
        operand: Box<IrExpr>,
    },
    Binary {
        op: IrBinOp,
        left: Box<IrExpr>,
        right: Box<IrExpr>,
    },
    Case {
        arms: Vec<(IrExpr, IrExpr)>,
        otherwise: Option<Box<IrExpr>>,
    },
}

impl IrExpr {
    /// Walks the tree, invoking `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&IrExpr)) {
        f(self);
        match self {
            IrExpr::Udf { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            IrExpr::Cast { inner, .. } => inner.walk(f),
            IrExpr::Unary { operand, .. } => operand.walk(f),
            IrExpr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            IrExpr::Case { arms, otherwise } => {
                for (c, v) in arms {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = otherwise {
                    e.walk(f);
                }
            }
            IrExpr::Const(_) | IrExpr::Field(_) | IrExpr::Col(_) => {}
        }
    }

    /// Bitmask of input field indices read (fields must be < 64; enforced
    /// at lowering).
    pub fn field_mask(&self) -> u64 {
        let mut mask = 0u64;
        self.walk(&mut |e| {
            if let IrExpr::Field(i) = e {
                mask |= 1 << i;
            }
        });
        mask
    }

    /// Whether the expression references the joined state row.
    pub fn uses_cols(&self) -> bool {
        let mut used = false;
        self.walk(&mut |e| {
            if matches!(e, IrExpr::Col(_)) {
                used = true;
            }
        });
        used
    }

    /// UDF names referenced.
    pub fn udf_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let IrExpr::Udf { name, .. } = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// Whether this is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            IrExpr::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Errors from constant evaluation of operators.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Type combination not supported by the operator.
    TypeError(String),
    /// Division or modulo by zero.
    DivideByZero,
    /// Arithmetic overflow on integer types.
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::TypeError(msg) => write!(f, "type error: {msg}"),
            EvalError::DivideByZero => write!(f, "division by zero"),
            EvalError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a binary operator on two values. This single definition is the
/// semantics shared by the constant folder, the native backend, the eBPF
/// simulator, and the P4 simulator — so "reordering preserves semantics"
/// property tests compare like with like.
pub fn eval_binop(op: IrBinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use IrBinOp::*;
    match op {
        Or | And => {
            let (Value::Bool(x), Value::Bool(y)) = (a, b) else {
                return Err(EvalError::TypeError(format!(
                    "{op:?} requires booleans, got {a} and {b}"
                )));
            };
            Ok(Value::Bool(if op == Or { *x || *y } else { *x && *y }))
        }
        Eq => Ok(Value::Bool(a.dsl_eq(b))),
        NotEq => Ok(Value::Bool(!a.dsl_eq(b))),
        Lt => Ok(Value::Bool(a.total_cmp(b) == std::cmp::Ordering::Less)),
        Le => Ok(Value::Bool(a.total_cmp(b) != std::cmp::Ordering::Greater)),
        Gt => Ok(Value::Bool(a.total_cmp(b) == std::cmp::Ordering::Greater)),
        Ge => Ok(Value::Bool(a.total_cmp(b) != std::cmp::Ordering::Less)),
        Add | Sub | Mul | Div | Mod => eval_arith(op, a, b),
    }
}

fn eval_arith(op: IrBinOp, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use IrBinOp::*;
    match (a, b) {
        (Value::F64(_), _) | (_, Value::F64(_)) => {
            let (x, y) = (
                a.as_f64().ok_or_else(|| nonnum(a))?,
                b.as_f64().ok_or_else(|| nonnum(b))?,
            );
            if matches!(op, Div | Mod) && y == 0.0 {
                return Err(EvalError::DivideByZero);
            }
            Ok(Value::F64(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                Div => x / y,
                Mod => x % y,
                _ => unreachable!(),
            }))
        }
        (Value::I64(_), _) | (_, Value::I64(_)) => {
            let x = as_i64(a)?;
            let y = as_i64(b)?;
            if matches!(op, Div | Mod) && y == 0 {
                return Err(EvalError::DivideByZero);
            }
            let r = match op {
                Add => x.checked_add(y),
                Sub => x.checked_sub(y),
                Mul => x.checked_mul(y),
                Div => x.checked_div(y),
                Mod => x.checked_rem(y),
                _ => unreachable!(),
            };
            r.map(Value::I64).ok_or(EvalError::Overflow)
        }
        (Value::U64(x), Value::U64(y)) => {
            if matches!(op, Div | Mod) && *y == 0 {
                return Err(EvalError::DivideByZero);
            }
            let r = match op {
                Add => x.checked_add(*y),
                // Subtraction on unsigned saturates into signed domain.
                Sub => {
                    return if x >= y {
                        Ok(Value::U64(x - y))
                    } else {
                        let diff = y - x;
                        if diff > i64::MAX as u64 {
                            Err(EvalError::Overflow)
                        } else {
                            Ok(Value::I64(-(diff as i64)))
                        }
                    }
                }
                Mul => x.checked_mul(*y),
                Div => x.checked_div(*y),
                Mod => x.checked_rem(*y),
                _ => unreachable!(),
            };
            r.map(Value::U64).ok_or(EvalError::Overflow)
        }
        _ => Err(EvalError::TypeError(format!(
            "arithmetic on non-numeric values {a} and {b}"
        ))),
    }
}

fn nonnum(v: &Value) -> EvalError {
    EvalError::TypeError(format!("expected numeric value, got {v}"))
}

fn as_i64(v: &Value) -> Result<i64, EvalError> {
    match v {
        Value::I64(x) => Ok(*x),
        Value::U64(x) => i64::try_from(*x).map_err(|_| EvalError::Overflow),
        _ => Err(nonnum(v)),
    }
}

/// Evaluates a unary operator.
pub fn eval_unop(op: IrUnOp, v: &Value) -> Result<Value, EvalError> {
    match op {
        IrUnOp::Not => match v {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            other => Err(EvalError::TypeError(format!("NOT on {other}"))),
        },
        IrUnOp::Neg => match v {
            Value::I64(x) => x.checked_neg().map(Value::I64).ok_or(EvalError::Overflow),
            Value::U64(x) => {
                if *x > i64::MAX as u64 {
                    Err(EvalError::Overflow)
                } else {
                    Ok(Value::I64(-(*x as i64)))
                }
            }
            Value::F64(x) => Ok(Value::F64(-x)),
            other => Err(EvalError::TypeError(format!("negation on {other}"))),
        },
    }
}

/// Applies a widening cast.
pub fn eval_cast(to: ValueType, v: &Value) -> Result<Value, EvalError> {
    match (to, v) {
        (ValueType::I64, Value::U64(x)) => i64::try_from(*x)
            .map(Value::I64)
            .map_err(|_| EvalError::Overflow),
        (ValueType::F64, Value::U64(x)) => Ok(Value::F64(*x as f64)),
        (ValueType::F64, Value::I64(x)) => Ok(Value::F64(*x as f64)),
        (t, v) if v.value_type() == t => Ok(v.clone()),
        (t, v) => Err(EvalError::TypeError(format!("cannot cast {v} to {t}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_cross_numeric() {
        assert_eq!(
            eval_binop(IrBinOp::Eq, &Value::U64(5), &Value::F64(5.0)).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_binop(IrBinOp::Lt, &Value::I64(-1), &Value::U64(0)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic_type_promotion() {
        assert_eq!(
            eval_binop(IrBinOp::Add, &Value::U64(1), &Value::U64(2)).unwrap(),
            Value::U64(3)
        );
        assert_eq!(
            eval_binop(IrBinOp::Add, &Value::U64(1), &Value::I64(-2)).unwrap(),
            Value::I64(-1)
        );
        assert_eq!(
            eval_binop(IrBinOp::Mul, &Value::F64(1.5), &Value::U64(2)).unwrap(),
            Value::F64(3.0)
        );
    }

    #[test]
    fn unsigned_subtraction_goes_signed() {
        assert_eq!(
            eval_binop(IrBinOp::Sub, &Value::U64(3), &Value::U64(5)).unwrap(),
            Value::I64(-2)
        );
        assert_eq!(
            eval_binop(IrBinOp::Sub, &Value::U64(5), &Value::U64(3)).unwrap(),
            Value::U64(2)
        );
    }

    #[test]
    fn divide_by_zero_is_error_not_panic() {
        assert_eq!(
            eval_binop(IrBinOp::Div, &Value::U64(1), &Value::U64(0)),
            Err(EvalError::DivideByZero)
        );
        assert_eq!(
            eval_binop(IrBinOp::Mod, &Value::I64(1), &Value::I64(0)),
            Err(EvalError::DivideByZero)
        );
        assert_eq!(
            eval_binop(IrBinOp::Div, &Value::F64(1.0), &Value::F64(0.0)),
            Err(EvalError::DivideByZero)
        );
    }

    #[test]
    fn overflow_is_error_not_panic() {
        assert_eq!(
            eval_binop(IrBinOp::Add, &Value::U64(u64::MAX), &Value::U64(1)),
            Err(EvalError::Overflow)
        );
        assert_eq!(
            eval_binop(IrBinOp::Mul, &Value::I64(i64::MAX), &Value::I64(2)),
            Err(EvalError::Overflow)
        );
    }

    #[test]
    fn logical_ops_require_bools() {
        assert!(eval_binop(IrBinOp::And, &Value::U64(1), &Value::Bool(true)).is_err());
        assert_eq!(
            eval_binop(IrBinOp::Or, &Value::Bool(false), &Value::Bool(true)).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unops() {
        assert_eq!(
            eval_unop(IrUnOp::Not, &Value::Bool(true)).unwrap(),
            Value::Bool(false)
        );
        assert_eq!(
            eval_unop(IrUnOp::Neg, &Value::U64(5)).unwrap(),
            Value::I64(-5)
        );
        assert_eq!(
            eval_unop(IrUnOp::Neg, &Value::F64(2.0)).unwrap(),
            Value::F64(-2.0)
        );
        assert!(eval_unop(IrUnOp::Neg, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn casts() {
        assert_eq!(
            eval_cast(ValueType::F64, &Value::U64(2)).unwrap(),
            Value::F64(2.0)
        );
        assert_eq!(
            eval_cast(ValueType::I64, &Value::U64(2)).unwrap(),
            Value::I64(2)
        );
        assert!(eval_cast(ValueType::I64, &Value::U64(u64::MAX)).is_err());
        assert!(eval_cast(ValueType::U64, &Value::Str("x".into())).is_err());
    }

    #[test]
    fn field_mask_collects_fields() {
        let e = IrExpr::Binary {
            op: IrBinOp::Add,
            left: Box::new(IrExpr::Field(0)),
            right: Box::new(IrExpr::Udf {
                name: "hash".into(),
                args: vec![IrExpr::Field(3)],
            }),
        };
        assert_eq!(e.field_mask(), 0b1001);
        assert_eq!(e.udf_names(), vec!["hash".to_owned()]);
        assert!(!e.uses_cols());
    }
}
