//! Chain-level optimization passes.
//!
//! The pass set realizes paper §5.2's optimizer: constant folding inside
//! expressions, element reordering (cheap droppers move upstream of
//! expensive elements they commute with — Figure 2 Configuration 3),
//! fusion of adjacent elements into single execution stages, and
//! minimal-header synthesis for host-crossing hops (§4 Q2).
//!
//! Every pass is semantics-preserving by construction; the backend crate's
//! property tests run random RPC streams through optimized and unoptimized
//! chains and assert identical observable behaviour.

use adn_wire::header::HeaderLayout;

use crate::analysis::{self, commute};
use crate::element::{ChainIr, Direction, IrStmt};
use crate::expr::{eval_binop, eval_cast, eval_unop, IrExpr};

/// Which passes to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassConfig {
    /// Fold constant sub-expressions.
    pub const_fold: bool,
    /// Reorder commuting elements to run droppers before expensive work.
    pub reorder: bool,
    /// Fuse adjacent elements into stages executed by one engine.
    pub fuse: bool,
}

impl Default for PassConfig {
    fn default() -> Self {
        Self {
            const_fold: true,
            reorder: true,
            fuse: true,
        }
    }
}

impl PassConfig {
    /// Everything off — the unoptimized baseline for ablations.
    pub fn none() -> Self {
        Self {
            const_fold: false,
            reorder: false,
            fuse: false,
        }
    }
}

/// What the optimizer did, for reports and ablation benches.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OptReport {
    /// Number of constant sub-expressions folded.
    pub folds: usize,
    /// Adjacent swaps performed by the reorder pass.
    pub swaps: usize,
    /// Element order after optimization (names).
    pub final_order: Vec<String>,
    /// Fused stages as index ranges into the element list: elements within
    /// one stage execute in a single engine without per-element dispatch.
    pub stages: Vec<(usize, usize)>,
    /// Adjacent pairs eligible for parallel execution.
    pub parallel_pairs: Vec<(usize, usize)>,
}

/// Runs the configured passes over `chain`, returning the optimized chain
/// and a report.
pub fn optimize(mut chain: ChainIr, config: &PassConfig) -> (ChainIr, OptReport) {
    let mut report = OptReport::default();

    if config.const_fold {
        for element in &mut chain.elements {
            for stmt in element
                .request
                .iter_mut()
                .chain(element.response.iter_mut())
            {
                for expr in stmt.expressions_mut() {
                    report.folds += fold_expr(expr);
                }
            }
        }
    }

    if config.reorder {
        report.swaps = reorder_droppers_first(&mut chain);
    }

    report.final_order = chain.names().iter().map(|s| s.to_string()).collect();
    report.parallel_pairs = analysis::parallelizable_pairs(&chain.elements);

    report.stages = if config.fuse {
        // All elements destined for the same processor fuse into one stage;
        // the placement layer later splits stages at processor boundaries.
        if chain.is_empty() {
            Vec::new()
        } else {
            vec![(0, chain.len())]
        }
    } else {
        (0..chain.len()).map(|i| (i, i + 1)).collect()
    };

    (chain, report)
}

/// Greedy stable pass: repeatedly swap adjacent (A, B) where B can drop,
/// A cannot, they commute, and A costs more than B — so the dropper sheds
/// load before the expensive element runs. Terminates because each swap
/// strictly decreases the number of (expensive non-dropper, cheap dropper)
/// inversions.
fn reorder_droppers_first(chain: &mut ChainIr) -> usize {
    let mut swaps = 0;
    loop {
        let mut changed = false;
        for i in 0..chain.elements.len().saturating_sub(1) {
            let fa = analysis::analyze(&chain.elements[i]);
            let fb = analysis::analyze(&chain.elements[i + 1]);
            let a_drops = fa.can_drop_any();
            let b_drops = fb.can_drop_any();
            let should_swap = !a_drops && b_drops && fb.total_cost() < fa.total_cost();
            if should_swap && commute(&chain.elements[i], &chain.elements[i + 1]) {
                chain.elements.swap(i, i + 1);
                swaps += 1;
                changed = true;
            }
        }
        if !changed {
            return swaps;
        }
    }
}

/// Folds constant sub-expressions in place. Returns the number of folds.
/// UDF calls are never folded (implementations live in the backend and may
/// be nondeterministic); operator evaluation errors (overflow, divide by
/// zero) leave the expression unfolded so runtime semantics are unchanged.
fn fold_expr(expr: &mut IrExpr) -> usize {
    let mut folds = 0;
    // Fold children first.
    match expr {
        IrExpr::Udf { args, .. } => {
            for a in args {
                folds += fold_expr(a);
            }
        }
        IrExpr::Cast { inner, .. } => folds += fold_expr(inner),
        IrExpr::Unary { operand, .. } => folds += fold_expr(operand),
        IrExpr::Binary { left, right, .. } => {
            folds += fold_expr(left);
            folds += fold_expr(right);
        }
        IrExpr::Case { arms, otherwise } => {
            for (c, v) in arms.iter_mut() {
                folds += fold_expr(c);
                folds += fold_expr(v);
            }
            if let Some(e) = otherwise {
                folds += fold_expr(e);
            }
        }
        IrExpr::Const(_) | IrExpr::Field(_) | IrExpr::Col(_) => {}
    }
    // Then this node.
    let folded: Option<IrExpr> = match expr {
        IrExpr::Binary { op, left, right } => match (left.as_const(), right.as_const()) {
            (Some(a), Some(b)) => eval_binop(*op, a, b).ok().map(IrExpr::Const),
            _ => None,
        },
        IrExpr::Unary { op, operand } => operand
            .as_const()
            .and_then(|v| eval_unop(*op, v).ok())
            .map(IrExpr::Const),
        IrExpr::Cast { to, inner } => inner
            .as_const()
            .and_then(|v| eval_cast(*to, v).ok())
            .map(IrExpr::Const),
        IrExpr::Case { arms, otherwise } => {
            // Fold away arms with constant-false conditions; resolve if the
            // first remaining condition is constant-true.
            let mut i = 0;
            let mut result = None;
            while i < arms.len() {
                match arms[i].0.as_const() {
                    Some(v) if !v.is_truthy() => {
                        arms.remove(i);
                        folds += 1;
                    }
                    Some(_) => {
                        result = Some(arms[i].1.clone());
                        break;
                    }
                    None => i += 1,
                }
            }
            match result {
                Some(r) if i == 0 => Some(r),
                _ => {
                    if arms.is_empty() {
                        otherwise.take().map(|b| *b)
                    } else {
                        None
                    }
                }
            }
        }
        _ => None,
    };
    if let Some(new) = folded {
        *expr = new;
        folds += 1;
    }
    folds
}

/// Builds the minimal wire-header layout for a hop whose downstream
/// processors host `chain.elements[from..]`. Only fields those elements
/// read or write (in either direction) ride in the header; everything else
/// crosses as opaque payload the processors never parse.
pub fn minimal_header(chain: &ChainIr, from: usize) -> HeaderLayout {
    let tail = &chain.elements[from.min(chain.elements.len())..];
    let mask_req = analysis::required_fields(tail, Direction::Request);
    let mask_resp = analysis::required_fields(tail, Direction::Response);

    let mut layout = HeaderLayout::new();
    let mut id = 0u16;
    for (i, f) in chain.request_schema.fields().iter().enumerate() {
        if mask_req & (1 << i) != 0 {
            layout.push(id, f.name.clone(), f.ty.header_type());
            id += 1;
        }
    }
    for (i, f) in chain.response_schema.fields().iter().enumerate() {
        if mask_resp & (1 << i) != 0 && layout.position_of(&f.name).is_none() {
            layout.push(id, f.name.clone(), f.ty.header_type());
            id += 1;
        }
    }
    layout
}

/// [`minimal_header`] plus the optional trace-context extension: the layout
/// reserves a one-byte presence slot per hop frame, so the controller can
/// turn sampling on later without redistributing layouts. Untraced apps
/// keep using [`minimal_header`] and pay nothing.
pub fn minimal_header_traced(chain: &ChainIr, from: usize) -> HeaderLayout {
    minimal_header(chain, from).with_trace()
}

/// Statement-level sanity used by debug assertions and tests: a handler
/// that can never emit (e.g. unconditional DROP as the only statement) is
/// legal but suspicious; returns true when at least one control path
/// reaches the end of the statement list.
pub fn may_forward(stmts: &[IrStmt]) -> bool {
    for s in stmts {
        match s {
            IrStmt::Drop { condition: None } => return false,
            IrStmt::Abort {
                condition: None, ..
            } => return false,
            _ => {}
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::{Value, ValueType};

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        let req = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let resp = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        (req, resp)
    }

    fn lower(src: &str) -> crate::element::ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        crate::lower::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn chain_of(srcs: &[&str]) -> ChainIr {
        let (req, resp) = schemas();
        ChainIr::new(srcs.iter().map(|s| lower(s)).collect(), req, resp)
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string);
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;
    const COMPRESS: &str = r#"
        element Compress() {
            on request { SET payload = compress(input.payload); SELECT * FROM input; }
        }
    "#;

    #[test]
    fn reorder_moves_acl_before_compress() {
        let chain = chain_of(&[COMPRESS, ACL]);
        let (opt, report) = optimize(chain, &PassConfig::default());
        assert_eq!(opt.names(), vec!["Acl", "Compress"]);
        assert_eq!(report.swaps, 1);
    }

    #[test]
    fn reorder_respects_non_commuting_pairs() {
        // Two droppers: order must be preserved.
        let fault = r#"
            element Fault(p: f64 = 0.5) {
                on request { ABORT(3, 'fault') WHERE random() < p; SELECT * FROM input; }
            }
        "#;
        let chain = chain_of(&[ACL, fault]);
        let (opt, report) = optimize(chain, &PassConfig::default());
        assert_eq!(opt.names(), vec!["Acl", "Fault"]);
        assert_eq!(report.swaps, 0);
    }

    #[test]
    fn disabled_reorder_keeps_order() {
        let chain = chain_of(&[COMPRESS, ACL]);
        let (opt, _) = optimize(
            chain,
            &PassConfig {
                reorder: false,
                ..PassConfig::default()
            },
        );
        assert_eq!(opt.names(), vec!["Compress", "Acl"]);
    }

    #[test]
    fn const_fold_simplifies() {
        let src = "element E() { on request { SET object_id = 2 * 3 + 1; SELECT * FROM input; } }";
        let chain = chain_of(&[src]);
        let (opt, report) = optimize(chain, &PassConfig::default());
        assert!(report.folds >= 2);
        let IrStmt::Set { value, .. } = &opt.elements[0].request[0] else {
            panic!()
        };
        assert_eq!(value, &IrExpr::Const(Value::U64(7)));
    }

    #[test]
    fn const_fold_leaves_division_by_zero_for_runtime() {
        let src = "element E() { on request { SET object_id = input.object_id + 1 / 0; SELECT * FROM input; } }";
        let chain = chain_of(&[src]);
        let (opt, _) = optimize(chain, &PassConfig::default());
        // The 1/0 subtree must survive unfolded.
        let IrStmt::Set { value, .. } = &opt.elements[0].request[0] else {
            panic!()
        };
        let mut saw_div = false;
        value.walk(&mut |e| {
            if matches!(
                e,
                IrExpr::Binary {
                    op: crate::expr::IrBinOp::Div,
                    ..
                }
            ) {
                saw_div = true;
            }
        });
        assert!(saw_div);
    }

    #[test]
    fn case_folding_picks_constant_arm() {
        let src = "element E() { on request { SET object_id = CASE WHEN false THEN 1 WHEN true THEN 2 ELSE 3 END; SELECT * FROM input; } }";
        let chain = chain_of(&[src]);
        let (opt, _) = optimize(chain, &PassConfig::default());
        let IrStmt::Set { value, .. } = &opt.elements[0].request[0] else {
            panic!()
        };
        assert_eq!(value, &IrExpr::Const(Value::U64(2)));
    }

    #[test]
    fn minimal_header_carries_only_needed_fields() {
        let chain = chain_of(&[ACL, COMPRESS]);
        // A hop before both elements needs username + payload.
        let layout = minimal_header(&chain, 0);
        assert!(layout.position_of("username").is_some());
        assert!(layout.position_of("payload").is_some());
        assert!(layout.position_of("object_id").is_none());
        // A hop after ACL (only compress downstream) needs payload only.
        let layout = minimal_header(&chain, 1);
        assert!(layout.position_of("username").is_none());
        assert!(layout.position_of("payload").is_some());
        // After everything: empty header.
        let layout = minimal_header(&chain, 2);
        assert!(layout.is_empty());
    }

    #[test]
    fn traced_header_keeps_fields_and_sets_flag() {
        let chain = chain_of(&[ACL, COMPRESS]);
        let plain = minimal_header(&chain, 0);
        let traced = minimal_header_traced(&chain, 0);
        assert!(!plain.carries_trace());
        assert!(traced.carries_trace());
        assert_eq!(plain.fields(), traced.fields());
    }

    #[test]
    fn fuse_produces_single_stage() {
        let chain = chain_of(&[ACL, COMPRESS]);
        let (_, report) = optimize(chain, &PassConfig::default());
        assert_eq!(report.stages, vec![(0, 2)]);
        let chain = chain_of(&[ACL, COMPRESS]);
        let (_, report) = optimize(chain, &PassConfig::none());
        assert_eq!(report.stages, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn may_forward_detects_unconditional_terminators() {
        let always_drop = lower("element D() { on request { DROP; } }");
        assert!(!may_forward(&always_drop.request));
        let conditional = lower(
            "element D() { on request { DROP WHERE input.object_id == 0; SELECT * FROM input; } }",
        );
        assert!(may_forward(&conditional.request));
    }
}
