//! Analyses over lowered elements: field read/write sets, drop and
//! determinism facts, cost estimation, and the commutativity judgment.
//!
//! These are the facts the paper's optimizer needs (§5.2: "if two elements
//! do not operate on the same RPC fields, they can be executed in parallel";
//! §3 Configuration 3: reordering "after automatically determining that
//! reordering preserves semantics").

use adn_dsl::udf;

use crate::element::{Direction, ElementIr, IrStmt, JoinStrategy};
use crate::expr::IrExpr;

/// Facts about one element in one message direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DirFacts {
    /// Bitmask of input fields read.
    pub reads: u64,
    /// Bitmask of input fields written.
    pub writes: u64,
    /// Reads or writes element state.
    pub uses_state: bool,
    /// Writes element state.
    pub writes_state: bool,
    /// May terminate (drop or abort) the message.
    pub can_drop: bool,
    /// Rewrites the message destination (ROUTE).
    pub routes: bool,
    /// No nondeterministic UDFs.
    pub deterministic: bool,
    /// Estimated per-message cost in abstract units (1 = a compare).
    pub cost: u64,
}

/// Facts for both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ElementFacts {
    pub request: DirFacts,
    pub response: DirFacts,
}

impl ElementFacts {
    /// Facts for one direction.
    pub fn dir(&self, d: Direction) -> &DirFacts {
        match d {
            Direction::Request => &self.request,
            Direction::Response => &self.response,
        }
    }

    /// Whether the element can drop in either direction.
    pub fn can_drop_any(&self) -> bool {
        self.request.can_drop || self.response.can_drop
    }

    /// Whether the element writes state in either direction.
    pub fn writes_state_any(&self) -> bool {
        self.request.writes_state || self.response.writes_state
    }

    /// Total estimated cost (request + response).
    pub fn total_cost(&self) -> u64 {
        self.request.cost + self.response.cost
    }
}

fn expr_cost(e: &IrExpr) -> u64 {
    let mut cost = 0u64;
    e.walk(&mut |node| {
        cost += match node {
            IrExpr::Udf { name, .. } => udf::lookup(name).map(|s| s.cost_hint as u64).unwrap_or(50),
            IrExpr::Const(_) => 0,
            _ => 1,
        };
    });
    cost
}

fn expr_deterministic(e: &IrExpr) -> bool {
    let mut det = true;
    e.walk(&mut |node| {
        if let IrExpr::Udf { name, .. } = node {
            if let Some(sig) = udf::lookup(name) {
                if !sig.deterministic {
                    det = false;
                }
            }
        }
    });
    det
}

fn analyze_stmts(stmts: &[IrStmt]) -> DirFacts {
    let mut f = DirFacts {
        deterministic: true,
        ..Default::default()
    };
    for s in stmts {
        for e in s.expressions() {
            f.reads |= e.field_mask();
            if !expr_deterministic(e) {
                f.deterministic = false;
            }
            f.cost += expr_cost(e);
        }
        f.cost += 1; // statement dispatch
        match s {
            IrStmt::Select {
                assignments, join, ..
            } => {
                for (idx, _) in assignments {
                    f.writes |= 1 << idx;
                }
                if let Some(j) = join {
                    f.uses_state = true;
                    f.cost += match j.strategy {
                        JoinStrategy::KeyLookup { .. } => 5,
                        JoinStrategy::Scan => 25,
                    };
                }
                if s.can_terminate() {
                    f.can_drop = true;
                }
            }
            IrStmt::Insert { .. } => {
                f.uses_state = true;
                f.writes_state = true;
                f.cost += 8;
            }
            IrStmt::Update { .. } | IrStmt::Delete { .. } => {
                f.uses_state = true;
                f.writes_state = true;
                f.cost += 12;
            }
            IrStmt::Drop { .. } | IrStmt::Abort { .. } => {
                f.can_drop = true;
            }
            IrStmt::Route { .. } => {
                f.routes = true;
                f.cost += 10;
            }
            IrStmt::Set { field, .. } => {
                f.writes |= 1 << field;
            }
        }
    }
    f
}

/// Computes facts for an element.
pub fn analyze(element: &ElementIr) -> ElementFacts {
    ElementFacts {
        request: analyze_stmts(&element.request),
        response: analyze_stmts(&element.response),
    }
}

/// The commutativity judgment: may elements `a` and `b` swap order without
/// changing observable behaviour (message field values, verdicts, and state
/// contents)?
///
/// The rule (conservative in each direction):
///
/// 1. **Field independence** — `writes(a) ∩ (reads(b) ∪ writes(b)) = ∅`
///    and symmetric. Otherwise one element observes the other's writes.
/// 2. **Drop vs. state** — a dropper may not move across a state-writing
///    element (the writer's tables would record a different set of
///    messages), unless the writer opted in via `drop_insensitive`
///    (e.g. best-effort telemetry).
/// 3. **Drop vs. drop** — two droppers never reorder: the surviving
///    message set is the same, but abort codes/messages observed by the
///    caller may differ (ACL-denied vs fault-injected).
/// 4. **Drop vs. field-writer** — a dropper may not move across an element
///    that writes fields the dropper reads (covered by rule 1), and a
///    field-writer may not move across a dropper that reads its outputs
///    (also rule 1). Field writes on messages that get dropped are
///    unobservable, so no extra rule is needed.
pub fn commute(a: &ElementIr, b: &ElementIr) -> bool {
    let fa = analyze(a);
    let fb = analyze(b);
    for d in [Direction::Request, Direction::Response] {
        let da = fa.dir(d);
        let db = fb.dir(d);
        // Rule 1: field independence.
        if da.writes & (db.reads | db.writes) != 0 {
            return false;
        }
        if db.writes & (da.reads | da.writes) != 0 {
            return false;
        }
        // Rule 2: drop vs. state writes.
        if da.can_drop && db.writes_state && !b.drop_insensitive {
            return false;
        }
        if db.can_drop && da.writes_state && !a.drop_insensitive {
            return false;
        }
        // Rule 3: drop vs. drop.
        if da.can_drop && db.can_drop {
            return false;
        }
        // Rule 4: two routers never reorder (last writer of dst wins).
        if da.routes && db.routes {
            return false;
        }
    }
    true
}

/// Union of fields that elements `elements[from..]` read or write in
/// direction `dir` — the set a sender must place in the wire header for the
/// downstream processors hosting those elements (paper §5.3: "the RPC
/// headers might convey additional information intended for the utilization
/// of downstream processors").
pub fn required_fields(elements: &[ElementIr], dir: Direction) -> u64 {
    let mut mask = 0u64;
    for e in elements {
        let f = analyze(e);
        let df = f.dir(dir);
        mask |= df.reads | df.writes;
    }
    mask
}

/// Converts a field bitmask (bit *i* = schema field *i*) into the field
/// names it covers.
///
/// This is the bridge between the two read/write-set representations in
/// the codebase: the front end's name sets (`adn_dsl::typecheck::
/// HandlerFacts`, computed over the AST for error messages) and this
/// module's bitmasks (computed over lowered IR). **The IR facts are
/// authoritative** — every consumer of dataflow facts (optimizer,
/// placement, verifier) judges from the bitmasks; the front-end sets exist
/// for diagnostics only. A cross-layer test in `adn-verifier`
/// (`facts_agreement.rs`) pins the two representations to agree on every
/// catalog element.
pub fn field_names(
    schema: &adn_rpc::schema::RpcSchema,
    mask: u64,
) -> std::collections::BTreeSet<String> {
    schema
        .fields()
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, f)| f.name.clone())
        .collect()
}

/// Pairs of adjacent elements that touch disjoint fields and no shared
/// state — candidates for parallel execution (paper §5.2).
pub fn parallelizable_pairs(elements: &[ElementIr]) -> Vec<(usize, usize)> {
    let facts: Vec<ElementFacts> = elements.iter().map(analyze).collect();
    let mut out = Vec::new();
    for i in 0..elements.len().saturating_sub(1) {
        let (a, b) = (&facts[i], &facts[i + 1]);
        let mut independent = true;
        for d in [Direction::Request, Direction::Response] {
            let (da, db) = (a.dir(d), b.dir(d));
            let fields_a = da.reads | da.writes;
            let fields_b = db.reads | db.writes;
            if fields_a & fields_b != 0 || da.can_drop || db.can_drop || da.routes || db.routes {
                independent = false;
            }
        }
        if independent {
            out.push((i, i + 1));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn schemas() -> (RpcSchema, RpcSchema) {
        let req = RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        (req, resp)
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        crate::lower::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string);
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;

    const COMPRESS: &str = r#"
        element Compress() {
            on request { SET payload = compress(input.payload); SELECT * FROM input; }
        }
    "#;

    const LOGGING: &str = r#"
        element Logging() {
            state log_tab(seq: u64 key, who: string);
            on request {
                INSERT INTO log_tab VALUES (now(), input.username);
                SELECT * FROM input;
            }
        }
    "#;

    const FAULT: &str = r#"
        element Fault(p: f64 = 0.05) {
            on request { ABORT(3, 'fault') WHERE random() < p; SELECT * FROM input; }
        }
    "#;

    #[test]
    fn acl_facts() {
        let f = analyze(&lower(ACL));
        assert!(f.request.can_drop);
        assert!(f.request.uses_state);
        assert!(!f.request.writes_state);
        assert_eq!(f.request.reads, 0b010); // username = field 1
        assert_eq!(f.request.writes, 0);
        assert!(f.request.deterministic);
    }

    #[test]
    fn compress_facts() {
        let f = analyze(&lower(COMPRESS));
        assert!(!f.request.can_drop);
        assert_eq!(f.request.reads, 0b100);
        assert_eq!(f.request.writes, 0b100);
        assert!(f.request.cost >= 200, "compress UDF cost should dominate");
    }

    #[test]
    fn fault_is_nondeterministic_dropper() {
        let f = analyze(&lower(FAULT));
        assert!(f.request.can_drop);
        assert!(!f.request.deterministic);
    }

    #[test]
    fn acl_commutes_with_compress() {
        // ACL reads username; compress touches payload only. The paper's
        // Configuration 3 reorder: run the cheap dropper first.
        assert!(commute(&lower(ACL), &lower(COMPRESS)));
    }

    #[test]
    fn two_droppers_do_not_commute() {
        assert!(!commute(&lower(ACL), &lower(FAULT)));
    }

    #[test]
    fn dropper_does_not_cross_state_writer() {
        assert!(!commute(&lower(ACL), &lower(LOGGING)));
    }

    #[test]
    fn drop_insensitive_state_writer_may_cross() {
        let mut logging = lower(LOGGING);
        logging.drop_insensitive = true;
        assert!(commute(&lower(ACL), &logging));
    }

    #[test]
    fn field_conflict_blocks_commute() {
        let enc = lower(
            "element Enc() { on request { SET payload = encrypt(input.payload, 'k'); SELECT * FROM input; } }",
        );
        // Both write `payload`: order matters (compress∘encrypt ≠ encrypt∘compress).
        assert!(!commute(&lower(COMPRESS), &enc));
    }

    #[test]
    fn required_fields_unions_reads_and_writes() {
        let elems = vec![lower(ACL), lower(COMPRESS)];
        let mask = required_fields(&elems, Direction::Request);
        assert_eq!(mask, 0b110); // username | payload
        let mask_tail = required_fields(&elems[1..], Direction::Request);
        assert_eq!(mask_tail, 0b100); // payload only
    }

    #[test]
    fn parallelizable_pairs_require_disjoint_fields_and_no_drops() {
        let id_mut = lower(
            "element M() { on request { SET object_id = input.object_id + 1; SELECT * FROM input; } }",
        );
        let elems = vec![id_mut.clone(), lower(COMPRESS)];
        assert_eq!(parallelizable_pairs(&elems), vec![(0, 1)]);
        let elems = vec![lower(ACL), lower(COMPRESS)];
        assert!(
            parallelizable_pairs(&elems).is_empty(),
            "dropper blocks parallelism"
        );
    }
}
