//! Lowering: typechecked AST → IR.
//!
//! Lowering binds an element to a concrete instantiation: parameter values
//! are folded to constants, names become indices, literal coercions become
//! explicit casts, and each JOIN is assigned an execution strategy (hash
//! key-lookup when its predicate covers the table key with
//! `input.field == table.key` conjuncts, scan otherwise).

use std::collections::HashMap;
use std::fmt;

use adn_dsl::ast::{self, Expr, Literal, Projection, Stmt};
use adn_dsl::typecheck::CheckedElement;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::{Value, ValueType};

use crate::element::{ElementIr, IrJoin, IrStmt, JoinStrategy, TableIr};
use crate::expr::{IrBinOp, IrExpr, IrUnOp};

/// Maximum fields per message schema (analyses use 64-bit field masks).
pub const MAX_FIELDS: usize = 64;

/// Lowering failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LowerError {
    pub message: String,
}

impl LowerError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LowerError {}

/// Coerces a literal to the declared type (int literals widen to i64/f64).
fn literal_to_value(lit: &Literal, target: ValueType) -> Result<Value, LowerError> {
    let v = match (lit, target) {
        (Literal::Int(v), ValueType::U64) => Value::U64(*v),
        (Literal::Int(v), ValueType::I64) => {
            let x = i64::try_from(*v)
                .map_err(|_| LowerError::new(format!("literal {v} out of i64 range")))?;
            Value::I64(x)
        }
        (Literal::Int(v), ValueType::F64) => Value::F64(*v as f64),
        (Literal::Float(v), ValueType::F64) => Value::F64(*v),
        (Literal::Str(s), ValueType::Str) => Value::Str(s.clone()),
        (Literal::Bool(b), ValueType::Bool) => Value::Bool(*b),
        (lit, target) => {
            return Err(LowerError::new(format!(
                "literal {lit:?} cannot initialize a {target} slot"
            )))
        }
    };
    Ok(v)
}

fn literal_to_natural_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::U64(*v),
        Literal::Float(v) => Value::F64(*v),
        Literal::Str(s) => Value::Str(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

/// Lowers a typechecked element into IR, binding `args` over the element's
/// parameters (defaults fill unsupplied parameters).
pub fn lower_element(
    checked: &CheckedElement,
    args: &[(String, Value)],
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<ElementIr, LowerError> {
    if request.len() > MAX_FIELDS || response.len() > MAX_FIELDS {
        return Err(LowerError::new(format!(
            "schemas are limited to {MAX_FIELDS} fields"
        )));
    }
    let def = &checked.def;

    // Bind parameters.
    let mut params: HashMap<String, Value> = HashMap::new();
    for p in &def.params {
        let supplied = args.iter().find(|(n, _)| n == &p.name).map(|(_, v)| v);
        let value = match (supplied, &p.default) {
            (Some(v), _) => {
                // Allow numeric widening of supplied args.
                coerce_value(v.clone(), p.ty).ok_or_else(|| {
                    LowerError::new(format!(
                        "argument {:?} has type {}, parameter expects {}",
                        p.name,
                        v.value_type(),
                        p.ty
                    ))
                })?
            }
            (None, Some(default)) => literal_to_value(default, p.ty)?,
            (None, None) => {
                return Err(LowerError::new(format!(
                    "parameter {:?} has no argument and no default",
                    p.name
                )))
            }
        };
        params.insert(p.name.clone(), value);
    }
    for (name, _) in args {
        if def.param(name).is_none() {
            return Err(LowerError::new(format!("unknown argument {name:?}")));
        }
    }

    // Lower state tables.
    let mut tables = Vec::with_capacity(def.states.len());
    for s in &def.states {
        let column_types: Vec<ValueType> = s.columns.iter().map(|c| c.ty).collect();
        let mut init_rows = Vec::with_capacity(s.init_rows.len());
        for row in &s.init_rows {
            let mut values = Vec::with_capacity(row.len());
            for (lit, ty) in row.iter().zip(&column_types) {
                values.push(literal_to_value(lit, *ty)?);
            }
            init_rows.push(values);
        }
        tables.push(TableIr {
            name: s.name.clone(),
            column_names: s.columns.iter().map(|c| c.name.clone()).collect(),
            column_types,
            key_columns: s.key_indices(),
            capacity: s.capacity.map(|c| c as usize),
            init_rows,
        });
    }

    let ctx = LowerCtx {
        def,
        params: &params,
        tables: &tables,
    };

    let request_stmts = match &def.on_request {
        Some(h) => ctx.lower_handler(&h.body, request)?,
        None => Vec::new(),
    };
    let response_stmts = match &def.on_response {
        Some(h) => ctx.lower_handler(&h.body, response)?,
        None => Vec::new(),
    };

    Ok(ElementIr {
        name: def.name.clone(),
        tables,
        request: request_stmts,
        response: response_stmts,
        source: adn_dsl::printer::print_element(def),
        drop_insensitive: false,
        enforce_off_app: false,
        pin_sender_side: false,
    })
}

fn coerce_value(v: Value, target: ValueType) -> Option<Value> {
    if v.value_type() == target {
        return Some(v);
    }
    match (&v, target) {
        (Value::U64(x), ValueType::I64) => i64::try_from(*x).ok().map(Value::I64),
        (Value::U64(x), ValueType::F64) => Some(Value::F64(*x as f64)),
        (Value::I64(x), ValueType::F64) => Some(Value::F64(*x as f64)),
        _ => None,
    }
}

struct LowerCtx<'a> {
    def: &'a ast::ElementDef,
    params: &'a HashMap<String, Value>,
    tables: &'a [TableIr],
}

impl<'a> LowerCtx<'a> {
    fn table_index(&self, name: &str) -> Result<usize, LowerError> {
        self.tables
            .iter()
            .position(|t| t.name == name)
            .ok_or_else(|| LowerError::new(format!("unknown table {name:?}")))
    }

    fn lower_handler(&self, body: &[Stmt], schema: &RpcSchema) -> Result<Vec<IrStmt>, LowerError> {
        body.iter().map(|s| self.lower_stmt(s, schema)).collect()
    }

    fn lower_stmt(&self, stmt: &Stmt, schema: &RpcSchema) -> Result<IrStmt, LowerError> {
        match stmt {
            Stmt::Select(sel) => {
                let join = match &sel.join {
                    Some(j) => {
                        let table = self.table_index(&j.table)?;
                        let on = self.lower_expr(&j.on, schema, Some(table))?;
                        let strategy = detect_join_strategy(&on, &self.tables[table]);
                        Some(IrJoin {
                            table,
                            on,
                            strategy,
                        })
                    }
                    None => None,
                };
                let scoped = join.as_ref().map(|j| j.table);
                let condition = sel
                    .condition
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, scoped))
                    .transpose()?;
                let mut assignments = Vec::new();
                if let Projection::Items(items) = &sel.projection {
                    for item in items {
                        let out_name = match (&item.alias, &item.expr) {
                            (Some(a), _) => a.clone(),
                            (None, Expr::InputField(n)) => n.clone(),
                            (None, Expr::TableColumn { column, .. }) => column.clone(),
                            (None, _) => {
                                return Err(LowerError::new("projection item needs alias"))
                            }
                        };
                        let idx = schema.index_of(&out_name).ok_or_else(|| {
                            LowerError::new(format!("unknown field {out_name:?}"))
                        })?;
                        // Skip identity items.
                        if matches!(&item.expr, Expr::InputField(n) if *n == out_name) {
                            continue;
                        }
                        let expr = self.lower_expr(&item.expr, schema, scoped)?;
                        let expr = cast_to(expr, schema.fields()[idx].ty);
                        assignments.push((idx, expr));
                    }
                }
                let else_abort = sel
                    .else_abort
                    .as_ref()
                    .map(|ea| {
                        Ok::<_, LowerError>((
                            self.lower_expr(&ea.code, schema, None)?,
                            ea.message
                                .as_ref()
                                .map(|m| self.lower_expr(m, schema, None))
                                .transpose()?,
                        ))
                    })
                    .transpose()?;
                Ok(IrStmt::Select {
                    assignments,
                    join,
                    condition,
                    else_abort,
                })
            }
            Stmt::Insert(ins) => {
                let table = self.table_index(&ins.table)?;
                let tbl = &self.tables[table];
                let mut values = Vec::with_capacity(ins.values.len());
                for (e, ty) in ins.values.iter().zip(&tbl.column_types) {
                    let expr = self.lower_expr(e, schema, None)?;
                    values.push(cast_to(expr, *ty));
                }
                Ok(IrStmt::Insert { table, values })
            }
            Stmt::Update(upd) => {
                let table = self.table_index(&upd.table)?;
                let tbl = &self.tables[table];
                let mut assignments = Vec::with_capacity(upd.assignments.len());
                for (col_name, e) in &upd.assignments {
                    let col = tbl
                        .column_names
                        .iter()
                        .position(|c| c == col_name)
                        .ok_or_else(|| LowerError::new(format!("unknown column {col_name:?}")))?;
                    let expr = self.lower_expr(e, schema, Some(table))?;
                    assignments.push((col, cast_to(expr, tbl.column_types[col])));
                }
                let condition = upd
                    .condition
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, Some(table)))
                    .transpose()?;
                Ok(IrStmt::Update {
                    table,
                    assignments,
                    condition,
                })
            }
            Stmt::Delete(del) => {
                let table = self.table_index(&del.table)?;
                let condition = del
                    .condition
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, Some(table)))
                    .transpose()?;
                Ok(IrStmt::Delete { table, condition })
            }
            Stmt::Drop(cond) => Ok(IrStmt::Drop {
                condition: cond
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, None))
                    .transpose()?,
            }),
            Stmt::Route { key, condition } => Ok(IrStmt::Route {
                key: self.lower_expr(key, schema, None)?,
                condition: condition
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, None))
                    .transpose()?,
            }),
            Stmt::Abort {
                code,
                message,
                condition,
            } => Ok(IrStmt::Abort {
                code: self.lower_expr(code, schema, None)?,
                message: message
                    .as_ref()
                    .map(|m| self.lower_expr(m, schema, None))
                    .transpose()?,
                condition: condition
                    .as_ref()
                    .map(|c| self.lower_expr(c, schema, None))
                    .transpose()?,
            }),
            Stmt::Set {
                field,
                value,
                condition,
            } => {
                let idx = schema
                    .index_of(field)
                    .ok_or_else(|| LowerError::new(format!("unknown field {field:?}")))?;
                let expr = self.lower_expr(value, schema, None)?;
                Ok(IrStmt::Set {
                    field: idx,
                    value: cast_to(expr, schema.fields()[idx].ty),
                    condition: condition
                        .as_ref()
                        .map(|c| self.lower_expr(c, schema, None))
                        .transpose()?,
                })
            }
        }
    }

    fn lower_expr(
        &self,
        expr: &Expr,
        schema: &RpcSchema,
        scoped_table: Option<usize>,
    ) -> Result<IrExpr, LowerError> {
        Ok(match expr {
            Expr::Literal(lit) => IrExpr::Const(literal_to_natural_value(lit)),
            Expr::InputField(name) => {
                let idx = schema
                    .index_of(name)
                    .ok_or_else(|| LowerError::new(format!("unknown input field {name:?}")))?;
                IrExpr::Field(idx)
            }
            Expr::TableColumn { table, column } => {
                let ti = scoped_table.ok_or_else(|| {
                    LowerError::new(format!("{table}.{column} used outside table scope"))
                })?;
                let tbl = &self.tables[ti];
                if tbl.name != *table {
                    return Err(LowerError::new(format!(
                        "{table}.{column}: only {:?} is in scope",
                        tbl.name
                    )));
                }
                let col = tbl
                    .column_names
                    .iter()
                    .position(|c| c == column)
                    .ok_or_else(|| LowerError::new(format!("unknown column {column:?}")))?;
                IrExpr::Col(col)
            }
            Expr::Param(name) => {
                let v = self
                    .params
                    .get(name)
                    .ok_or_else(|| LowerError::new(format!("unknown parameter {name:?}")))?;
                IrExpr::Const(v.clone())
            }
            Expr::Call { function, args } => {
                if self.def.param(function).is_some() {
                    return Err(LowerError::new(format!(
                        "{function:?} is a parameter, not a function"
                    )));
                }
                IrExpr::Udf {
                    name: function.clone(),
                    args: args
                        .iter()
                        .map(|a| self.lower_expr(a, schema, scoped_table))
                        .collect::<Result<_, _>>()?,
                }
            }
            Expr::Unary { op, operand } => IrExpr::Unary {
                op: match op {
                    ast::UnOp::Not => IrUnOp::Not,
                    ast::UnOp::Neg => IrUnOp::Neg,
                },
                operand: Box::new(self.lower_expr(operand, schema, scoped_table)?),
            },
            Expr::Binary { op, left, right } => IrExpr::Binary {
                op: lower_binop(*op),
                left: Box::new(self.lower_expr(left, schema, scoped_table)?),
                right: Box::new(self.lower_expr(right, schema, scoped_table)?),
            },
            Expr::Case { arms, otherwise } => IrExpr::Case {
                arms: arms
                    .iter()
                    .map(|(c, v)| {
                        Ok((
                            self.lower_expr(c, schema, scoped_table)?,
                            self.lower_expr(v, schema, scoped_table)?,
                        ))
                    })
                    .collect::<Result<_, LowerError>>()?,
                otherwise: otherwise
                    .as_ref()
                    .map(|e| self.lower_expr(e, schema, scoped_table).map(Box::new))
                    .transpose()?,
            },
        })
    }
}

fn lower_binop(op: ast::BinOp) -> IrBinOp {
    match op {
        ast::BinOp::Or => IrBinOp::Or,
        ast::BinOp::And => IrBinOp::And,
        ast::BinOp::Eq => IrBinOp::Eq,
        ast::BinOp::NotEq => IrBinOp::NotEq,
        ast::BinOp::Lt => IrBinOp::Lt,
        ast::BinOp::Le => IrBinOp::Le,
        ast::BinOp::Gt => IrBinOp::Gt,
        ast::BinOp::Ge => IrBinOp::Ge,
        ast::BinOp::Add => IrBinOp::Add,
        ast::BinOp::Sub => IrBinOp::Sub,
        ast::BinOp::Mul => IrBinOp::Mul,
        ast::BinOp::Div => IrBinOp::Div,
        ast::BinOp::Mod => IrBinOp::Mod,
    }
}

/// Wraps `expr` in a cast when its constant type differs but widens into
/// `target`. Non-constant expressions are left alone (the evaluator promotes
/// dynamically; statement targets re-coerce on write).
fn cast_to(expr: IrExpr, target: ValueType) -> IrExpr {
    match &expr {
        IrExpr::Const(v) if v.value_type() != target => {
            if let Some(coerced) = coerce_value(v.clone(), target) {
                return IrExpr::Const(coerced);
            }
            IrExpr::Cast {
                to: target,
                inner: Box::new(expr),
            }
        }
        _ => expr,
    }
}

/// Detects whether a join predicate covers the table's key columns with
/// `input.field == table.key` equality conjuncts.
fn detect_join_strategy(on: &IrExpr, table: &TableIr) -> JoinStrategy {
    if table.key_columns.is_empty() {
        return JoinStrategy::Scan;
    }
    // Collect equality conjuncts Field(i) == Col(k).
    let mut pairs: Vec<(usize, usize)> = Vec::new(); // (key col, input field)
    collect_eq_conjuncts(on, &mut pairs);
    let mut input_fields = Vec::with_capacity(table.key_columns.len());
    for &key_col in &table.key_columns {
        match pairs.iter().find(|(c, _)| *c == key_col) {
            Some((_, field)) => input_fields.push(*field),
            None => return JoinStrategy::Scan,
        }
    }
    JoinStrategy::KeyLookup { input_fields }
}

fn collect_eq_conjuncts(e: &IrExpr, out: &mut Vec<(usize, usize)>) {
    match e {
        IrExpr::Binary {
            op: IrBinOp::And,
            left,
            right,
        } => {
            collect_eq_conjuncts(left, out);
            collect_eq_conjuncts(right, out);
        }
        IrExpr::Binary {
            op: IrBinOp::Eq,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (IrExpr::Field(f), IrExpr::Col(c)) | (IrExpr::Col(c), IrExpr::Field(f)) => {
                out.push((*c, *f));
            }
            _ => {}
        },
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;

    fn schemas() -> (RpcSchema, RpcSchema) {
        let req = RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        (req, resp)
    }

    fn lower(src: &str, args: &[(String, Value)]) -> Result<ElementIr, LowerError> {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        lower_element(&checked, args, &req, &resp)
    }

    #[test]
    fn acl_lowers_with_key_lookup_join() {
        let src = r#"
            element Acl() {
                state ac_tab(username: string key, permission: string) init {
                    ('alice', 'W')
                };
                on request {
                    SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                    WHERE ac_tab.permission == 'W';
                }
            }
        "#;
        let ir = lower(src, &[]).unwrap();
        assert_eq!(ir.tables[0].init_rows[0][0], Value::Str("alice".into()));
        let IrStmt::Select { join, .. } = &ir.request[0] else {
            panic!()
        };
        let join = join.as_ref().unwrap();
        // username is request field index 1.
        assert_eq!(
            join.strategy,
            JoinStrategy::KeyLookup {
                input_fields: vec![1]
            }
        );
    }

    #[test]
    fn non_key_join_falls_back_to_scan() {
        let src = r#"
            element E() {
                state t(a: string key, b: string);
                on request {
                    SELECT * FROM input JOIN t ON input.username == t.b;
                }
            }
        "#;
        let ir = lower(src, &[]).unwrap();
        let IrStmt::Select { join, .. } = &ir.request[0] else {
            panic!()
        };
        assert_eq!(join.as_ref().unwrap().strategy, JoinStrategy::Scan);
    }

    #[test]
    fn params_fold_to_constants() {
        let src = "element F(p: f64 = 0.25) { on request { DROP WHERE random() < p; SELECT * FROM input; } }";
        let ir = lower(src, &[]).unwrap();
        let IrStmt::Drop {
            condition: Some(cond),
        } = &ir.request[0]
        else {
            panic!()
        };
        let mut saw = false;
        cond.walk(&mut |e| {
            if let IrExpr::Const(Value::F64(v)) = e {
                if *v == 0.25 {
                    saw = true;
                }
            }
        });
        assert!(saw, "default should be inlined: {cond:?}");

        // Supplying an argument overrides the default; integers widen.
        let ir = lower(src, &[("p".into(), Value::U64(1))]).unwrap();
        let IrStmt::Drop {
            condition: Some(cond),
        } = &ir.request[0]
        else {
            panic!()
        };
        let mut saw = false;
        cond.walk(&mut |e| {
            if let IrExpr::Const(Value::F64(v)) = e {
                if *v == 1.0 {
                    saw = true;
                }
            }
        });
        assert!(saw);
    }

    #[test]
    fn unknown_argument_rejected() {
        let src = "element F() { on request { SELECT * FROM input; } }";
        assert!(lower(src, &[("ghost".into(), Value::U64(1))]).is_err());
    }

    #[test]
    fn int_literal_coerced_into_float_column() {
        let src = r#"
            element E() {
                state t(k: string key, v: f64);
                on request {
                    INSERT INTO t VALUES (input.username, 1);
                    SELECT * FROM input;
                }
            }
        "#;
        let ir = lower(src, &[]).unwrap();
        let IrStmt::Insert { values, .. } = &ir.request[0] else {
            panic!()
        };
        assert_eq!(values[1], IrExpr::Const(Value::F64(1.0)));
    }

    #[test]
    fn projection_rewrite_lowered_to_assignment() {
        let src =
            "element E() { on request { SELECT hash(input.username) AS object_id FROM input; } }";
        let ir = lower(src, &[]).unwrap();
        let IrStmt::Select { assignments, .. } = &ir.request[0] else {
            panic!()
        };
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].0, 0); // object_id is field 0
    }

    #[test]
    fn identity_projection_produces_no_assignment() {
        let src =
            "element E() { on request { SELECT input.username, input.object_id FROM input; } }";
        let ir = lower(src, &[]).unwrap();
        let IrStmt::Select { assignments, .. } = &ir.request[0] else {
            panic!()
        };
        assert!(assignments.is_empty());
    }

    #[test]
    fn source_is_recorded_for_codegen() {
        let src = "element E() { on request { SELECT * FROM input; } }";
        let ir = lower(src, &[]).unwrap();
        assert!(ir.source.contains("element E"));
    }

    #[test]
    fn missing_required_param_rejected() {
        let src =
            "element F(p: f64) { on request { DROP WHERE random() < p; SELECT * FROM input; } }";
        let err = lower(src, &[]).unwrap_err();
        assert!(err.message.contains("no argument"));
    }
}
