//! # adn-ir — the ADN compiler middle-end
//!
//! Paper §5.2: "the compiler first converts the program into an intermediate
//! representation (IR). It then applies a set of optimizations on the IR ...
//! Finally, the compiler translates optimized IR into platform-native code."
//!
//! This crate is that middle layer:
//!
//! * [`expr`] — resolved expressions: field indices instead of names,
//!   parameters folded to constants, explicit casts, UDF references.
//! * [`element`] — [`element::ElementIr`]: one element lowered against a
//!   concrete schema pair, with its state table layouts and per-direction
//!   statement lists.
//! * [`lower`] — AST → IR lowering (name resolution happened in `adn-dsl`;
//!   lowering binds parameter values and assigns indices).
//! * [`analysis`] — per-element field read/write bitsets, drop/determinism
//!   facts, cost estimates, and the **commutativity** judgment that licenses
//!   reordering (paper §3, Configuration 3).
//! * [`passes`] — chain-level optimization passes: constant folding,
//!   element reordering (cheap droppers first), fusion into stages,
//!   parallelism detection, and minimal-header computation (paper §4 Q2).
//!
//! The IR is backend-neutral: `adn-backend` consumes it to produce native
//! plans, eBPF-sim bytecode, P4-sim pipelines, or Rust source text.

pub mod analysis;
pub mod element;
pub mod expr;
pub mod lower;
pub mod passes;

pub use element::{ChainIr, Direction, ElementIr, IrStmt, TableIr};
pub use expr::IrExpr;
pub use lower::{lower_element, LowerError};
pub use passes::{optimize, OptReport, PassConfig};
