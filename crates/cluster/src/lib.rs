//! # adn-cluster — simulated cluster manager
//!
//! Paper §5.2: "The ADN controller is a logically centralized component
//! that has global knowledge (acquired via cluster managers such as
//! Kubernetes) of the network topology, service locations, and available
//! ADN processors." And §6: "We created a Kubernetes custom resource called
//! ADNConfig which developers use to provide ADN programs. The ADN
//! controller watches for changes to this resource or to the deployment."
//!
//! This crate is that cluster manager, simulated: an inventory of nodes
//! (with CPU slots, eBPF capability, optional SmartNIC), programmable
//! switches, services with replicas, plus a versioned [`AdnConfig`]
//! resource store with **watch streams** — the exact interface the
//! controller consumes. Resources serialize as JSON (the CRD stand-in).

pub mod resources;
pub mod store;

pub use resources::{
    AdnConfig, ElementSpec, NodeId, NodeSpec, PlacementConstraint, ReplicaSpec, ServiceSpec,
    SmartNicSpec, SwitchId, SwitchSpec,
};
pub use store::{ClusterEvent, ClusterStore, LoadReport};
