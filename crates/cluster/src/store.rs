//! The versioned resource store with watch streams.
//!
//! The controller subscribes via [`ClusterStore::watch`] and receives a
//! [`ClusterEvent`] for every config change, replica change, and load
//! report — the same interaction pattern as a Kubernetes watch on the
//! ADNConfig CRD and on Deployments (paper §6).

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::RwLock;

use crate::resources::{AdnConfig, NodeId, NodeSpec, ReplicaSpec, ServiceSpec, SwitchSpec};

/// Periodic load report from a data-plane processor (paper §5.3: processors
/// "periodically send reports of logging, tracing, and runtime statistical
/// information back to the controller").
///
/// Telemetry piggybacks here rather than on a new message type: the queue
/// depth and per-element metric snapshots ride the same heartbeat report
/// the controller already consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Endpoint address of the reporting processor.
    pub endpoint: u64,
    /// Messages processed since the last report.
    pub processed: u64,
    /// Messages dropped/aborted since the last report.
    pub rejected: u64,
    /// Utilization estimate in [0, 1].
    pub utilization: f64,
    /// Inbound frames queued at the processor at report time (congestion
    /// signal for load-aware placement).
    pub queue_depth: u64,
    /// Cumulative requests shed by priority admission control (overload
    /// signal: the processor is refusing work to protect goodput).
    pub shed: u64,
    /// Cumulative requests dropped because their in-band deadline budget
    /// was already exhausted on arrival.
    pub expired_drops: u64,
    /// Cumulative per-element metric snapshots hosted on the processor.
    pub elements: Vec<adn_telemetry::ElementSnapshot>,
}

/// Events delivered to watchers.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterEvent {
    /// An AdnConfig was created or updated (version increments).
    ConfigUpdated { app: String, version: u64 },
    /// A replica joined a service.
    ReplicaAdded {
        service: String,
        replica: ReplicaSpec,
    },
    /// A replica left a service.
    ReplicaRemoved { service: String, endpoint: u64 },
    /// A node joined the cluster.
    NodeAdded { node: NodeId },
    /// A processor load report arrived.
    Load(LoadReport),
    /// A data-plane processor stopped heartbeating (failure detector
    /// verdict); the controller reacts by re-placing its elements.
    ProcessorDown { endpoint: u64 },
}

#[derive(Default)]
struct StoreState {
    nodes: HashMap<NodeId, NodeSpec>,
    switches: Vec<SwitchSpec>,
    services: HashMap<String, ServiceSpec>,
    configs: HashMap<String, (u64, AdnConfig)>,
    watchers: Vec<Sender<ClusterEvent>>,
}

/// The cluster state store. Cheap to clone (shared).
#[derive(Clone, Default)]
pub struct ClusterStore {
    state: Arc<RwLock<StoreState>>,
}

impl ClusterStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn broadcast(&self, event: ClusterEvent) {
        let mut state = self.state.write();
        state.watchers.retain(|w| w.send(event.clone()).is_ok());
    }

    /// Subscribes to all subsequent events.
    pub fn watch(&self) -> Receiver<ClusterEvent> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.state.write().watchers.push(tx);
        rx
    }

    // -- inventory -----------------------------------------------------------

    /// Registers a node.
    pub fn add_node(&self, node: NodeSpec) {
        let id = node.id;
        self.state.write().nodes.insert(id, node);
        self.broadcast(ClusterEvent::NodeAdded { node: id });
    }

    /// Node by id.
    pub fn node(&self, id: NodeId) -> Option<NodeSpec> {
        self.state.read().nodes.get(&id).cloned()
    }

    /// All nodes, sorted by id.
    pub fn nodes(&self) -> Vec<NodeSpec> {
        let mut nodes: Vec<NodeSpec> = self.state.read().nodes.values().cloned().collect();
        nodes.sort_by_key(|n| n.id);
        nodes
    }

    /// Registers a switch.
    pub fn add_switch(&self, switch: SwitchSpec) {
        self.state.write().switches.push(switch);
    }

    /// All switches.
    pub fn switches(&self) -> Vec<SwitchSpec> {
        self.state.read().switches.clone()
    }

    // -- services ------------------------------------------------------------

    /// Creates or replaces a service definition.
    pub fn add_service(&self, service: ServiceSpec) {
        self.state
            .write()
            .services
            .insert(service.name.clone(), service);
    }

    /// Service by name.
    pub fn service(&self, name: &str) -> Option<ServiceSpec> {
        self.state.read().services.get(name).cloned()
    }

    /// Adds a replica to an existing service (a "deployment change").
    pub fn add_replica(&self, service: &str, replica: ReplicaSpec) -> Result<(), String> {
        {
            let mut state = self.state.write();
            let svc = state
                .services
                .get_mut(service)
                .ok_or_else(|| format!("unknown service {service:?}"))?;
            svc.replicas.push(replica.clone());
        }
        self.broadcast(ClusterEvent::ReplicaAdded {
            service: service.to_owned(),
            replica,
        });
        Ok(())
    }

    /// Removes a replica by endpoint.
    pub fn remove_replica(&self, service: &str, endpoint: u64) -> Result<(), String> {
        {
            let mut state = self.state.write();
            let svc = state
                .services
                .get_mut(service)
                .ok_or_else(|| format!("unknown service {service:?}"))?;
            let before = svc.replicas.len();
            svc.replicas.retain(|r| r.endpoint != endpoint);
            if svc.replicas.len() == before {
                return Err(format!("no replica with endpoint {endpoint}"));
            }
        }
        self.broadcast(ClusterEvent::ReplicaRemoved {
            service: service.to_owned(),
            endpoint,
        });
        Ok(())
    }

    // -- AdnConfig -----------------------------------------------------------

    /// Creates or updates the AdnConfig for an app; bumps its version.
    pub fn apply_config(&self, config: AdnConfig) -> u64 {
        let app = config.app.clone();
        let version = {
            let mut state = self.state.write();
            let entry = state
                .configs
                .entry(app.clone())
                .or_insert((0, config.clone()));
            entry.0 += 1;
            entry.1 = config;
            entry.0
        };
        self.broadcast(ClusterEvent::ConfigUpdated { app, version });
        version
    }

    /// Current config and version for an app.
    pub fn config(&self, app: &str) -> Option<(u64, AdnConfig)> {
        self.state.read().configs.get(app).cloned()
    }

    // -- telemetry ------------------------------------------------------------

    /// Submits a processor load report.
    pub fn report_load(&self, report: LoadReport) {
        self.broadcast(ClusterEvent::Load(report));
    }

    /// Reports a processor as failed (missed heartbeats). Watchers — the
    /// controller — react by failing the processor's elements over.
    pub fn report_processor_down(&self, endpoint: u64) {
        self.broadcast(ClusterEvent::ProcessorDown { endpoint });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resources::ElementSpec;

    fn config(app: &str) -> AdnConfig {
        AdnConfig {
            app: app.into(),
            src_service: "a".into(),
            dst_service: "b".into(),
            chain: vec![ElementSpec {
                element: "Acl".into(),
                source: None,
                args: vec![],
                constraints: vec![],
            }],
            seed: 0,
        }
    }

    #[test]
    fn watch_sees_config_updates_with_versions() {
        let store = ClusterStore::new();
        let rx = store.watch();
        assert_eq!(store.apply_config(config("app1")), 1);
        assert_eq!(store.apply_config(config("app1")), 2);
        assert_eq!(
            rx.try_recv().unwrap(),
            ClusterEvent::ConfigUpdated {
                app: "app1".into(),
                version: 1
            }
        );
        assert_eq!(
            rx.try_recv().unwrap(),
            ClusterEvent::ConfigUpdated {
                app: "app1".into(),
                version: 2
            }
        );
    }

    #[test]
    fn replica_lifecycle_events() {
        let store = ClusterStore::new();
        store.add_service(ServiceSpec {
            name: "b".into(),
            replicas: vec![],
        });
        let rx = store.watch();
        let replica = ReplicaSpec {
            node: NodeId(1),
            endpoint: 200,
        };
        store.add_replica("b", replica.clone()).unwrap();
        assert_eq!(store.service("b").unwrap().replicas.len(), 1);
        assert_eq!(
            rx.try_recv().unwrap(),
            ClusterEvent::ReplicaAdded {
                service: "b".into(),
                replica
            }
        );
        store.remove_replica("b", 200).unwrap();
        assert!(store.service("b").unwrap().replicas.is_empty());
        assert!(store.remove_replica("b", 200).is_err());
        assert!(store
            .add_replica(
                "ghost",
                ReplicaSpec {
                    node: NodeId(1),
                    endpoint: 1
                }
            )
            .is_err());
    }

    #[test]
    fn nodes_sorted_and_queryable() {
        let store = ClusterStore::new();
        for id in [3u32, 1, 2] {
            store.add_node(NodeSpec {
                id: NodeId(id),
                name: format!("node{id}"),
                cpu_slots: 4,
                ebpf_capable: id % 2 == 0,
                smartnic: None,
            });
        }
        let nodes = store.nodes();
        assert_eq!(
            nodes.iter().map(|n| n.id.0).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert!(store.node(NodeId(2)).unwrap().ebpf_capable);
        assert!(store.node(NodeId(9)).is_none());
    }

    #[test]
    fn load_reports_reach_watchers() {
        let store = ClusterStore::new();
        let rx = store.watch();
        store.report_load(LoadReport {
            endpoint: 5,
            processed: 100,
            rejected: 3,
            utilization: 0.8,
            queue_depth: 7,
            shed: 0,
            expired_drops: 0,
            elements: vec![],
        });
        assert!(matches!(rx.try_recv().unwrap(), ClusterEvent::Load(r) if r.endpoint == 5));
    }

    #[test]
    fn processor_down_reaches_watchers() {
        let store = ClusterStore::new();
        let rx = store.watch();
        store.report_processor_down(10_000);
        assert_eq!(
            rx.try_recv().unwrap(),
            ClusterEvent::ProcessorDown { endpoint: 10_000 }
        );
    }

    #[test]
    fn dead_watchers_are_pruned() {
        let store = ClusterStore::new();
        drop(store.watch());
        let rx = store.watch();
        store.apply_config(config("x"));
        assert!(rx.try_recv().is_ok());
    }
}
