//! Cluster resource types: nodes, switches, services, and the AdnConfig
//! custom resource.

use serde::{Deserialize, Serialize};

/// Identifies a compute node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// A SmartNIC attached to a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SmartNicSpec {
    /// Engine slots available on the NIC cores.
    pub cpu_slots: u32,
}

/// A compute node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpec {
    pub id: NodeId,
    pub name: String,
    /// Engine slots available on host CPUs (for sidecar/library processors).
    pub cpu_slots: u32,
    /// Whether the kernel allows eBPF processors.
    pub ebpf_capable: bool,
    /// Attached SmartNIC, if any.
    pub smartnic: Option<SmartNicSpec>,
}

/// A switch on the path between nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwitchSpec {
    pub id: SwitchId,
    pub name: String,
    /// Whether the switch is P4-programmable.
    pub programmable: bool,
    /// Match-action table entries available.
    pub table_capacity: u32,
}

/// One replica of a service.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplicaSpec {
    /// Node hosting the replica.
    pub node: NodeId,
    /// Flat endpoint address on the virtual link layer.
    pub endpoint: u64,
}

/// A service and its replicas.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSpec {
    pub name: String,
    pub replicas: Vec<ReplicaSpec>,
}

/// One element instantiation in an AdnConfig program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElementSpec {
    /// Element name in the catalog, or inline `source`.
    pub element: String,
    /// Inline DSL source (overrides catalog lookup when set).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub source: Option<String>,
    /// Arguments: name → JSON value (numbers/strings/bools).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub args: Vec<(String, serde_json::Value)>,
    /// Placement constraints for this element.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub constraints: Vec<PlacementConstraint>,
}

/// Placement constraints (paper §4 Q1: "any element location constraints").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementConstraint {
    /// Must not run inside the application binary / RPC library (paper §3:
    /// mandatory policies are enforced outside the app).
    OffApp,
    /// Must be co-located with the sender (e.g. encryption).
    SenderSide,
    /// Must be co-located with the receiver (e.g. decryption).
    ReceiverSide,
    /// Best-effort state: optimizer may reorder droppers around it.
    DropInsensitive,
}

/// The AdnConfig custom resource: the application's network program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdnConfig {
    /// Application name this config belongs to.
    pub app: String,
    /// Source service (the caller side).
    pub src_service: String,
    /// Destination service (the callee side).
    pub dst_service: String,
    /// Element chain, sender side first.
    pub chain: Vec<ElementSpec>,
    /// Fault-injection seed so experiments are reproducible.
    #[serde(default)]
    pub seed: u64,
}

impl AdnConfig {
    /// Serializes to the JSON CRD representation.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("AdnConfig serializes")
    }

    /// Parses the JSON CRD representation.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_config() -> AdnConfig {
        AdnConfig {
            app: "object-store".into(),
            src_service: "frontend".into(),
            dst_service: "storage".into(),
            chain: vec![
                ElementSpec {
                    element: "Logging".into(),
                    source: None,
                    args: vec![],
                    constraints: vec![PlacementConstraint::DropInsensitive],
                },
                ElementSpec {
                    element: "Acl".into(),
                    source: None,
                    args: vec![],
                    constraints: vec![PlacementConstraint::OffApp],
                },
                ElementSpec {
                    element: "Fault".into(),
                    source: None,
                    args: vec![("abort_prob".into(), serde_json::json!(0.02))],
                    constraints: vec![],
                },
            ],
            seed: 42,
        }
    }

    #[test]
    fn adnconfig_json_roundtrip() {
        let config = sample_config();
        let json = config.to_json();
        let back = AdnConfig::from_json(&json).unwrap();
        assert_eq!(back, config);
        assert!(json.contains("\"Acl\""));
    }

    #[test]
    fn adnconfig_accepts_handwritten_json() {
        let json = r#"{
            "app": "a", "src_service": "s", "dst_service": "d",
            "chain": [
                {"element": "Firewall", "args": [["blocked", 7]]},
                {"element": "Inline", "source": "element Inline() { on request { SELECT * FROM input; } }"}
            ]
        }"#;
        let config = AdnConfig::from_json(json).unwrap();
        assert_eq!(config.seed, 0, "seed defaults");
        assert_eq!(config.chain.len(), 2);
        assert!(config.chain[1].source.is_some());
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(AdnConfig::from_json("{not json").is_err());
        assert!(AdnConfig::from_json("{}").is_err());
    }
}
