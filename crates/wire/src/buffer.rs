//! A small freelist buffer pool.
//!
//! mRPC's data path avoids per-message allocation by carving messages out of
//! shared-memory heaps. We approximate the property that matters for the
//! benchmarks — hot paths do not allocate per RPC — with a thread-safe
//! freelist of `Vec<u8>` buffers. Both the ADN path and the baseline mesh
//! path draw from pools so allocation behaviour is not a confound.

use std::sync::{Arc, Mutex};

/// Shared pool of reusable byte buffers.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<Vec<Vec<u8>>>>,
    /// Capacity given to freshly allocated buffers.
    default_capacity: usize,
    /// Buffers larger than this are dropped instead of pooled, bounding
    /// worst-case retained memory.
    max_retained_capacity: usize,
    /// Maximum number of idle buffers retained.
    max_pooled: usize,
}

impl BufferPool {
    /// Creates a pool producing buffers with `default_capacity` preallocated
    /// bytes, retaining at most `max_pooled` idle buffers.
    pub fn new(default_capacity: usize, max_pooled: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(Vec::new())),
            default_capacity,
            max_retained_capacity: default_capacity.max(64 * 1024),
            max_pooled,
        }
    }

    /// Takes a cleared buffer from the pool, or allocates one.
    pub fn take(&self) -> Vec<u8> {
        let mut guard = self.inner.lock().expect("buffer pool poisoned");
        match guard.pop() {
            Some(mut buf) => {
                buf.clear();
                buf
            }
            None => Vec::with_capacity(self.default_capacity),
        }
    }

    /// Returns a buffer to the pool. Oversized or excess buffers are dropped.
    pub fn give(&self, buf: Vec<u8>) {
        if buf.capacity() > self.max_retained_capacity {
            return;
        }
        let mut guard = self.inner.lock().expect("buffer pool poisoned");
        if guard.len() < self.max_pooled {
            guard.push(buf);
        }
    }

    /// Number of idle buffers currently pooled.
    pub fn idle(&self) -> usize {
        self.inner.lock().expect("buffer pool poisoned").len()
    }
}

impl Default for BufferPool {
    fn default() -> Self {
        Self::new(4096, 256)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_give_reuses_allocation() {
        let pool = BufferPool::new(128, 8);
        let mut buf = pool.take();
        buf.extend_from_slice(b"hello");
        let ptr = buf.as_ptr();
        pool.give(buf);
        assert_eq!(pool.idle(), 1);
        let buf2 = pool.take();
        assert!(buf2.is_empty(), "returned buffer must be cleared");
        assert_eq!(buf2.as_ptr(), ptr, "allocation should be reused");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_bounds_idle_count() {
        let pool = BufferPool::new(16, 2);
        pool.give(Vec::with_capacity(16));
        pool.give(Vec::with_capacity(16));
        pool.give(Vec::with_capacity(16));
        assert_eq!(pool.idle(), 2);
    }

    #[test]
    fn oversized_buffers_not_retained() {
        let pool = BufferPool::new(16, 8);
        pool.give(Vec::with_capacity(10 * 1024 * 1024));
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn concurrent_take_give_never_hands_out_a_buffer_twice() {
        use std::collections::HashSet;
        use std::sync::Mutex as StdMutex;

        let pool = BufferPool::new(64, 4);
        // Pointers of buffers currently checked out. A buffer handed to two
        // threads at once would insert the same pointer twice.
        let outstanding: Arc<StdMutex<HashSet<usize>>> = Arc::new(StdMutex::new(HashSet::new()));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let pool = pool.clone();
                let outstanding = outstanding.clone();
                std::thread::spawn(move || {
                    for i in 0..500usize {
                        let mut buf = pool.take();
                        buf.push((t + i) as u8); // force a real allocation
                        let ptr = buf.as_ptr() as usize;
                        assert!(
                            outstanding.lock().unwrap().insert(ptr),
                            "buffer {ptr:#x} handed out while still checked out"
                        );
                        std::thread::yield_now();
                        assert!(outstanding.lock().unwrap().remove(&ptr));
                        pool.give(buf);
                        assert!(
                            pool.idle() <= 4,
                            "idle() exceeded max_pooled under contention"
                        );
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(pool.idle() <= 4);
    }

    #[test]
    fn clones_share_the_pool() {
        let pool = BufferPool::new(16, 8);
        let clone = pool.clone();
        clone.give(Vec::with_capacity(16));
        assert_eq!(pool.idle(), 1);
    }
}
