//! Time source abstraction shared by every layer above the wire.
//!
//! The runtime crates (rpc, dataplane, controller, telemetry) all need a
//! notion of "now" for retry deadlines, circuit-breaker cooldowns, heartbeat
//! ages, autoscale cooldowns, and observation windows. Reading
//! `Instant::now()` directly hard-wires those paths to the wall clock, which
//! makes whole-cluster tests nondeterministic and slow (every timeout is a
//! real sleep). This module splits the dependency: production code runs on
//! [`SystemClock`], and the deterministic simulator (`adn-sim`) substitutes a
//! [`VirtualClock`] it advances explicitly.
//!
//! Timestamps are [`Duration`]s since the clock's epoch rather than
//! [`Instant`]s, because `Instant` values cannot be fabricated at arbitrary
//! points — a virtual clock must be able to jump to any timestamp.
//!
//! The trait lives here (and not in `adn-rpc`) because `adn-telemetry` needs
//! it too and depends only on `adn-wire`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source. `now()` is the elapsed time since the clock's
/// epoch; `sleep(d)` blocks (or, for virtual clocks, advances time) by `d`.
pub trait Clock: Send + Sync {
    /// Monotonic time since this clock's epoch.
    fn now(&self) -> Duration;

    /// Waits for `d` to pass on this clock.
    fn sleep(&self, d: Duration);
}

/// Wall-clock implementation: epoch is the moment of construction, `sleep`
/// is a real thread sleep.
#[derive(Debug)]
pub struct SystemClock {
    epoch: Instant,
}

impl SystemClock {
    /// A clock whose epoch is now.
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Duration {
        self.epoch.elapsed()
    }

    fn sleep(&self, d: Duration) {
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

/// A shared wall clock, the default everywhere a caller does not supply one.
pub fn system() -> Arc<dyn Clock> {
    Arc::new(SystemClock::new())
}

/// Virtual time under explicit control. `now()` returns whatever the owner
/// last set; `sleep(d)` advances virtual time by `d` without blocking, so
/// code written against [`Clock`] (retry backoffs, cooldowns) runs in zero
/// wall time under test. Stored as nanoseconds; saturates at `u64::MAX`
/// (~584 years), far beyond any simulated horizon.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// A shared virtual clock at time zero.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Advances virtual time by `d`.
    pub fn advance(&self, d: Duration) {
        let d_ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        let mut cur = self.now_ns.load(Ordering::SeqCst);
        loop {
            let next = cur.saturating_add(d_ns);
            match self
                .now_ns
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Jumps virtual time forward to `t` (no-op if `t` is in the past —
    /// the clock never runs backwards).
    pub fn advance_to(&self, t: Duration) {
        let t_ns = u64::try_from(t.as_nanos()).unwrap_or(u64::MAX);
        self.now_ns.fetch_max(t_ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.now_ns.load(Ordering::SeqCst))
    }

    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_is_monotonic() {
        let clock = SystemClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances_only_when_told() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now(), Duration::ZERO);
        clock.advance(Duration::from_millis(5));
        assert_eq!(clock.now(), Duration::from_millis(5));
        // A long "sleep" is instantaneous and lands exactly.
        let t0 = Instant::now();
        clock.sleep(Duration::from_secs(3600));
        assert!(t0.elapsed() < Duration::from_millis(100));
        assert_eq!(
            clock.now(),
            Duration::from_secs(3600) + Duration::from_millis(5)
        );
    }

    #[test]
    fn virtual_clock_never_runs_backwards() {
        let clock = VirtualClock::new();
        clock.advance_to(Duration::from_secs(10));
        clock.advance_to(Duration::from_secs(4));
        assert_eq!(clock.now(), Duration::from_secs(10));
    }
}
