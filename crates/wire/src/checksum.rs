//! CRC32 (IEEE 802.3 polynomial) with a lazily-built lookup table.
//!
//! Used by the ADN frame format and the baseline mesh's DATA frames so both
//! sides pay identical integrity-check costs.

use std::sync::OnceLock;

const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Incremental CRC32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        for &b in data {
            self.state = (self.state >> 8) ^ t[((self.state ^ b as u32) & 0xFF) as usize];
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"hello world, this is a split checksum test";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"ab"));
    }
}
