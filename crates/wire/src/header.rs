//! Minimal wire-header synthesis runtime.
//!
//! The ADN compiler computes, for each hop that leaves a host, the exact set
//! of RPC fields that downstream processors read (paper §4 Q2, §5.3: "the
//! RPC headers might convey additional information intended for the
//! utilization of downstream processors"). That set becomes a
//! [`HeaderLayout`]: an ordered list of `(field id, type)` pairs. Encoding a
//! header writes only those fields, in layout order, with no names, no
//! self-description, and no nesting — the decoder on the other side holds the
//! same layout (distributed by the controller), so a header for a
//! load-balancer that reads one `u64` key costs exactly one varint on the
//! wire.
//!
//! Contrast with the baseline mesh, where the same information rides in
//! HTTP/2 HEADERS frames as named, HPACK-coded strings.

use std::fmt;

use crate::codec::{Decoder, Encoder, WireError, WireResult};

/// Scalar type of a header field. Mirrors the DSL's scalar types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeaderType {
    /// Unsigned 64-bit integer (varint on the wire).
    U64,
    /// Signed 64-bit integer (zig-zag varint).
    I64,
    /// IEEE-754 double (8 bytes).
    F64,
    /// Boolean (1 byte).
    Bool,
    /// UTF-8 string (varint length + bytes).
    Str,
    /// Opaque bytes (varint length + bytes).
    Bytes,
}

impl fmt::Display for HeaderType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeaderType::U64 => "u64",
            HeaderType::I64 => "i64",
            HeaderType::F64 => "f64",
            HeaderType::Bool => "bool",
            HeaderType::Str => "string",
            HeaderType::Bytes => "bytes",
        };
        f.write_str(s)
    }
}

/// A single typed header value. The conversion to/from the RPC layer's
/// richer `Value` type lives in `adn-rpc` to keep this crate dependency-free.
#[derive(Debug, Clone, PartialEq)]
pub enum HeaderValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
    Bytes(Vec<u8>),
}

impl HeaderValue {
    /// The wire type of this value.
    pub fn header_type(&self) -> HeaderType {
        match self {
            HeaderValue::U64(_) => HeaderType::U64,
            HeaderValue::I64(_) => HeaderType::I64,
            HeaderValue::F64(_) => HeaderType::F64,
            HeaderValue::Bool(_) => HeaderType::Bool,
            HeaderValue::Str(_) => HeaderType::Str,
            HeaderValue::Bytes(_) => HeaderType::Bytes,
        }
    }
}

/// In-band trace context riding alongside a message or hop header.
///
/// The compiler's minimal-header synthesis treats this as an optional
/// extension: layouts for traced applications set
/// [`HeaderLayout::carries_trace`], and each hop then encodes a presence
/// byte plus (when present) three fields. `budget` gates per-hop span
/// recording — a hop that receives `budget == false` forwards the context
/// for correlation but records nothing, so the controller can bound the
/// tracing cost of a single call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// End-to-end trace identifier, assigned once at the originating client
    /// and preserved across retries, NAT rewrites, and dedup replays.
    pub trace_id: u64,
    /// Span id of the upstream hop (0 at the client).
    pub parent_span: u64,
    /// Whether downstream hops may still record spans for this call.
    pub budget: bool,
}

impl TraceContext {
    /// A fresh root context as the originating client mints it.
    pub fn root(trace_id: u64) -> Self {
        Self {
            trace_id,
            parent_span: 0,
            budget: true,
        }
    }

    /// Deterministic span id for a hop of this trace at `endpoint`.
    pub fn span_at(&self, endpoint: u64) -> u64 {
        // splitmix64 of (trace_id ^ rotated endpoint): stable across
        // retransmits of the same call through the same hop.
        let mut z = self
            .trace_id
            .wrapping_add(endpoint.rotate_left(32))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// The context to forward downstream after recording a span here.
    pub fn child_from(&self, endpoint: u64) -> Self {
        Self {
            trace_id: self.trace_id,
            parent_span: self.span_at(endpoint),
            budget: self.budget,
        }
    }

    /// Encodes the context (two varints + one flag byte).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.trace_id);
        enc.put_varint(self.parent_span);
        enc.put_u8(self.budget as u8);
    }

    /// Decodes a context previously written by [`TraceContext::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let trace_id = dec.get_varint()?;
        let parent_span = dec.get_varint()?;
        let budget = match dec.get_u8()? {
            0 => false,
            1 => true,
            t => {
                return Err(WireError::InvalidTag {
                    tag: t as u64,
                    context: "trace budget flag",
                })
            }
        };
        Ok(Self {
            trace_id,
            parent_span,
            budget,
        })
    }
}

/// Priority class of a call, two bits on the wire. Lower classes shed
/// first when a processor crosses its admission high-water mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Best-effort traffic: first to go under overload (and the only class
    /// a brownout in `Shed` mode refuses outright).
    Sheddable = 0,
    /// Ordinary request traffic.
    #[default]
    Normal = 1,
    /// Latency-sensitive traffic that outlives Normal under shedding.
    Important = 2,
    /// Control-plane-adjacent traffic; shed only when everything else is
    /// already gone.
    Critical = 3,
}

impl Priority {
    /// Decodes the two-bit wire representation.
    pub fn from_bits(bits: u8) -> Priority {
        match bits & 0b11 {
            0 => Priority::Sheddable,
            1 => Priority::Normal,
            2 => Priority::Important,
            _ => Priority::Critical,
        }
    }

    /// The two-bit wire representation.
    pub fn bits(self) -> u8 {
        self as u8
    }
}

/// In-band overload context: the caller's remaining deadline budget plus a
/// priority class, riding alongside a message or hop header.
///
/// Like [`TraceContext`], this is an optional extension of the minimal hop
/// header: layouts for deadline-aware applications set
/// [`HeaderLayout::carries_deadline`], and each hop then encodes a presence
/// byte plus (when present) the context. The budget is *relative* — "this
/// many nanoseconds of caller patience remain" — so hops need no clock
/// synchronization: each hop subtracts its own locally measured queue +
/// service time before forwarding. A budget that reaches zero marks work
/// whose caller has already given up; admission control drops such frames
/// before chain execution (counted, never silently).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverloadContext {
    /// Remaining deadline budget in nanoseconds. Saturates at zero;
    /// zero means expired.
    pub budget_ns: u64,
    /// Two-bit priority class used for lowest-first load shedding.
    pub priority: Priority,
}

impl OverloadContext {
    /// A fresh context as the originating client stamps it.
    pub fn root(budget_ns: u64, priority: Priority) -> Self {
        Self {
            budget_ns,
            priority,
        }
    }

    /// The context to forward downstream after this hop spent `elapsed_ns`
    /// of the caller's patience. Saturates at zero rather than wrapping, so
    /// an overspent budget reads as expired, never as refreshed.
    pub fn consume(&self, elapsed_ns: u64) -> Self {
        Self {
            budget_ns: self.budget_ns.saturating_sub(elapsed_ns),
            priority: self.priority,
        }
    }

    /// Whether the caller's deadline has already passed.
    pub fn expired(&self) -> bool {
        self.budget_ns == 0
    }

    /// Encodes the context (one varint + one priority byte).
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_varint(self.budget_ns);
        enc.put_u8(self.priority.bits());
    }

    /// Decodes a context previously written by [`OverloadContext::encode`].
    pub fn decode(dec: &mut Decoder<'_>) -> WireResult<Self> {
        let budget_ns = dec.get_varint()?;
        let raw = dec.get_u8()?;
        if raw > 0b11 {
            return Err(WireError::InvalidTag {
                tag: raw as u64,
                context: "overload priority class",
            });
        }
        Ok(Self {
            budget_ns,
            priority: Priority::from_bits(raw),
        })
    }
}

/// One field slot in a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeaderField {
    /// Compiler-assigned stable field id (unique within the application).
    pub id: u16,
    /// Human-readable name, used for diagnostics only — never on the wire.
    pub name: String,
    /// Wire type.
    pub ty: HeaderType,
}

/// An ordered set of header fields: the complete wire schema for one hop.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HeaderLayout {
    fields: Vec<HeaderField>,
    carries_trace: bool,
    carries_deadline: bool,
}

impl HeaderLayout {
    /// Empty layout (a hop where downstream reads nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a layout from fields, keeping the given order.
    pub fn from_fields(fields: Vec<HeaderField>) -> Self {
        Self {
            fields,
            carries_trace: false,
            carries_deadline: false,
        }
    }

    /// Marks the layout as carrying an optional trace-context extension.
    /// Hop codecs for such layouts write a presence byte (plus the context
    /// when present); untraced layouts stay byte-identical to before.
    pub fn with_trace(mut self) -> Self {
        self.carries_trace = true;
        self
    }

    /// Sets the trace-extension flag in place.
    pub fn set_carries_trace(&mut self, on: bool) {
        self.carries_trace = on;
    }

    /// Whether hop frames under this layout reserve a trace-context slot.
    pub fn carries_trace(&self) -> bool {
        self.carries_trace
    }

    /// Marks the layout as carrying an optional overload-context extension
    /// (deadline budget + priority). Hop codecs for such layouts write a
    /// presence byte (plus the context when present); layouts without it
    /// stay byte-identical to before.
    pub fn with_deadline(mut self) -> Self {
        self.carries_deadline = true;
        self
    }

    /// Sets the deadline-extension flag in place.
    pub fn set_carries_deadline(&mut self, on: bool) {
        self.carries_deadline = on;
    }

    /// Whether hop frames under this layout reserve an overload-context slot.
    pub fn carries_deadline(&self) -> bool {
        self.carries_deadline
    }

    /// Appends a field slot.
    pub fn push(&mut self, id: u16, name: impl Into<String>, ty: HeaderType) {
        self.fields.push(HeaderField {
            id,
            name: name.into(),
            ty,
        });
    }

    /// The field slots in wire order.
    pub fn fields(&self) -> &[HeaderField] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the layout carries nothing.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Finds the position of a field by name.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// Encodes `values` (which must match the layout arity and types)
    /// into `enc`. Returns the number of bytes written.
    pub fn encode(&self, values: &[HeaderValue], enc: &mut Encoder) -> WireResult<usize> {
        if values.len() != self.fields.len() {
            return Err(WireError::Malformed("header value arity mismatch"));
        }
        let start = enc.len();
        for (slot, value) in self.fields.iter().zip(values) {
            if value.header_type() != slot.ty {
                return Err(WireError::Malformed("header value type mismatch"));
            }
            match value {
                HeaderValue::U64(v) => enc.put_varint(*v),
                HeaderValue::I64(v) => enc.put_varint_signed(*v),
                HeaderValue::F64(v) => enc.put_f64(*v),
                HeaderValue::Bool(v) => enc.put_u8(*v as u8),
                HeaderValue::Str(v) => enc.put_str(v),
                HeaderValue::Bytes(v) => enc.put_bytes(v),
            }
        }
        Ok(enc.len() - start)
    }

    /// Decodes one header according to this layout.
    pub fn decode(&self, dec: &mut Decoder<'_>) -> WireResult<Vec<HeaderValue>> {
        let mut out = Vec::with_capacity(self.fields.len());
        for slot in &self.fields {
            let v = match slot.ty {
                HeaderType::U64 => HeaderValue::U64(dec.get_varint()?),
                HeaderType::I64 => HeaderValue::I64(dec.get_varint_signed()?),
                HeaderType::F64 => HeaderValue::F64(dec.get_f64()?),
                HeaderType::Bool => match dec.get_u8()? {
                    0 => HeaderValue::Bool(false),
                    1 => HeaderValue::Bool(true),
                    t => {
                        return Err(WireError::InvalidTag {
                            tag: t as u64,
                            context: "bool header field",
                        })
                    }
                },
                HeaderType::Str => HeaderValue::Str(dec.get_str()?.to_owned()),
                HeaderType::Bytes => HeaderValue::Bytes(dec.get_bytes()?.to_owned()),
            };
            out.push(v);
        }
        Ok(out)
    }

    /// Exact encoded size of `values` under this layout, for budgeting
    /// against device constraints (e.g. the P4 switch's 200-byte window).
    pub fn encoded_size(&self, values: &[HeaderValue]) -> WireResult<usize> {
        let mut enc = Encoder::new();
        self.encode(values, &mut enc)?;
        Ok(enc.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_layout() -> HeaderLayout {
        let mut l = HeaderLayout::new();
        l.push(1, "object_id", HeaderType::U64);
        l.push(2, "username", HeaderType::Str);
        l.push(3, "deadline_ms", HeaderType::I64);
        l.push(4, "compressed", HeaderType::Bool);
        l
    }

    fn sample_values() -> Vec<HeaderValue> {
        vec![
            HeaderValue::U64(42),
            HeaderValue::Str("alice".into()),
            HeaderValue::I64(-5),
            HeaderValue::Bool(true),
        ]
    }

    #[test]
    fn roundtrip() {
        let layout = sample_layout();
        let values = sample_values();
        let mut enc = Encoder::new();
        layout.encode(&values, &mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = layout.decode(&mut dec).unwrap();
        assert_eq!(back, values);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn minimal_header_is_small() {
        // A single u64 LB key should cost at most 10 bytes, typically 1-2.
        let mut l = HeaderLayout::new();
        l.push(1, "key", HeaderType::U64);
        let size = l.encoded_size(&[HeaderValue::U64(7)]).unwrap();
        assert_eq!(size, 1);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let layout = sample_layout();
        let mut enc = Encoder::new();
        let err = layout.encode(&sample_values()[..2], &mut enc).unwrap_err();
        assert!(matches!(err, WireError::Malformed(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let layout = sample_layout();
        let mut vals = sample_values();
        vals[0] = HeaderValue::Str("not a u64".into());
        let mut enc = Encoder::new();
        assert!(layout.encode(&vals, &mut enc).is_err());
    }

    #[test]
    fn invalid_bool_byte_rejected() {
        let mut l = HeaderLayout::new();
        l.push(1, "flag", HeaderType::Bool);
        let mut dec = Decoder::new(&[2]);
        assert!(matches!(
            l.decode(&mut dec),
            Err(WireError::InvalidTag { tag: 2, .. })
        ));
    }

    #[test]
    fn empty_layout_is_zero_bytes() {
        let l = HeaderLayout::new();
        assert_eq!(l.encoded_size(&[]).unwrap(), 0);
    }

    #[test]
    fn position_of_finds_fields() {
        let l = sample_layout();
        assert_eq!(l.position_of("username"), Some(1));
        assert_eq!(l.position_of("missing"), None);
    }

    #[test]
    fn trace_context_roundtrips() {
        let ctx = TraceContext {
            trace_id: 0xdead_beef_cafe,
            parent_span: 77,
            budget: true,
        };
        let mut enc = Encoder::new();
        ctx.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(TraceContext::decode(&mut dec).unwrap(), ctx);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn trace_context_bad_budget_byte_rejected() {
        let mut enc = Encoder::new();
        enc.put_varint(1);
        enc.put_varint(2);
        enc.put_u8(9);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            TraceContext::decode(&mut dec),
            Err(WireError::InvalidTag { tag: 9, .. })
        ));
    }

    #[test]
    fn span_ids_are_stable_and_distinct_per_endpoint() {
        let ctx = TraceContext::root(42);
        assert_eq!(ctx.span_at(5), ctx.span_at(5));
        assert_ne!(ctx.span_at(5), ctx.span_at(6));
        let child = ctx.child_from(5);
        assert_eq!(child.trace_id, 42);
        assert_eq!(child.parent_span, ctx.span_at(5));
        assert!(child.budget);
    }

    #[test]
    fn layout_trace_flag_defaults_off() {
        assert!(!sample_layout().carries_trace());
        assert!(sample_layout().with_trace().carries_trace());
    }

    #[test]
    fn layout_deadline_flag_defaults_off() {
        assert!(!sample_layout().carries_deadline());
        assert!(sample_layout().with_deadline().carries_deadline());
    }

    #[test]
    fn overload_context_roundtrips() {
        let ctx = OverloadContext::root(1_500_000, Priority::Important);
        let mut enc = Encoder::new();
        ctx.encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(OverloadContext::decode(&mut dec).unwrap(), ctx);
        assert!(dec.is_exhausted());
    }

    #[test]
    fn overload_context_bad_priority_byte_rejected() {
        let mut enc = Encoder::new();
        enc.put_varint(10);
        enc.put_u8(4);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert!(matches!(
            OverloadContext::decode(&mut dec),
            Err(WireError::InvalidTag { tag: 4, .. })
        ));
    }

    #[test]
    fn overload_budget_consume_saturates() {
        let ctx = OverloadContext::root(100, Priority::Normal);
        let spent = ctx.consume(40);
        assert_eq!(spent.budget_ns, 60);
        assert_eq!(spent.priority, Priority::Normal);
        assert!(!spent.expired());
        let dead = spent.consume(1_000);
        assert_eq!(dead.budget_ns, 0);
        assert!(
            dead.expired(),
            "overspent budget reads expired, not wrapped"
        );
    }

    #[test]
    fn priority_bits_roundtrip_and_order() {
        for p in [
            Priority::Sheddable,
            Priority::Normal,
            Priority::Important,
            Priority::Critical,
        ] {
            assert_eq!(Priority::from_bits(p.bits()), p);
        }
        assert!(Priority::Sheddable < Priority::Normal);
        assert!(Priority::Important < Priority::Critical);
    }
}
