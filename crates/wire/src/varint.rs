//! Variable-length integer encoding (LEB128) and zig-zag signed mapping.
//!
//! Both the baseline gRPC-lite codec and ADN's minimal headers use varints,
//! so the two systems share the cheapest possible integer representation and
//! performance differences come from *how much* they encode, not *how*.

use crate::codec::{WireError, WireResult};

/// Maximum number of bytes a varint-encoded `u64` can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `buf` as a LEB128 varint. Returns the number of bytes
/// written (1..=10).
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        n += 1;
        if value == 0 {
            buf.push(byte);
            return n;
        }
        buf.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from the front of `buf`, returning the value and the
/// number of bytes consumed.
pub fn read_u64(buf: &[u8]) -> WireResult<(u64, usize)> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for (i, &byte) in buf.iter().enumerate() {
        if i >= MAX_VARINT_LEN {
            return Err(WireError::VarintTooLong);
        }
        let payload = (byte & 0x7f) as u64;
        // The tenth byte may only contribute a single bit.
        if shift == 63 && payload > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(WireError::UnexpectedEof {
        needed: 1,
        context: "varint continuation",
    })
}

/// Number of bytes `value` occupies when varint-encoded.
pub fn encoded_len(value: u64) -> usize {
    if value == 0 {
        return 1;
    }
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7)
}

/// Zig-zag maps a signed integer to unsigned so small magnitudes stay small.
pub fn zigzag_encode(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Appends a zig-zag varint-encoded `i64`.
pub fn write_i64(buf: &mut Vec<u8>, value: i64) -> usize {
    write_u64(buf, zigzag_encode(value))
}

/// Reads a zig-zag varint-encoded `i64`.
pub fn read_i64(buf: &[u8]) -> WireResult<(i64, usize)> {
    let (raw, n) = read_u64(buf)?;
    Ok((zigzag_decode(raw), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_one_byte() {
        let mut buf = Vec::new();
        assert_eq!(write_u64(&mut buf, 0), 1);
        assert_eq!(buf, vec![0]);
        assert_eq!(read_u64(&buf).unwrap(), (0, 1));
    }

    #[test]
    fn boundary_values_roundtrip() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            assert_eq!(n, encoded_len(v), "encoded_len mismatch for {v}");
            let (back, m) = read_u64(&buf).unwrap();
            assert_eq!((back, m), (v, n), "roundtrip mismatch for {v}");
        }
    }

    #[test]
    fn max_u64_is_ten_bytes() {
        let mut buf = Vec::new();
        assert_eq!(write_u64(&mut buf, u64::MAX), 10);
    }

    #[test]
    fn truncated_input_is_error() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.pop();
        assert!(matches!(
            read_u64(&buf),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_input_is_error() {
        // Eleven continuation bytes: longer than any valid u64 varint.
        let buf = [0x80u8; 11];
        assert!(matches!(read_u64(&buf), Err(WireError::VarintTooLong)));
    }

    #[test]
    fn tenth_byte_overflow_is_error() {
        // 9 continuation bytes then a tenth byte with more than one bit set.
        let mut buf = vec![0x80u8; 9];
        buf.push(0x02);
        assert!(matches!(read_u64(&buf), Err(WireError::VarintOverflow)));
    }

    #[test]
    fn zigzag_small_magnitudes_stay_small() {
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(i64::MIN), u64::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            let mut buf = Vec::new();
            let n = write_i64(&mut buf, v);
            let (back, m) = read_i64(&buf).unwrap();
            assert_eq!((back, m), (v, n));
        }
    }

    #[test]
    fn reads_only_first_varint() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 7);
        write_u64(&mut buf, 1000);
        let (v, n) = read_u64(&buf).unwrap();
        assert_eq!(v, 7);
        let (v2, _) = read_u64(&buf[n..]).unwrap();
        assert_eq!(v2, 1000);
    }
}
