//! Cursor-style encoder/decoder over byte buffers.
//!
//! Every parse in the workspace goes through [`Decoder`], which never panics
//! on malformed input: all failures surface as [`WireError`] so fuzzed and
//! property-tested inputs are safe by construction.

use std::fmt;

use crate::varint;

/// Errors produced by wire-format encoding and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Input ended before a complete item could be decoded.
    UnexpectedEof {
        /// How many more bytes were needed (best effort).
        needed: usize,
        /// What was being decoded.
        context: &'static str,
    },
    /// A varint ran past the maximum encodable length.
    VarintTooLong,
    /// A varint encoded a value larger than 64 bits.
    VarintOverflow,
    /// A length prefix exceeded the configured or remaining bound.
    LengthOutOfBounds { length: u64, limit: usize },
    /// A string field did not contain valid UTF-8.
    InvalidUtf8,
    /// A type/status/tag byte had an unknown value.
    InvalidTag { tag: u64, context: &'static str },
    /// A checksum did not match.
    ChecksumMismatch { expected: u32, actual: u32 },
    /// Any other malformed-input condition.
    Malformed(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, context } => {
                write!(
                    f,
                    "unexpected end of input decoding {context} (needed {needed} more bytes)"
                )
            }
            WireError::VarintTooLong => write!(f, "varint longer than 10 bytes"),
            WireError::VarintOverflow => write!(f, "varint overflows u64"),
            WireError::LengthOutOfBounds { length, limit } => {
                write!(f, "length prefix {length} exceeds limit {limit}")
            }
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::InvalidTag { tag, context } => {
                write!(f, "invalid tag {tag} decoding {context}")
            }
            WireError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "checksum mismatch: expected {expected:#010x}, got {actual:#010x}"
                )
            }
            WireError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Convenience alias used across the workspace.
pub type WireResult<T> = Result<T, WireError>;

/// Append-only encoder over a `Vec<u8>`.
///
/// The encoder owns its buffer; call [`Encoder::into_bytes`] to take it.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// Creates an encoder with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Wraps an existing buffer (appends to its end).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        Self { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow of the current contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a varint `u64`.
    pub fn put_varint(&mut self, v: u64) {
        varint::write_u64(&mut self.buf, v);
    }

    /// Appends a zig-zag varint `i64`.
    pub fn put_varint_signed(&mut self, v: i64) {
        varint::write_i64(&mut self.buf, v);
    }

    /// Appends raw bytes with no length prefix.
    pub fn put_bytes_raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a varint length prefix followed by the bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_varint(v.len() as u64);
        self.put_bytes_raw(v);
    }

    /// Appends a varint length prefix followed by UTF-8 bytes.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Appends an IEEE-754 `f64` (big-endian bit pattern).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// Non-panicking cursor over a byte slice.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether the cursor has consumed the whole input.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Current cursor position (bytes consumed).
    pub fn position(&self) -> usize {
        self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n - self.remaining(),
                context,
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn get_u16(&mut self) -> WireResult<u16> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn get_u32(&mut self) -> WireResult<u32> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn get_u64(&mut self) -> WireResult<u64> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a varint `u64`.
    pub fn get_varint(&mut self) -> WireResult<u64> {
        let (v, n) = varint::read_u64(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads a zig-zag varint `i64`.
    pub fn get_varint_signed(&mut self) -> WireResult<i64> {
        let (v, n) = varint::read_i64(&self.buf[self.pos..])?;
        self.pos += n;
        Ok(v)
    }

    /// Reads exactly `n` raw bytes.
    pub fn get_bytes_raw(&mut self, n: usize) -> WireResult<&'a [u8]> {
        self.take(n, "raw bytes")
    }

    /// Reads a varint length prefix then that many bytes. The length is
    /// validated against the remaining input before any allocation occurs.
    pub fn get_bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.get_varint()?;
        if len > self.remaining() as u64 {
            return Err(WireError::LengthOutOfBounds {
                length: len,
                limit: self.remaining(),
            });
        }
        self.take(len as usize, "length-prefixed bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> WireResult<&'a str> {
        let bytes = self.get_bytes()?;
        std::str::from_utf8(bytes).map_err(|_| WireError::InvalidUtf8)
    }

    /// Reads an IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Returns the unread tail without consuming it.
    pub fn peek_rest(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> WireResult<()> {
        self.take(n, "skip")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(0xAB);
        e.put_u16(0xBEEF);
        e.put_u32(0xDEADBEEF);
        e.put_u64(0x0123_4567_89AB_CDEF);
        e.put_varint(300);
        e.put_varint_signed(-42);
        e.put_str("hello");
        e.put_bytes(b"\x00\x01\x02");
        e.put_f64(2.5);
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 0xAB);
        assert_eq!(d.get_u16().unwrap(), 0xBEEF);
        assert_eq!(d.get_u32().unwrap(), 0xDEADBEEF);
        assert_eq!(d.get_u64().unwrap(), 0x0123_4567_89AB_CDEF);
        assert_eq!(d.get_varint().unwrap(), 300);
        assert_eq!(d.get_varint_signed().unwrap(), -42);
        assert_eq!(d.get_str().unwrap(), "hello");
        assert_eq!(d.get_bytes().unwrap(), b"\x00\x01\x02");
        assert_eq!(d.get_f64().unwrap(), 2.5);
        assert!(d.is_exhausted());
    }

    #[test]
    fn eof_reports_context() {
        let mut d = Decoder::new(&[0x01]);
        let err = d.get_u32().unwrap_err();
        assert!(matches!(err, WireError::UnexpectedEof { needed: 3, .. }));
    }

    #[test]
    fn hostile_length_prefix_rejected_before_allocation() {
        // Length prefix claims u64::MAX bytes follow.
        let mut e = Encoder::new();
        e.put_varint(u64::MAX);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(
            d.get_bytes(),
            Err(WireError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.put_bytes(&[0xFF, 0xFE]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_str(), Err(WireError::InvalidUtf8));
    }

    #[test]
    fn skip_and_position_track() {
        let mut d = Decoder::new(&[1, 2, 3, 4]);
        d.skip(2).unwrap();
        assert_eq!(d.position(), 2);
        assert_eq!(d.get_u8().unwrap(), 3);
        assert_eq!(d.remaining(), 1);
        assert!(d.skip(2).is_err());
    }

    #[test]
    fn f64_preserves_nan_bits() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let mut e = Encoder::new();
        e.put_f64(weird);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_f64().unwrap().to_bits(), weird.to_bits());
    }
}
