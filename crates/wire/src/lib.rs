//! # adn-wire — encoding substrate for Application Defined Networks
//!
//! ADN's thesis is that an application network should put *only the bytes the
//! application needs* on the wire. This crate provides the low-level pieces
//! every other layer builds on:
//!
//! * [`varint`] — LEB128-style variable-length integers and zig-zag signed
//!   encoding (the same building block protobuf uses, so the baseline mesh
//!   codec and the ADN minimal-header codec share primitives and the
//!   comparison is apples-to-apples).
//! * [`codec`] — a cursor-style [`codec::Encoder`]/[`codec::Decoder`] pair
//!   over byte buffers with explicit, non-panicking error handling.
//! * [`header`] — *minimal header synthesis* runtime: given the set of RPC
//!   fields that downstream off-host processors actually read (computed by
//!   the compiler), lay out a compact wire header carrying exactly those
//!   fields.
//! * [`checksum`] — CRC32 (IEEE) used by frame formats.
//! * [`clock`] — the [`clock::Clock`] time-source trait every runtime layer
//!   reads instead of `Instant::now()`, so the deterministic simulator can
//!   substitute virtual time.
//! * [`buffer`] — a small freelist buffer pool so hot paths reuse
//!   allocations, in the spirit of mRPC's shared-memory heaps.
//!
//! Nothing in this crate knows about RPC semantics; it is pure bytes.

pub mod buffer;
pub mod checksum;
pub mod clock;
pub mod codec;
pub mod header;
pub mod varint;

pub use codec::{Decoder, Encoder, WireError, WireResult};
