//! Property-based tests for the wire substrate: every codec must roundtrip
//! arbitrary values and must never panic on arbitrary input bytes.

use adn_wire::codec::{Decoder, Encoder};
use adn_wire::header::{HeaderLayout, HeaderType, HeaderValue};
use adn_wire::{checksum, varint};
use proptest::prelude::*;

proptest! {
    #[test]
    fn varint_u64_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        let n = varint::write_u64(&mut buf, v);
        prop_assert_eq!(n, varint::encoded_len(v));
        let (back, m) = varint::read_u64(&buf).unwrap();
        prop_assert_eq!(back, v);
        prop_assert_eq!(m, n);
    }

    #[test]
    fn varint_i64_roundtrips(v in any::<i64>()) {
        let mut buf = Vec::new();
        varint::write_i64(&mut buf, v);
        let (back, _) = varint::read_i64(&buf).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn zigzag_is_a_bijection(v in any::<i64>()) {
        prop_assert_eq!(varint::zigzag_decode(varint::zigzag_encode(v)), v);
    }

    #[test]
    fn varint_read_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        let _ = varint::read_u64(&bytes);
        let _ = varint::read_i64(&bytes);
    }

    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut d = Decoder::new(&bytes);
        // Exercise each accessor; errors are fine, panics are not.
        let _ = d.clone().get_u8();
        let _ = d.clone().get_u16();
        let _ = d.clone().get_u32();
        let _ = d.clone().get_u64();
        let _ = d.clone().get_varint();
        let _ = d.clone().get_bytes();
        let _ = d.clone().get_str();
        let _ = d.get_f64();
    }

    #[test]
    fn length_prefixed_bytes_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut e = Encoder::new();
        e.put_bytes(&data);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.get_bytes().unwrap(), &data[..]);
        prop_assert!(d.is_exhausted());
    }

    #[test]
    fn strings_roundtrip(s in ".{0,64}") {
        let mut e = Encoder::new();
        e.put_str(&s);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        prop_assert_eq!(d.get_str().unwrap(), s);
    }

    #[test]
    fn crc32_incremental_matches_oneshot(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        let mut c = checksum::Crc32::new();
        c.update(&data[..split]);
        c.update(&data[split..]);
        prop_assert_eq!(c.finish(), checksum::crc32(&data));
    }
}

fn arb_header_value() -> impl Strategy<Value = HeaderValue> {
    prop_oneof![
        any::<u64>().prop_map(HeaderValue::U64),
        any::<i64>().prop_map(HeaderValue::I64),
        any::<f64>().prop_map(HeaderValue::F64),
        any::<bool>().prop_map(HeaderValue::Bool),
        ".{0,32}".prop_map(HeaderValue::Str),
        proptest::collection::vec(any::<u8>(), 0..64).prop_map(HeaderValue::Bytes),
    ]
}

fn layout_for(values: &[HeaderValue]) -> HeaderLayout {
    let mut layout = HeaderLayout::new();
    for (i, v) in values.iter().enumerate() {
        layout.push(i as u16, format!("f{i}"), v.header_type());
    }
    layout
}

proptest! {
    #[test]
    fn header_layout_roundtrips(values in proptest::collection::vec(arb_header_value(), 0..8)) {
        let layout = layout_for(&values);
        let mut enc = Encoder::new();
        layout.encode(&values, &mut enc).unwrap();
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        let back = layout.decode(&mut dec).unwrap();
        prop_assert!(dec.is_exhausted());
        // Compare via bit patterns so NaN floats compare equal.
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(values.iter()) {
            match (a, b) {
                (HeaderValue::F64(x), HeaderValue::F64(y)) => {
                    prop_assert_eq!(x.to_bits(), y.to_bits())
                }
                _ => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn header_decode_never_panics(
        bytes in proptest::collection::vec(any::<u8>(), 0..128),
        types in proptest::collection::vec(0u8..6, 0..6),
    ) {
        let mut layout = HeaderLayout::new();
        for (i, t) in types.iter().enumerate() {
            let ty = match t {
                0 => HeaderType::U64,
                1 => HeaderType::I64,
                2 => HeaderType::F64,
                3 => HeaderType::Bool,
                4 => HeaderType::Str,
                _ => HeaderType::Bytes,
            };
            layout.push(i as u16, format!("f{i}"), ty);
        }
        let mut dec = Decoder::new(&bytes);
        let _ = layout.decode(&mut dec);
    }
}
