//! Property tests for the DSL: pretty-printing any generated element and
//! re-parsing the output must reproduce the identical AST, and the lexer /
//! parser must never panic on arbitrary input.

use adn_dsl::ast::*;
use adn_dsl::diag::Span;
use adn_dsl::parser::{parse_element, parse_program};
use adn_dsl::printer::print_element;
use adn_rpc::value::ValueType;
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Fixed pool avoids colliding with keywords while still varying names.
    prop_oneof![
        Just("object_id".to_owned()),
        Just("username".to_owned()),
        Just("payload".to_owned()),
        Just("ac_tab".to_owned()),
        Just("counters".to_owned()),
        Just("limit_p".to_owned()),
        Just("x1".to_owned()),
        Just("y2".to_owned()),
    ]
}

fn arb_type() -> impl Strategy<Value = ValueType> {
    prop_oneof![
        Just(ValueType::U64),
        Just(ValueType::I64),
        Just(ValueType::F64),
        Just(ValueType::Bool),
        Just(ValueType::Str),
        Just(ValueType::Bytes),
    ]
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<u64>().prop_map(Literal::Int),
        // Simple non-negative decimals so the canonical printer's output
        // re-lexes exactly (the grammar has no exponent notation).
        (0u32..1_000_000, 1u32..1000).prop_map(|(n, d)| Literal::Float(n as f64 / d as f64)),
        "[a-zA-Z0-9 _']{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(Expr::InputField),
        (arb_ident(), arb_ident()).prop_map(|(table, column)| Expr::TableColumn { table, column }),
        arb_ident().prop_map(Expr::Param),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop()).prop_map(|(l, r, op)| Expr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(e),
            }),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(e),
            }),
            (arb_ident(), proptest::collection::vec(inner.clone(), 0..3))
                .prop_map(|(function, args)| Expr::Call { function, args }),
            (
                proptest::collection::vec((inner.clone(), inner.clone()), 1..3),
                proptest::option::of(inner)
            )
                .prop_map(|(arms, otherwise)| Expr::Case {
                    arms,
                    otherwise: otherwise.map(Box::new),
                }),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::And),
        Just(BinOp::Eq),
        Just(BinOp::NotEq),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Mod),
    ]
}

fn arb_stmt() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (
            arb_projection(),
            proptest::option::of(arb_join()),
            proptest::option::of(arb_expr()),
            proptest::option::of((arb_expr(), proptest::option::of(arb_expr()))),
        )
            .prop_map(
                |(projection, join, condition, ea)| Stmt::Select(SelectStmt {
                    projection,
                    join,
                    condition,
                    else_abort: ea.map(|(code, message)| ElseAbort { code, message }),
                })
            ),
        (arb_ident(), proptest::collection::vec(arb_expr(), 1..4))
            .prop_map(|(table, values)| Stmt::Insert(InsertStmt { table, values })),
        (
            arb_ident(),
            proptest::collection::vec((arb_ident(), arb_expr()), 1..3),
            proptest::option::of(arb_expr())
        )
            .prop_map(|(table, assignments, condition)| Stmt::Update(UpdateStmt {
                table,
                assignments,
                condition,
            })),
        (arb_ident(), proptest::option::of(arb_expr()))
            .prop_map(|(table, condition)| Stmt::Delete(DeleteStmt { table, condition })),
        proptest::option::of(arb_expr()).prop_map(Stmt::Drop),
        (
            arb_expr(),
            proptest::option::of(arb_expr()),
            proptest::option::of(arb_expr())
        )
            .prop_map(|(code, message, condition)| Stmt::Abort {
                code,
                message,
                condition,
            }),
        (arb_ident(), arb_expr(), proptest::option::of(arb_expr())).prop_map(
            |(field, value, condition)| Stmt::Set {
                field,
                value,
                condition,
            }
        ),
    ]
}

fn arb_projection() -> impl Strategy<Value = Projection> {
    prop_oneof![
        Just(Projection::Star),
        proptest::collection::vec(
            (arb_expr(), proptest::option::of(arb_ident()))
                .prop_map(|(expr, alias)| ProjItem { expr, alias }),
            1..3
        )
        .prop_map(Projection::Items),
    ]
}

fn arb_join() -> impl Strategy<Value = JoinClause> {
    (arb_ident(), arb_expr()).prop_map(|(table, on)| JoinClause { table, on })
}

fn arb_element() -> impl Strategy<Value = ElementDef> {
    (
        proptest::collection::vec(
            (arb_ident(), arb_type(), proptest::option::of(arb_literal())),
            0..3,
        ),
        proptest::collection::vec(
            (
                arb_ident(),
                proptest::collection::vec((arb_ident(), arb_type(), any::<bool>()), 1..3),
            ),
            0..2,
        ),
        proptest::collection::vec(arb_stmt(), 1..4),
        proptest::option::of(proptest::collection::vec(arb_stmt(), 1..3)),
    )
        .prop_map(|(params, states, req_body, resp_body)| {
            // Deduplicate names: keep first occurrence only.
            let mut params_out: Vec<ParamDef> = Vec::new();
            for (name, ty, default) in params {
                if params_out.iter().all(|p| p.name != name) {
                    params_out.push(ParamDef {
                        name,
                        span: Span::DUMMY,
                        ty,
                        default,
                    });
                }
            }
            let mut states_out: Vec<StateDef> = Vec::new();
            for (name, cols) in states {
                if states_out.iter().any(|s| s.name == name) {
                    continue;
                }
                let mut columns: Vec<ColumnDef> = Vec::new();
                for (cname, ty, key) in cols {
                    if columns.iter().all(|c| c.name != cname) {
                        columns.push(ColumnDef {
                            name: cname,
                            ty,
                            key,
                        });
                    }
                }
                states_out.push(StateDef {
                    name,
                    span: Span::DUMMY,
                    columns,
                    capacity: None,
                    init_rows: vec![],
                });
            }
            ElementDef {
                name: "Gen".to_owned(),
                name_span: Span::DUMMY,
                params: params_out,
                states: states_out,
                on_request: Some(Handler {
                    direction: Direction::Request,
                    body: req_body,
                    stmt_spans: vec![],
                }),
                on_response: resp_body.map(|body| Handler {
                    direction: Direction::Response,
                    body,
                    stmt_spans: vec![],
                }),
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_roundtrip(element in arb_element()) {
        let printed = print_element(&element);
        let reparsed = parse_element(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n{printed}"));
        prop_assert_eq!(reparsed, element, "roundtrip diverged for:\n{}", printed);
    }

    #[test]
    fn parser_never_panics(src in ".{0,200}") {
        let _ = parse_element(&src);
        let _ = parse_program(&src);
    }

    #[test]
    fn parser_never_panics_on_tokenish_soup(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("input"), Just("JOIN"), Just("WHERE"),
                Just("element"), Just("state"), Just("on"), Just("request"), Just("("),
                Just(")"), Just("{"), Just("}"), Just(";"), Just(","), Just("=="),
                Just("'s'"), Just("42"), Just("x"), Just("."), Just("*"),
            ],
            0..64,
        )
    ) {
        let src = words.join(" ");
        let _ = parse_element(&src);
    }
}
