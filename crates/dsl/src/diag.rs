//! Structured, source-spanned diagnostics.
//!
//! Every front-end and verification pass reports problems as a
//! [`Diagnostic`]: a stable machine-readable code, a severity, an optional
//! byte [`Span`] into the originating DSL source, a human message, and an
//! optional help line. Diagnostics render either rustc-style (with the
//! offending source line and a caret underline) or as a single JSON object
//! per diagnostic for tooling.

use std::fmt;

/// Stable diagnostic codes emitted by the front end. Verification-layer
/// codes (`V00xx`, `A00xx`, `B00xx`) live in the `adn-verifier` crate.
pub mod codes {
    /// Lexical error (bad character, unterminated string, bad literal).
    pub const LEX: &str = "E0001";
    /// Syntax error.
    pub const PARSE: &str = "E0002";
    /// Duplicate definition (state table, column, parameter).
    pub const DUPLICATE_DEF: &str = "E0101";
    /// Reference to an unknown field, table, column, parameter or function.
    pub const UNKNOWN_NAME: &str = "E0102";
    /// Expression or literal type mismatch.
    pub const TYPE_MISMATCH: &str = "E0103";
    /// Wrong number of arguments or values.
    pub const ARITY: &str = "E0104";
    /// Construct used where it is not allowed.
    pub const INVALID_CONTEXT: &str = "E0105";
}

/// Half-open byte range `[start, end)` into a source string.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    pub start: u32,
    pub end: u32,
}

impl Span {
    /// The empty placeholder span used where no position is known.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    pub fn is_dummy(&self) -> bool {
        *self == Span::DUMMY
    }
}

/// 1-based line and column of `offset` within `source`.
pub fn line_col(source: &str, offset: u32) -> (u32, u32) {
    let offset = (offset as usize).min(source.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for b in source.as_bytes()[..offset].iter() {
        if *b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// How severe a diagnostic is. `Error` fails compilation under
/// deny-level verification; `Warning` never does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single structured finding with a stable code.
///
/// Code ranges: `E00xx` front-end (lex/parse/type), `V00xx` chain dataflow
/// verifier, `A00xx` optimizer audit, `B00xx` eBPF offload verifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub code: &'static str,
    pub severity: Severity,
    /// Byte span into the element's DSL source, when one is known.
    pub span: Option<Span>,
    pub message: String,
    pub help: Option<String>,
}

impl Diagnostic {
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: None,
            message: message.into(),
            help: None,
        }
    }

    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            span: None,
            message: message.into(),
            help: None,
        }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders rustc-style against `source`, labelling the snippet `origin`
    /// (a file name or element name). Produces, e.g.:
    ///
    /// ```text
    /// error[E0102]: unknown input field `nope`
    ///   --> acl.adn:4:12
    ///    |
    ///  4 |     WHERE input.nope == 1;
    ///    |           ^^^^^^^^^^
    ///    = help: declared request fields are: object_id, username, payload
    /// ```
    pub fn render(&self, origin: &str, source: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        match self.span {
            Some(span) => {
                let (line, col) = line_col(source, span.start);
                out.push_str(&format!("  --> {origin}:{line}:{col}\n"));
                let text = source.lines().nth(line as usize - 1).unwrap_or("");
                let gutter = format!("{line}");
                let pad = " ".repeat(gutter.len());
                out.push_str(&format!("{pad} |\n"));
                out.push_str(&format!("{gutter} | {text}\n"));
                // Underline within this line only; multi-line spans get a
                // caret run to the end of the first line.
                let width = ((span.end.saturating_sub(span.start)) as usize)
                    .max(1)
                    .min(text.len().saturating_sub(col as usize - 1).max(1));
                out.push_str(&format!(
                    "{pad} | {}{}\n",
                    " ".repeat(col as usize - 1),
                    "^".repeat(width)
                ));
            }
            None => {
                out.push_str(&format!("  --> {origin}\n"));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("   = help: {help}\n"));
        }
        out
    }

    /// Serializes as one JSON object. When `source` is given, the span also
    /// carries 1-based `line`/`col` for editors that want them.
    pub fn to_json(&self, origin: &str, source: Option<&str>) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"code\":{}", json_str(self.code)));
        out.push_str(&format!(
            ",\"severity\":{}",
            json_str(&self.severity.to_string())
        ));
        out.push_str(&format!(",\"origin\":{}", json_str(origin)));
        match self.span {
            Some(span) => {
                out.push_str(&format!(
                    ",\"span\":{{\"start\":{},\"end\":{}",
                    span.start, span.end
                ));
                if let Some(src) = source {
                    let (line, col) = line_col(src, span.start);
                    out.push_str(&format!(",\"line\":{line},\"col\":{col}"));
                }
                out.push('}');
            }
            None => out.push_str(",\"span\":null"),
        }
        out.push_str(&format!(",\"message\":{}", json_str(&self.message)));
        match &self.help {
            Some(help) => out.push_str(&format!(",\"help\":{}", json_str(help))),
            None => out.push_str(",\"help\":null"),
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_col_basic() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 1), (1, 2));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 7), (3, 2));
        // Past-the-end clamps.
        assert_eq!(line_col(src, 99), (3, 3));
    }

    #[test]
    fn span_merge() {
        assert_eq!(Span::new(3, 5).merge(Span::new(1, 4)), Span::new(1, 5));
        assert!(Span::DUMMY.is_dummy());
        assert!(!Span::new(0, 1).is_dummy());
    }

    #[test]
    fn render_with_span() {
        let src = "SELECT *\nFROM input;";
        let d = Diagnostic::error("E0102", "unknown table `inpot`")
            .with_span(Span::new(14, 19))
            .with_help("did you mean `input`?");
        let r = d.render("demo.adn", src);
        assert!(r.contains("error[E0102]: unknown table `inpot`"));
        assert!(r.contains("--> demo.adn:2:6"));
        assert!(r.contains("2 | FROM input;"));
        assert!(r.contains("^^^^^"));
        assert!(r.contains("= help: did you mean `input`?"));
    }

    #[test]
    fn render_without_span() {
        let d = Diagnostic::warning("V0003", "element `Tee` has no effect");
        let r = d.render("chain", "");
        assert!(r.starts_with("warning[V0003]: element `Tee` has no effect"));
        assert!(r.contains("--> chain\n"));
    }

    #[test]
    fn json_shape() {
        let src = "abc";
        let d = Diagnostic::error("E0001", "bad \"char\"").with_span(Span::new(1, 2));
        let j = d.to_json("x.adn", Some(src));
        assert_eq!(
            j,
            "{\"code\":\"E0001\",\"severity\":\"error\",\"origin\":\"x.adn\",\
             \"span\":{\"start\":1,\"end\":2,\"line\":1,\"col\":2},\
             \"message\":\"bad \\\"char\\\"\",\"help\":null}"
        );
        let d2 = Diagnostic::warning("V0002", "dead write");
        assert!(d2.to_json("c", None).contains("\"span\":null"));
    }
}
