//! Abstract syntax of the ADN DSL.
//!
//! An element (paper Figure 4) is a named unit with typed parameters, state
//! tables, and handlers for the two message directions. Handler bodies are
//! ordered statements over the implicit `input` tuple (the RPC being
//! processed) and the element's state tables.

use adn_rpc::value::ValueType;

use crate::diag::Span;

/// A compilation unit: one or more element definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub elements: Vec<ElementDef>,
}

/// One `element Name(params) { ... }` definition.
#[derive(Debug, Clone)]
pub struct ElementDef {
    pub name: String,
    /// Byte span of the element's name token in its source.
    pub name_span: Span,
    pub params: Vec<ParamDef>,
    pub states: Vec<StateDef>,
    /// Handler for requests, if declared.
    pub on_request: Option<Handler>,
    /// Handler for responses, if declared.
    pub on_response: Option<Handler>,
}

// Spans are positional metadata, not syntax: two definitions that print the
// same are equal even when lexed from different offsets (the printer
// round-trip property relies on this).
impl PartialEq for ElementDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.params == other.params
            && self.states == other.states
            && self.on_request == other.on_request
            && self.on_response == other.on_response
    }
}

impl ElementDef {
    /// Looks up a state table by name.
    pub fn state(&self, name: &str) -> Option<&StateDef> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Looks up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamDef> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A typed element parameter with an optional default.
#[derive(Debug, Clone)]
pub struct ParamDef {
    pub name: String,
    /// Byte span of the parameter's name token.
    pub span: Span,
    pub ty: ValueType,
    pub default: Option<Literal>,
}

impl PartialEq for ParamDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.ty == other.ty && self.default == other.default
    }
}

/// A state table declaration: typed columns, optional key columns, optional
/// initial rows.
#[derive(Debug, Clone)]
pub struct StateDef {
    pub name: String,
    /// Byte span of the table's name token.
    pub span: Span,
    pub columns: Vec<ColumnDef>,
    /// Maximum live rows; inserting beyond it evicts the oldest row
    /// (FIFO — log-rotation semantics). `None` = unbounded.
    pub capacity: Option<u64>,
    /// Rows the table starts with (each row is one literal per column).
    pub init_rows: Vec<Vec<Literal>>,
}

impl PartialEq for StateDef {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.columns == other.columns
            && self.capacity == other.capacity
            && self.init_rows == other.init_rows
    }
}

impl StateDef {
    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Indices of key columns, in declaration order.
    pub fn key_indices(&self) -> Vec<usize> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.key)
            .map(|(i, _)| i)
            .collect()
    }
}

/// One column of a state table.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: ValueType,
    /// Whether this column is part of the table's key.
    pub key: bool,
}

/// Which message direction a handler processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    Request,
    Response,
}

/// A handler body: ordered statements executed per RPC.
#[derive(Debug, Clone)]
pub struct Handler {
    pub direction: Direction,
    pub body: Vec<Stmt>,
    /// Byte span of each statement in `body` (same length when produced by
    /// the parser; may be empty for synthesized handlers).
    pub stmt_spans: Vec<Span>,
}

impl Handler {
    /// Span of statement `i`, when known.
    pub fn stmt_span(&self, i: usize) -> Option<Span> {
        self.stmt_spans.get(i).copied()
    }
}

impl PartialEq for Handler {
    fn eq(&self, other: &Self) -> bool {
        self.direction == other.direction && self.body == other.body
    }
}

/// Statements of the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `SELECT proj FROM input [JOIN tab ON cond] [WHERE cond];`
    ///
    /// Emits the (possibly transformed) tuple downstream. A `WHERE` that
    /// does not match, or a `JOIN` with no matching state row, drops the
    /// RPC — this is how Figure 4's ACL "blocks" users.
    Select(SelectStmt),
    /// `INSERT INTO tab VALUES (exprs);` — appends/overwrites a state row.
    Insert(InsertStmt),
    /// `UPDATE tab SET col = expr, ... [WHERE cond];`
    Update(UpdateStmt),
    /// `DELETE FROM tab [WHERE cond];`
    Delete(DeleteStmt),
    /// `DROP [WHERE cond];` — silently discard the RPC.
    Drop(Option<Expr>),
    /// `ROUTE key_expr [WHERE cond];` — load-balance: rewrite the message's
    /// destination to one of the destination service's replicas, chosen by
    /// stable hash of the key expression (the paper's "load balance RPC
    /// requests from A to B.1 or B.2 based on the object identifier").
    /// The replica set is bound by the controller at deployment.
    Route { key: Expr, condition: Option<Expr> },
    /// `ABORT(code[, message]) [WHERE cond];` — reject the RPC.
    Abort {
        code: Expr,
        message: Option<Expr>,
        condition: Option<Expr>,
    },
    /// `SET input_field = expr [WHERE cond];` — sugar for an identity
    /// SELECT with one field replaced; used by compression, mutation, etc.
    Set {
        field: String,
        value: Expr,
        condition: Option<Expr>,
    },
}

/// The SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub projection: Projection,
    pub join: Option<JoinClause>,
    pub condition: Option<Expr>,
    /// `ELSE ABORT(code[, message])`: when the join finds no row or the
    /// condition is false, reject the RPC with this code instead of
    /// silently dropping it (an ACL denies with an error; a rate limiter
    /// sheds silently).
    pub else_abort: Option<ElseAbort>,
}

/// The ELSE ABORT clause of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct ElseAbort {
    pub code: Expr,
    pub message: Option<Expr>,
}

/// SELECT projection: `*` or explicit items.
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    /// Keep all input fields unchanged.
    Star,
    /// Explicit output fields. Each item's alias (or inferred name) must
    /// name an input-schema field; unmentioned fields keep their values.
    Items(Vec<ProjItem>),
}

/// One projection item: an expression with an optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjItem {
    pub expr: Expr,
    pub alias: Option<String>,
}

/// `JOIN table ON condition` — inner join of the input tuple against a
/// state table; no match drops the RPC, multiple matches take the first in
/// deterministic (insertion) order.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    pub table: String,
    pub on: Expr,
}

/// `INSERT INTO table VALUES (...)` with one expression per column.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    pub values: Vec<Expr>,
}

/// `UPDATE table SET col = expr, ... [WHERE cond]`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    pub table: String,
    pub assignments: Vec<(String, Expr)>,
    pub condition: Option<Expr>,
}

/// `DELETE FROM table [WHERE cond]`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub condition: Option<Expr>,
}

/// Literal constants.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(u64),
    Float(f64),
    Str(String),
    Bool(bool),
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator is a logical connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Not,
    Neg,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Literal),
    /// `input.field` — a field of the RPC being processed.
    InputField(String),
    /// `table.column` — a column of the joined state row (valid only under
    /// a JOIN on that table, or in UPDATE/DELETE WHERE clauses).
    TableColumn {
        table: String,
        column: String,
    },
    /// A bare identifier: an element parameter.
    Param(String),
    /// Function call (built-in or user-defined).
    Call {
        function: String,
        args: Vec<Expr>,
    },
    Unary {
        op: UnOp,
        operand: Box<Expr>,
    },
    Binary {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// `CASE WHEN c THEN v ... [ELSE v] END`
    Case {
        arms: Vec<(Expr, Expr)>,
        otherwise: Option<Box<Expr>>,
    },
}

impl Expr {
    /// Walks the expression tree, invoking `f` on every node.
    pub fn walk(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Unary { operand, .. } => operand.walk(f),
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Case { arms, otherwise } => {
                for (c, v) in arms {
                    c.walk(f);
                    v.walk(f);
                }
                if let Some(e) = otherwise {
                    e.walk(f);
                }
            }
            Expr::Literal(_) | Expr::InputField(_) | Expr::TableColumn { .. } | Expr::Param(_) => {}
        }
    }

    /// All `input.*` fields this expression reads.
    pub fn input_fields(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::InputField(name) = e {
                if !out.contains(name) {
                    out.push(name.clone());
                }
            }
        });
        out
    }

    /// All functions this expression calls.
    pub fn called_functions(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Call { function, .. } = e {
                if !out.contains(function) {
                    out.push(function.clone());
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str) -> Expr {
        Expr::InputField(name.into())
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = Expr::Binary {
            op: BinOp::And,
            left: Box::new(field("a")),
            right: Box::new(Expr::Call {
                function: "hash".into(),
                args: vec![field("b")],
            }),
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
    }

    #[test]
    fn input_fields_deduplicated() {
        let e = Expr::Binary {
            op: BinOp::Add,
            left: Box::new(field("x")),
            right: Box::new(field("x")),
        };
        assert_eq!(e.input_fields(), vec!["x".to_owned()]);
    }

    #[test]
    fn called_functions_found_in_case_arms() {
        let e = Expr::Case {
            arms: vec![(
                Expr::Call {
                    function: "random".into(),
                    args: vec![],
                },
                field("v"),
            )],
            otherwise: Some(Box::new(Expr::Call {
                function: "len".into(),
                args: vec![field("payload")],
            })),
        };
        let fns = e.called_functions();
        assert!(fns.contains(&"random".to_owned()));
        assert!(fns.contains(&"len".to_owned()));
    }

    #[test]
    fn state_key_indices() {
        let s = StateDef {
            name: "t".into(),
            span: Span::DUMMY,
            capacity: None,
            columns: vec![
                ColumnDef {
                    name: "a".into(),
                    ty: ValueType::U64,
                    key: true,
                },
                ColumnDef {
                    name: "b".into(),
                    ty: ValueType::Str,
                    key: false,
                },
                ColumnDef {
                    name: "c".into(),
                    ty: ValueType::U64,
                    key: true,
                },
            ],
            init_rows: vec![],
        };
        assert_eq!(s.key_indices(), vec![0, 2]);
        assert_eq!(s.column_index("b"), Some(1));
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }
}
