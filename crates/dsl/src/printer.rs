//! Canonical pretty-printer for the ADN DSL.
//!
//! Printing an AST then re-parsing the output yields the same AST (checked
//! by property tests in `tests/prop_dsl.rs`). The printer is also how the
//! Rust-codegen backend embeds the original source in generated modules, and
//! how `paper_eval --loc` counts DSL lines fairly (one canonical style).

use std::fmt::Write as _;

use crate::ast::*;

/// Pretty-prints a whole program.
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    for (i, e) in program.elements.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_element(e));
    }
    out
}

/// Pretty-prints one element definition in canonical style.
pub fn print_element(e: &ElementDef) -> String {
    let mut out = String::new();
    write!(out, "element {}(", e.name).unwrap();
    for (i, p) in e.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{}: {}", p.name, p.ty).unwrap();
        if let Some(d) = &p.default {
            write!(out, " = {}", print_literal(d)).unwrap();
        }
    }
    out.push_str(") {\n");
    for s in &e.states {
        write!(out, "    state {}(", s.name).unwrap();
        for (i, c) in s.columns.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{}: {}", c.name, c.ty).unwrap();
            if c.key {
                out.push_str(" key");
            }
        }
        out.push(')');
        if let Some(cap) = s.capacity {
            write!(out, " capacity {cap}").unwrap();
        }
        if !s.init_rows.is_empty() {
            out.push_str(" init {\n");
            for row in &s.init_rows {
                out.push_str("        (");
                for (i, lit) in row.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    out.push_str(&print_literal(lit));
                }
                out.push_str("),\n");
            }
            out.push_str("    }");
        }
        out.push_str(";\n");
    }
    if let Some(h) = &e.on_request {
        print_handler(&mut out, h, "request");
    }
    if let Some(h) = &e.on_response {
        print_handler(&mut out, h, "response");
    }
    out.push_str("}\n");
    out
}

fn print_handler(out: &mut String, h: &Handler, dir: &str) {
    writeln!(out, "    on {dir} {{").unwrap();
    for stmt in &h.body {
        writeln!(out, "        {}", print_stmt(stmt)).unwrap();
    }
    out.push_str("    }\n");
}

/// Prints one statement (no trailing newline).
pub fn print_stmt(stmt: &Stmt) -> String {
    match stmt {
        Stmt::Select(sel) => {
            let mut s = String::from("SELECT ");
            match &sel.projection {
                Projection::Star => s.push('*'),
                Projection::Items(items) => {
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&print_expr(&item.expr));
                        if let Some(a) = &item.alias {
                            write!(s, " AS {a}").unwrap();
                        }
                    }
                }
            }
            s.push_str(" FROM input");
            if let Some(j) = &sel.join {
                write!(s, " JOIN {} ON {}", j.table, print_expr(&j.on)).unwrap();
            }
            if let Some(c) = &sel.condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            if let Some(ea) = &sel.else_abort {
                write!(s, " ELSE ABORT({}", print_expr(&ea.code)).unwrap();
                if let Some(m) = &ea.message {
                    write!(s, ", {}", print_expr(m)).unwrap();
                }
                s.push(')');
            }
            s.push(';');
            s
        }
        Stmt::Insert(ins) => {
            let vals: Vec<String> = ins.values.iter().map(print_expr).collect();
            format!("INSERT INTO {} VALUES ({});", ins.table, vals.join(", "))
        }
        Stmt::Update(upd) => {
            let sets: Vec<String> = upd
                .assignments
                .iter()
                .map(|(c, e)| format!("{c} = {}", print_expr(e)))
                .collect();
            let mut s = format!("UPDATE {} SET {}", upd.table, sets.join(", "));
            if let Some(c) = &upd.condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            s.push(';');
            s
        }
        Stmt::Delete(del) => {
            let mut s = format!("DELETE FROM {}", del.table);
            if let Some(c) = &del.condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            s.push(';');
            s
        }
        Stmt::Drop(cond) => match cond {
            Some(c) => format!("DROP WHERE {};", print_expr(c)),
            None => "DROP;".to_owned(),
        },
        Stmt::Route { key, condition } => {
            let mut s = format!("ROUTE {}", print_expr(key));
            if let Some(c) = condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            s.push(';');
            s
        }
        Stmt::Abort {
            code,
            message,
            condition,
        } => {
            let mut s = format!("ABORT({}", print_expr(code));
            if let Some(m) = message {
                write!(s, ", {}", print_expr(m)).unwrap();
            }
            s.push(')');
            if let Some(c) = condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            s.push(';');
            s
        }
        Stmt::Set {
            field,
            value,
            condition,
        } => {
            let mut s = format!("SET {field} = {}", print_expr(value));
            if let Some(c) = condition {
                write!(s, " WHERE {}", print_expr(c)).unwrap();
            }
            s.push(';');
            s
        }
    }
}

fn print_literal(lit: &Literal) -> String {
    match lit {
        Literal::Int(v) => v.to_string(),
        Literal::Float(v) => {
            // Ensure a decimal point so it re-lexes as a float.
            let s = format!("{v}");
            if s.contains('.') || s.contains('e') || s.contains("inf") || s.contains("NaN") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Literal::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Literal::Bool(b) => b.to_string(),
    }
}

/// Prints an expression fully parenthesized where needed. We parenthesize
/// every binary sub-expression to avoid precedence bugs; the parser drops
/// the parens so roundtripping is still the identity.
pub fn print_expr(expr: &Expr) -> String {
    match expr {
        Expr::Literal(lit) => print_literal(lit),
        Expr::InputField(name) => format!("input.{name}"),
        Expr::TableColumn { table, column } => format!("{table}.{column}"),
        Expr::Param(name) => name.clone(),
        Expr::Call { function, args } => {
            let args: Vec<String> = args.iter().map(print_expr).collect();
            format!("{function}({})", args.join(", "))
        }
        Expr::Unary { op, operand } => {
            let o = print_expr(operand);
            // NOT binds looser than comparison in the grammar, so the whole
            // unary expression needs parens when used as a binary operand.
            match op {
                UnOp::Not => format!("(NOT ({o}))"),
                UnOp::Neg => format!("(-({o}))"),
            }
        }
        Expr::Binary { op, left, right } => {
            let op_str = match op {
                BinOp::Or => "OR",
                BinOp::And => "AND",
                BinOp::Eq => "==",
                BinOp::NotEq => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("({} {op_str} {})", print_expr(left), print_expr(right))
        }
        Expr::Case { arms, otherwise } => {
            let mut s = String::from("CASE");
            for (c, v) in arms {
                write!(s, " WHEN {} THEN {}", print_expr(c), print_expr(v)).unwrap();
            }
            if let Some(e) = otherwise {
                write!(s, " ELSE {}", print_expr(e)).unwrap();
            }
            s.push_str(" END");
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_element;

    fn roundtrip(src: &str) {
        let ast1 = parse_element(src).unwrap();
        let printed = print_element(&ast1);
        let ast2 = parse_element(&printed)
            .unwrap_or_else(|e| panic!("re-parse failed: {e}\n--- printed ---\n{printed}"));
        assert_eq!(
            ast1, ast2,
            "print/parse roundtrip changed the AST:\n{printed}"
        );
    }

    #[test]
    fn roundtrips_acl() {
        roundtrip(
            r#"
            element Acl() {
                state ac_tab(username: string key, permission: string) init {
                    ('usr1', 'R'), ('usr2', 'W')
                };
                on request {
                    SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                    WHERE ac_tab.permission == 'W';
                }
            }
            "#,
        );
    }

    #[test]
    fn roundtrips_complex_expressions() {
        roundtrip(
            "element E(p: f64 = 0.5, q: u64 = 3) { on request { \
                SET object_id = CASE WHEN input.object_id % 2 == 0 THEN input.object_id / 2 ELSE input.object_id * 3 + 1 END; \
                ABORT(3, concat('a', 'b''c')) WHERE random() < p AND NOT (input.object_id > q); \
                SELECT * FROM input; } }",
        );
    }

    #[test]
    fn roundtrips_all_statement_kinds() {
        roundtrip(
            "element E(limit: u64 = 10) { \
                state t(k: string key, n: u64); \
                on request { \
                    INSERT INTO t VALUES (input.username, 0); \
                    UPDATE t SET n = t.n + 1 WHERE t.k == input.username; \
                    DELETE FROM t WHERE t.n > limit; \
                    DROP WHERE len(input.payload) == 0; \
                    SELECT input.object_id AS object_id, hash(input.username) AS object_id FROM input; } \
                on response { SELECT * FROM input; } }",
        );
    }

    #[test]
    fn float_literals_reparse_as_floats() {
        assert_eq!(print_literal(&Literal::Float(5.0)), "5.0");
        assert_eq!(print_literal(&Literal::Float(0.05)), "0.05");
    }

    #[test]
    fn strings_escape_quotes() {
        assert_eq!(print_literal(&Literal::Str("it's".into())), "'it''s'");
    }
}
