//! Tokenizer for the ADN DSL.
//!
//! SQL keywords are recognized case-insensitively (`SELECT` == `select`);
//! identifiers and string contents are case-sensitive. Comments run from
//! `--` to end of line (SQL style) or `//` to end of line.

use std::fmt;

/// A token kind plus any payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Structure keywords
    Element,
    State,
    On,
    Request,
    Response,
    Init,
    Key,
    Capacity,
    // SQL keywords
    Select,
    From,
    Input,
    Join,
    Where,
    As,
    Insert,
    Into,
    Values,
    Update,
    SetKw,
    Delete,
    DropKw,
    Route,
    Abort,
    Case,
    When,
    Then,
    Else,
    End,
    And,
    Or,
    Not,
    // Literals and names
    Ident(String),
    Int(u64),
    Float(f64),
    Str(String),
    True,
    False,
    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Semi,
    Colon,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,    // =
    EqEq,  // ==
    NotEq, // !=
    Lt,
    Le,
    Gt,
    Ge,
    /// End of input sentinel.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its source position (1-based line/column) and byte span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
    pub col: u32,
    /// Byte offset of the first byte of the token in the source.
    pub start: u32,
    /// Byte offset one past the last byte of the token.
    pub end: u32,
}

/// Lexing failure.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
    /// Byte offset where the error was detected.
    pub offset: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.line, self.col)
    }
}

impl std::error::Error for LexError {}

fn keyword(word: &str) -> Option<Tok> {
    // SQL keywords: case-insensitive.
    Some(match word.to_ascii_lowercase().as_str() {
        "element" => Tok::Element,
        "state" => Tok::State,
        "on" => Tok::On,
        "request" => Tok::Request,
        "response" => Tok::Response,
        "init" => Tok::Init,
        "key" => Tok::Key,
        "capacity" => Tok::Capacity,
        "select" => Tok::Select,
        "from" => Tok::From,
        "input" => Tok::Input,
        "join" => Tok::Join,
        "where" => Tok::Where,
        "as" => Tok::As,
        "insert" => Tok::Insert,
        "into" => Tok::Into,
        "values" => Tok::Values,
        "update" => Tok::Update,
        "set" => Tok::SetKw,
        "delete" => Tok::Delete,
        "drop" => Tok::DropKw,
        "route" => Tok::Route,
        "abort" => Tok::Abort,
        "case" => Tok::Case,
        "when" => Tok::When,
        "then" => Tok::Then,
        "else" => Tok::Else,
        "end" => Tok::End,
        "and" => Tok::And,
        "or" => Tok::Or,
        "not" => Tok::Not,
        "true" => Tok::True,
        "false" => Tok::False,
        _ => return None,
    })
}

/// Tokenizes `source` into a vector ending with [`Tok::Eof`].
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    // Byte offset of the token currently being scanned; referenced by the
    // `push!` macro, so it must be declared before the macro definition.
    #[allow(unused_assignments)]
    let mut ts = 0u32;

    macro_rules! push {
        ($tok:expr, $l:expr, $c:expr) => {
            tokens.push(Token {
                tok: $tok,
                line: $l,
                col: $c,
                start: ts,
                end: i as u32,
            })
        };
    }

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        ts = i as u32;

        // Non-ASCII is only legal inside string literals (handled below);
        // reject it here so byte-indexed scanning never splits a char.
        if bytes[i] >= 0x80 {
            let ch = source[i..].chars().next().expect("valid utf8");
            return Err(LexError {
                message: format!("unexpected character {ch:?}"),
                line: tl,
                col: tc,
                offset: ts,
            });
        }

        // Whitespace
        if c == '\n' {
            i += 1;
            line += 1;
            col = 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            col += 1;
            continue;
        }
        // Comments: `--` or `//` to end of line.
        if (c == '-' && bytes.get(i + 1) == Some(&b'-'))
            || (c == '/' && bytes.get(i + 1) == Some(&b'/'))
        {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
                col += 1;
            }
            let word = &source[start..i];
            match keyword(word) {
                Some(tok) => push!(tok, tl, tc),
                None => push!(Tok::Ident(word.to_owned()), tl, tc),
            }
            continue;
        }
        // Numbers
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                i += 1;
                col += 1;
            }
            if i < bytes.len()
                && bytes[i] == b'.'
                && i + 1 < bytes.len()
                && (bytes[i + 1] as char).is_ascii_digit()
            {
                is_float = true;
                i += 1;
                col += 1;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                    col += 1;
                }
            }
            let text = &source[start..i];
            if is_float {
                let v: f64 = text.parse().map_err(|_| LexError {
                    message: format!("invalid float literal {text:?}"),
                    line: tl,
                    col: tc,
                    offset: ts,
                })?;
                push!(Tok::Float(v), tl, tc);
            } else {
                let v: u64 = text.parse().map_err(|_| LexError {
                    message: format!("integer literal {text:?} out of range"),
                    line: tl,
                    col: tc,
                    offset: ts,
                })?;
                push!(Tok::Int(v), tl, tc);
            }
            continue;
        }
        // Strings: single quotes, '' escapes a quote (SQL style).
        if c == '\'' {
            i += 1;
            col += 1;
            let mut s = String::new();
            loop {
                if i >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line: tl,
                        col: tc,
                        offset: ts,
                    });
                }
                let ch = bytes[i] as char;
                if ch == '\'' {
                    if bytes.get(i + 1) == Some(&b'\'') {
                        s.push('\'');
                        i += 2;
                        col += 2;
                        continue;
                    }
                    i += 1;
                    col += 1;
                    break;
                }
                if ch == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
                // Strings are UTF-8; copy the full code point.
                let ch_full = source[i..].chars().next().expect("valid utf8");
                s.push(ch_full);
                i += ch_full.len_utf8();
            }
            push!(Tok::Str(s), tl, tc);
            continue;
        }
        // Operators & punctuation
        let two = if i + 1 < bytes.len() && source.is_char_boundary(i + 2) {
            &source[i..i + 2]
        } else {
            ""
        };
        let tok = match two {
            "==" => Some((Tok::EqEq, 2)),
            "!=" | "<>" => Some((Tok::NotEq, 2)),
            "<=" => Some((Tok::Le, 2)),
            ">=" => Some((Tok::Ge, 2)),
            _ => None,
        };
        if let Some((tok, n)) = tok {
            i += n;
            col += n as u32;
            push!(tok, tl, tc);
            continue;
        }
        let tok = match c {
            '(' => Tok::LParen,
            ')' => Tok::RParen,
            '{' => Tok::LBrace,
            '}' => Tok::RBrace,
            ',' => Tok::Comma,
            ';' => Tok::Semi,
            ':' => Tok::Colon,
            '.' => Tok::Dot,
            '*' => Tok::Star,
            '+' => Tok::Plus,
            '-' => Tok::Minus,
            '/' => Tok::Slash,
            '%' => Tok::Percent,
            '=' => Tok::Eq,
            '<' => Tok::Lt,
            '>' => Tok::Gt,
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line: tl,
                    col: tc,
                    offset: ts,
                })
            }
        };
        i += 1;
        col += 1;
        push!(tok, tl, tc);
    }
    tokens.push(Token {
        tok: Tok::Eof,
        line,
        col,
        start: bytes.len() as u32,
        end: bytes.len() as u32,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("SELECT select SeLeCt"),
            vec![Tok::Select, Tok::Select, Tok::Select, Tok::Eof]
        );
    }

    #[test]
    fn identifiers_case_sensitive() {
        assert_eq!(
            toks("ac_tab AC_TAB"),
            vec![
                Tok::Ident("ac_tab".into()),
                Tok::Ident("AC_TAB".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0.05"),
            vec![Tok::Int(42), Tok::Float(0.05), Tok::Eof]
        );
    }

    #[test]
    fn dotted_access_is_not_a_float() {
        assert_eq!(
            toks("input.x"),
            vec![Tok::Input, Tok::Dot, Tok::Ident("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(toks("'it''s'"), vec![Tok::Str("it's".into()), Tok::Eof]);
        assert_eq!(toks("'héllo'"), vec![Tok::Str("héllo".into()), Tok::Eof]);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            toks("-- comment\nSELECT // more\n*"),
            vec![Tok::Select, Tok::Star, Tok::Eof]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            toks("== != <> <= >= < > ="),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_tracked() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!((tokens[0].line, tokens[0].col), (1, 1));
        assert_eq!((tokens[1].line, tokens[1].col), (2, 3));
    }

    #[test]
    fn unexpected_char_reports_position() {
        let err = lex("select @").unwrap_err();
        assert_eq!((err.line, err.col), (1, 8));
    }

    #[test]
    fn figure4_snippet_lexes() {
        let src = "SELECT * FROM input JOIN ac_tab ON input.name == ac_tab.name \
                   WHERE ac_tab.permission == 'W';";
        let t = toks(src);
        assert!(t.contains(&Tok::Join));
        assert!(t.contains(&Tok::Str("W".into())));
        assert_eq!(*t.last().unwrap(), Tok::Eof);
    }
}
