//! User-defined function signatures.
//!
//! Paper §5.1: "SQL cannot express certain forms of complex processing ...
//! operations like compression and encryption. We can model these as
//! user-defined functions for which developers provide platform-specific
//! implementations." This module declares the *signatures* (names, types,
//! and placement-relevant properties) of the built-in UDF set; the
//! platform-specific implementations live in `adn-backend`.

use adn_rpc::value::ValueType;

/// A type pattern for UDF parameters and returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypePattern {
    /// Exactly this scalar type.
    Exact(ValueType),
    /// Any of u64/i64/f64.
    Numeric,
    /// A string or a bytes value.
    StrOrBytes,
    /// Any scalar.
    Any,
    /// Same type as the first argument (for min/max-style functions).
    SameAsFirst,
}

impl TypePattern {
    /// Whether `ty` matches this pattern (SameAsFirst needs external help).
    pub fn matches(self, ty: ValueType) -> bool {
        match self {
            TypePattern::Exact(t) => t == ty,
            TypePattern::Numeric => ty.is_numeric(),
            TypePattern::StrOrBytes => matches!(ty, ValueType::Str | ValueType::Bytes),
            TypePattern::Any => true,
            TypePattern::SameAsFirst => true,
        }
    }
}

/// Which processor classes can execute a UDF (paper §2 "non-portability":
/// some operations cannot run in eBPF or on a switch; these flags gate the
/// controller's placement search).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdfPortability {
    /// Runs inside a software processor (RPC library, sidecar). Always true
    /// for the built-in set.
    pub software: bool,
    /// Runs in the kernel eBPF processor (bounded loops, no allocation).
    pub ebpf: bool,
    /// Runs on a SmartNIC core.
    pub smartnic: bool,
    /// Runs in a P4 match-action pipeline (essentially: cheap arithmetic
    /// and hashing over header fields only).
    pub switch: bool,
}

/// Signature and placement properties of one UDF.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfSignature {
    /// Function name as written in DSL programs.
    pub name: &'static str,
    /// Parameter type patterns.
    pub params: Vec<TypePattern>,
    /// Return type pattern.
    pub ret: TypePattern,
    /// False for `random()` / `now()` — affects reorder legality.
    pub deterministic: bool,
    /// Relative per-call CPU cost (1 = a compare), for the cost model.
    pub cost_hint: u32,
    /// Where this UDF may be placed.
    pub portability: UdfPortability,
}

const SW_ONLY: UdfPortability = UdfPortability {
    software: true,
    ebpf: false,
    smartnic: true,
    switch: false,
};
const SW_EBPF: UdfPortability = UdfPortability {
    software: true,
    ebpf: true,
    smartnic: true,
    switch: false,
};
const ANYWHERE: UdfPortability = UdfPortability {
    software: true,
    ebpf: true,
    smartnic: true,
    switch: true,
};

/// The built-in UDF registry.
pub fn builtin_udfs() -> Vec<UdfSignature> {
    use TypePattern::*;
    use ValueType::*;
    vec![
        UdfSignature {
            name: "compress",
            params: vec![Exact(Bytes)],
            ret: Exact(Bytes),
            deterministic: true,
            cost_hint: 200,
            portability: SW_ONLY,
        },
        UdfSignature {
            name: "decompress",
            params: vec![Exact(Bytes)],
            ret: Exact(Bytes),
            deterministic: true,
            cost_hint: 150,
            portability: SW_ONLY,
        },
        UdfSignature {
            name: "encrypt",
            params: vec![Exact(Bytes), Exact(Str)],
            ret: Exact(Bytes),
            deterministic: true,
            cost_hint: 120,
            portability: SW_EBPF,
        },
        UdfSignature {
            name: "decrypt",
            params: vec![Exact(Bytes), Exact(Str)],
            ret: Exact(Bytes),
            deterministic: true,
            cost_hint: 120,
            portability: SW_EBPF,
        },
        UdfSignature {
            name: "hash",
            params: vec![Any],
            ret: Exact(U64),
            deterministic: true,
            cost_hint: 10,
            portability: ANYWHERE,
        },
        UdfSignature {
            name: "len",
            params: vec![StrOrBytes],
            ret: Exact(U64),
            deterministic: true,
            cost_hint: 1,
            portability: ANYWHERE,
        },
        UdfSignature {
            name: "random",
            params: vec![],
            ret: Exact(F64),
            deterministic: false,
            cost_hint: 5,
            portability: ANYWHERE,
        },
        UdfSignature {
            name: "now",
            params: vec![],
            ret: Exact(U64),
            deterministic: false,
            cost_hint: 5,
            portability: SW_EBPF,
        },
        UdfSignature {
            name: "concat",
            params: vec![Exact(Str), Exact(Str)],
            ret: Exact(Str),
            deterministic: true,
            cost_hint: 5,
            portability: SW_EBPF,
        },
        UdfSignature {
            name: "to_string",
            params: vec![Any],
            ret: Exact(Str),
            deterministic: true,
            cost_hint: 10,
            portability: SW_EBPF,
        },
        UdfSignature {
            name: "min",
            params: vec![Numeric, SameAsFirst],
            ret: SameAsFirst,
            deterministic: true,
            cost_hint: 1,
            portability: ANYWHERE,
        },
        UdfSignature {
            name: "max",
            params: vec![Numeric, SameAsFirst],
            ret: SameAsFirst,
            deterministic: true,
            cost_hint: 1,
            portability: ANYWHERE,
        },
    ]
}

/// Looks up a built-in UDF by name.
pub fn lookup(name: &str) -> Option<UdfSignature> {
    builtin_udfs().into_iter().find(|u| u.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_unique_names() {
        let udfs = builtin_udfs();
        for i in 0..udfs.len() {
            for j in (i + 1)..udfs.len() {
                assert_ne!(udfs[i].name, udfs[j].name);
            }
        }
    }

    #[test]
    fn lookup_finds_compress() {
        let sig = lookup("compress").unwrap();
        assert_eq!(sig.params.len(), 1);
        assert!(!sig.portability.switch, "compression can't run on a switch");
        assert!(sig.portability.software);
    }

    #[test]
    fn random_is_nondeterministic() {
        assert!(!lookup("random").unwrap().deterministic);
        assert!(lookup("hash").unwrap().deterministic);
    }

    #[test]
    fn patterns_match() {
        assert!(TypePattern::Numeric.matches(ValueType::F64));
        assert!(!TypePattern::Numeric.matches(ValueType::Str));
        assert!(TypePattern::StrOrBytes.matches(ValueType::Bytes));
        assert!(TypePattern::Exact(ValueType::U64).matches(ValueType::U64));
        assert!(!TypePattern::Exact(ValueType::U64).matches(ValueType::I64));
    }

    #[test]
    fn unknown_udf_not_found() {
        assert!(lookup("frobnicate").is_none());
    }
}
