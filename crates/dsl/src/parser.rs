//! Recursive-descent parser for the ADN DSL.
//!
//! SQL convention is followed where it matters for familiarity: both `=` and
//! `==` denote equality in expressions (Figure 4 of the paper uses `=`), and
//! keywords are case-insensitive.

use std::fmt;

use adn_rpc::value::ValueType;

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Span};
use crate::lexer::{lex, LexError, Tok, Token};

/// Parse failure with source position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: u32,
    pub col: u32,
    /// Byte span of the offending token.
    pub span: Span,
}

impl ParseError {
    /// Structured form: lex errors are `E0001`, syntax errors `E0002`.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let code = if self.message.starts_with("unexpected character")
            || self.message.starts_with("unterminated string")
            || self.message.starts_with("invalid float")
            || self.message.starts_with("integer literal")
        {
            codes::LEX
        } else {
            codes::PARSE
        };
        Diagnostic::error(code, self.message.clone()).with_span(self.span)
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}:{}", self.message, self.line, self.col)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
            col: e.col,
            span: Span::new(e.offset, e.offset + 1),
        }
    }
}

/// Parses a program (one or more elements).
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut elements = Vec::new();
    while !p.check(&Tok::Eof) {
        elements.push(p.element()?);
    }
    if elements.is_empty() {
        return Err(p.error("expected at least one element definition"));
    }
    Ok(Program { elements })
}

/// Parses exactly one element definition.
pub fn parse_element(source: &str) -> Result<ElementDef, ParseError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let element = p.element()?;
    p.expect(Tok::Eof, "end of input after element")?;
    Ok(element)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn check(&self, tok: &Tok) -> bool {
        &self.peek().tok == tok
    }

    fn eat(&mut self, tok: &Tok) -> bool {
        if self.check(tok) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let t = self.peek();
        ParseError {
            message: format!("{}, found {}", message.into(), t.tok),
            line: t.line,
            col: t.col,
            span: Span::new(t.start, t.end.max(t.start + 1)),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Token, ParseError> {
        if self.check(&tok) {
            Ok(self.advance())
        } else {
            Err(self.error(format!("expected {what}")))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        self.spanned_ident(what).map(|(name, _)| name)
    }

    fn spanned_ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match &self.peek().tok {
            Tok::Ident(name) => {
                let name = name.clone();
                let t = self.advance();
                Ok((name, Span::new(t.start, t.end)))
            }
            // Contextual words that are keywords elsewhere may appear as
            // names in a pinch (`key`, `state`); keep strict for clarity.
            _ => Err(self.error(format!("expected {what}"))),
        }
    }

    /// Byte offset one past the most recently consumed token.
    fn prev_end(&self) -> u32 {
        self.tokens[self.pos.saturating_sub(1)].end
    }

    fn type_name(&mut self) -> Result<ValueType, ParseError> {
        let name = self.ident("type name")?;
        ValueType::parse(&name).ok_or_else(|| ParseError {
            message: format!("unknown type {name:?} (expected u64/i64/f64/bool/string/bytes)"),
            line: self.peek().line,
            col: self.peek().col,
            span: Span::new(self.peek().start, self.peek().end),
        })
    }

    // -- element ------------------------------------------------------------

    fn element(&mut self) -> Result<ElementDef, ParseError> {
        self.expect(Tok::Element, "`element`")?;
        let (name, name_span) = self.spanned_ident("element name")?;
        self.expect(Tok::LParen, "`(` after element name")?;
        let mut params = Vec::new();
        if !self.check(&Tok::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)` after parameters")?;
        self.expect(Tok::LBrace, "`{` starting element body")?;

        let mut states = Vec::new();
        let mut on_request = None;
        let mut on_response = None;
        while !self.check(&Tok::RBrace) {
            match &self.peek().tok {
                Tok::State => states.push(self.state_def()?),
                Tok::On => {
                    let handler = self.handler()?;
                    match handler.direction {
                        Direction::Request => {
                            if on_request.replace(handler).is_some() {
                                return Err(self.error("duplicate `on request` handler"));
                            }
                        }
                        Direction::Response => {
                            if on_response.replace(handler).is_some() {
                                return Err(self.error("duplicate `on response` handler"));
                            }
                        }
                    }
                }
                _ => return Err(self.error("expected `state` or `on` in element body")),
            }
        }
        self.expect(Tok::RBrace, "`}` ending element body")?;
        Ok(ElementDef {
            name,
            name_span,
            params,
            states,
            on_request,
            on_response,
        })
    }

    fn param(&mut self) -> Result<ParamDef, ParseError> {
        let (name, span) = self.spanned_ident("parameter name")?;
        self.expect(Tok::Colon, "`:` after parameter name")?;
        let ty = self.type_name()?;
        let default = if self.eat(&Tok::Eq) {
            Some(self.literal()?)
        } else {
            None
        };
        Ok(ParamDef {
            name,
            span,
            ty,
            default,
        })
    }

    fn state_def(&mut self) -> Result<StateDef, ParseError> {
        self.expect(Tok::State, "`state`")?;
        let (name, span) = self.spanned_ident("state table name")?;
        self.expect(Tok::LParen, "`(` after table name")?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident("column name")?;
            self.expect(Tok::Colon, "`:` after column name")?;
            let ty = self.type_name()?;
            let key = self.eat(&Tok::Key);
            columns.push(ColumnDef {
                name: col_name,
                ty,
                key,
            });
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "`)` after columns")?;

        let capacity = if self.eat(&Tok::Capacity) {
            match self.peek().tok.clone() {
                Tok::Int(v) if v > 0 => {
                    self.advance();
                    Some(v)
                }
                _ => return Err(self.error("expected a positive integer after `capacity`")),
            }
        } else {
            None
        };

        let mut init_rows = Vec::new();
        if self.eat(&Tok::Init) {
            self.expect(Tok::LBrace, "`{` after init")?;
            while !self.check(&Tok::RBrace) {
                self.expect(Tok::LParen, "`(` starting init row")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.literal()?);
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(Tok::RParen, "`)` ending init row")?;
                if row.len() != columns.len() {
                    return Err(self.error(format!(
                        "init row has {} values but table has {} columns",
                        row.len(),
                        columns.len()
                    )));
                }
                init_rows.push(row);
                self.eat(&Tok::Comma); // trailing comma between rows OK
            }
            self.expect(Tok::RBrace, "`}` after init rows")?;
        }
        self.eat(&Tok::Semi);
        Ok(StateDef {
            name,
            span,
            columns,
            capacity,
            init_rows,
        })
    }

    fn handler(&mut self) -> Result<Handler, ParseError> {
        self.expect(Tok::On, "`on`")?;
        let direction = if self.eat(&Tok::Request) {
            Direction::Request
        } else if self.eat(&Tok::Response) {
            Direction::Response
        } else {
            return Err(self.error("expected `request` or `response` after `on`"));
        };
        self.expect(Tok::LBrace, "`{` starting handler body")?;
        let mut body = Vec::new();
        let mut stmt_spans = Vec::new();
        while !self.check(&Tok::RBrace) {
            let start = self.peek().start;
            body.push(self.stmt()?);
            stmt_spans.push(Span::new(start, self.prev_end()));
        }
        self.expect(Tok::RBrace, "`}` ending handler body")?;
        Ok(Handler {
            direction,
            body,
            stmt_spans,
        })
    }

    // -- statements ---------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match &self.peek().tok {
            Tok::Select => self.select_stmt(),
            Tok::Insert => self.insert_stmt(),
            Tok::Update => self.update_stmt(),
            Tok::Delete => self.delete_stmt(),
            Tok::DropKw => {
                self.advance();
                let condition = self.opt_where()?;
                self.expect(Tok::Semi, "`;` after DROP")?;
                Ok(Stmt::Drop(condition))
            }
            Tok::Route => {
                self.advance();
                let key = self.expr()?;
                let condition = self.opt_where()?;
                self.expect(Tok::Semi, "`;` after ROUTE")?;
                Ok(Stmt::Route { key, condition })
            }
            Tok::Abort => {
                self.advance();
                self.expect(Tok::LParen, "`(` after ABORT")?;
                let code = self.expr()?;
                let message = if self.eat(&Tok::Comma) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(Tok::RParen, "`)` after ABORT arguments")?;
                let condition = self.opt_where()?;
                self.expect(Tok::Semi, "`;` after ABORT")?;
                Ok(Stmt::Abort {
                    code,
                    message,
                    condition,
                })
            }
            Tok::SetKw => {
                self.advance();
                // Accept both `SET field = e` and `SET input.field = e`.
                if self.eat(&Tok::Input) {
                    self.expect(Tok::Dot, "`.` after input")?;
                }
                let field = self.ident("field name")?;
                self.expect(Tok::Eq, "`=` in SET")?;
                let value = self.expr()?;
                let condition = self.opt_where()?;
                self.expect(Tok::Semi, "`;` after SET")?;
                Ok(Stmt::Set {
                    field,
                    value,
                    condition,
                })
            }
            _ => {
                Err(self.error("expected a statement (SELECT/INSERT/UPDATE/DELETE/DROP/ABORT/SET)"))
            }
        }
    }

    fn opt_where(&mut self) -> Result<Option<Expr>, ParseError> {
        if self.eat(&Tok::Where) {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn select_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::Select, "`SELECT`")?;
        let projection = if self.eat(&Tok::Star) {
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                let expr = self.expr()?;
                let alias = if self.eat(&Tok::As) {
                    Some(self.ident("alias after AS")?)
                } else {
                    None
                };
                items.push(ProjItem { expr, alias });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            Projection::Items(items)
        };
        self.expect(Tok::From, "`FROM`")?;
        self.expect(
            Tok::Input,
            "`input` (elements select from the input stream)",
        )?;
        let join = if self.eat(&Tok::Join) {
            let table = self.ident("join table name")?;
            self.expect(Tok::On, "`ON` after join table")?;
            let on = self.expr()?;
            Some(JoinClause { table, on })
        } else {
            None
        };
        let condition = self.opt_where()?;
        let else_abort = if self.eat(&Tok::Else) {
            self.expect(Tok::Abort, "`ABORT` after ELSE")?;
            self.expect(Tok::LParen, "`(` after ABORT")?;
            let code = self.expr()?;
            let message = if self.eat(&Tok::Comma) {
                Some(self.expr()?)
            } else {
                None
            };
            self.expect(Tok::RParen, "`)` after ABORT arguments")?;
            Some(ElseAbort { code, message })
        } else {
            None
        };
        self.expect(Tok::Semi, "`;` after SELECT")?;
        Ok(Stmt::Select(SelectStmt {
            projection,
            join,
            condition,
            else_abort,
        }))
    }

    fn insert_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::Insert, "`INSERT`")?;
        self.expect(Tok::Into, "`INTO`")?;
        let table = self.ident("table name")?;
        self.expect(Tok::Values, "`VALUES`")?;
        self.expect(Tok::LParen, "`(` after VALUES")?;
        let mut values = Vec::new();
        loop {
            values.push(self.expr()?);
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(Tok::RParen, "`)` after VALUES list")?;
        self.expect(Tok::Semi, "`;` after INSERT")?;
        Ok(Stmt::Insert(InsertStmt { table, values }))
    }

    fn update_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::Update, "`UPDATE`")?;
        let table = self.ident("table name")?;
        self.expect(Tok::SetKw, "`SET`")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident("column name")?;
            self.expect(Tok::Eq, "`=` in assignment")?;
            let value = self.expr()?;
            assignments.push((col, value));
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        let condition = self.opt_where()?;
        self.expect(Tok::Semi, "`;` after UPDATE")?;
        Ok(Stmt::Update(UpdateStmt {
            table,
            assignments,
            condition,
        }))
    }

    fn delete_stmt(&mut self) -> Result<Stmt, ParseError> {
        self.expect(Tok::Delete, "`DELETE`")?;
        self.expect(Tok::From, "`FROM`")?;
        let table = self.ident("table name")?;
        let condition = self.opt_where()?;
        self.expect(Tok::Semi, "`;` after DELETE")?;
        Ok(Stmt::Delete(DeleteStmt { table, condition }))
    }

    // -- expressions ----------------------------------------------------------

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let negative = self.eat(&Tok::Minus);
        match self.peek().tok.clone() {
            Tok::Int(v) => {
                self.advance();
                if negative {
                    // Negative integer literals appear only in defaults/init
                    // rows; represent as float-free i64 via wrapping into
                    // Int is lossy, so reject overly large magnitudes.
                    if v > i64::MAX as u64 {
                        return Err(self.error("negative literal out of range"));
                    }
                    Ok(Literal::Float(-(v as f64))) // see typecheck: coerced
                } else {
                    Ok(Literal::Int(v))
                }
            }
            Tok::Float(v) => {
                self.advance();
                Ok(Literal::Float(if negative { -v } else { v }))
            }
            Tok::Str(s) => {
                if negative {
                    return Err(self.error("cannot negate a string literal"));
                }
                self.advance();
                Ok(Literal::Str(s))
            }
            Tok::True => {
                self.advance();
                Ok(Literal::Bool(true))
            }
            Tok::False => {
                self.advance();
                Ok(Literal::Bool(false))
            }
            _ => Err(self.error("expected a literal")),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let right = self.and_expr()?;
            left = Expr::Binary {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.not_expr()?;
        while self.eat(&Tok::And) {
            let right = self.not_expr()?;
            left = Expr::Binary {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Not) {
            let operand = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
            })
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let left = self.add_expr()?;
        let op = match self.peek().tok {
            Tok::EqEq | Tok::Eq => Some(BinOp::Eq),
            Tok::NotEq => Some(BinOp::NotEq),
            Tok::Lt => Some(BinOp::Lt),
            Tok::Le => Some(BinOp::Le),
            Tok::Gt => Some(BinOp::Gt),
            Tok::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.add_expr()?;
            Ok(Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.mul_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Mod,
                _ => break,
            };
            self.advance();
            let right = self.unary_expr()?;
            left = Expr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat(&Tok::Minus) {
            let operand = self.unary_expr()?;
            Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            })
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().tok.clone() {
            Tok::Int(_) | Tok::Float(_) | Tok::Str(_) | Tok::True | Tok::False => {
                Ok(Expr::Literal(self.literal()?))
            }
            Tok::LParen => {
                self.advance();
                let e = self.expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Input => {
                self.advance();
                self.expect(Tok::Dot, "`.` after input")?;
                let field = self.ident("field name after input.")?;
                Ok(Expr::InputField(field))
            }
            Tok::Case => {
                self.advance();
                let mut arms = Vec::new();
                while self.eat(&Tok::When) {
                    let cond = self.expr()?;
                    self.expect(Tok::Then, "`THEN`")?;
                    let value = self.expr()?;
                    arms.push((cond, value));
                }
                if arms.is_empty() {
                    return Err(self.error("CASE requires at least one WHEN arm"));
                }
                let otherwise = if self.eat(&Tok::Else) {
                    Some(Box::new(self.expr()?))
                } else {
                    None
                };
                self.expect(Tok::End, "`END` closing CASE")?;
                Ok(Expr::Case { arms, otherwise })
            }
            Tok::Ident(name) => {
                // Could be: function call, table.column, or parameter.
                if *self.peek2() == Tok::LParen {
                    self.advance(); // name
                    self.advance(); // (
                    let mut args = Vec::new();
                    if !self.check(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen, "`)` after call arguments")?;
                    Ok(Expr::Call {
                        function: name,
                        args,
                    })
                } else if *self.peek2() == Tok::Dot {
                    self.advance(); // table
                    self.advance(); // .
                    let column = self.ident("column name")?;
                    Ok(Expr::TableColumn {
                        table: name,
                        column,
                    })
                } else {
                    self.advance();
                    Ok(Expr::Param(name))
                }
            }
            _ => Err(self.error("expected an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ACL_SRC: &str = r#"
        -- Block users that do not have write permission (paper Figure 4)
        element Acl() {
            state ac_tab(username: string key, permission: string) init {
                ('usr1', 'R'),
                ('usr2', 'W')
            };
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;

    #[test]
    fn parses_figure4_acl() {
        let e = parse_element(ACL_SRC).unwrap();
        assert_eq!(e.name, "Acl");
        assert_eq!(e.states.len(), 1);
        let tab = &e.states[0];
        assert_eq!(tab.name, "ac_tab");
        assert_eq!(tab.init_rows.len(), 2);
        assert!(tab.columns[0].key);
        assert!(!tab.columns[1].key);
        let handler = e.on_request.as_ref().unwrap();
        assert_eq!(handler.body.len(), 1);
        match &handler.body[0] {
            Stmt::Select(sel) => {
                assert_eq!(sel.projection, Projection::Star);
                assert_eq!(sel.join.as_ref().unwrap().table, "ac_tab");
                assert!(sel.condition.is_some());
            }
            other => panic!("expected SELECT, got {other:?}"),
        }
    }

    #[test]
    fn parses_fault_injection_with_params() {
        let src = r#"
            element Fault(abort_prob: f64 = 0.05) {
                on request {
                    ABORT(3, 'fault injected') WHERE random() < abort_prob;
                    SELECT * FROM input;
                }
            }
        "#;
        let e = parse_element(src).unwrap();
        assert_eq!(e.params.len(), 1);
        assert_eq!(e.params[0].default, Some(Literal::Float(0.05)));
        let body = &e.on_request.as_ref().unwrap().body;
        assert!(matches!(body[0], Stmt::Abort { .. }));
        assert!(matches!(body[1], Stmt::Select(_)));
    }

    #[test]
    fn parses_logging_with_insert_and_both_handlers() {
        let src = r#"
            element Logging() {
                state log_tab(seq: u64 key, dir: string, note: string);
                on request {
                    INSERT INTO log_tab VALUES (hash(input.username), 'req', input.username);
                    SELECT * FROM input;
                }
                on response {
                    INSERT INTO log_tab VALUES (now(), 'resp', 'ok');
                    SELECT * FROM input;
                }
            }
        "#;
        let e = parse_element(src).unwrap();
        assert!(e.on_request.is_some());
        assert!(e.on_response.is_some());
    }

    #[test]
    fn parses_set_and_update_delete() {
        let src = r#"
            element Mix(limit: u64 = 10) {
                state counters(name: string key, n: u64);
                on request {
                    SET payload = compress(input.payload);
                    UPDATE counters SET n = counters.n + 1 WHERE counters.name == input.username;
                    DELETE FROM counters WHERE counters.n > limit;
                    DROP WHERE len(input.payload) == 0;
                    SELECT * FROM input;
                }
            }
        "#;
        let e = parse_element(src).unwrap();
        let body = &e.on_request.as_ref().unwrap().body;
        assert_eq!(body.len(), 5);
        assert!(matches!(&body[0], Stmt::Set { field, .. } if field == "payload"));
        assert!(matches!(&body[1], Stmt::Update(_)));
        assert!(matches!(&body[2], Stmt::Delete(_)));
        assert!(matches!(&body[3], Stmt::Drop(Some(_))));
    }

    #[test]
    fn single_equals_means_equality() {
        let src = "element E() { on request { SELECT * FROM input WHERE input.x = 5; } }";
        let e = parse_element(src).unwrap();
        let body = &e.on_request.as_ref().unwrap().body;
        match &body[0] {
            Stmt::Select(s) => match s.condition.as_ref().unwrap() {
                Expr::Binary { op: BinOp::Eq, .. } => {}
                other => panic!("expected Eq, got {other:?}"),
            },
            _ => unreachable!(),
        }
    }

    #[test]
    fn operator_precedence() {
        let src = "element E() { on request { SELECT * FROM input WHERE input.a + 1 * 2 == 3 AND true OR false; } }";
        let e = parse_element(src).unwrap();
        let body = &e.on_request.as_ref().unwrap().body;
        let Stmt::Select(s) = &body[0] else {
            unreachable!()
        };
        // Expect ((a + (1*2)) == 3 AND true) OR false.
        match s.condition.as_ref().unwrap() {
            Expr::Binary {
                op: BinOp::Or,
                left,
                ..
            } => match left.as_ref() {
                Expr::Binary {
                    op: BinOp::And,
                    left,
                    ..
                } => match left.as_ref() {
                    Expr::Binary {
                        op: BinOp::Eq,
                        left,
                        ..
                    } => match left.as_ref() {
                        Expr::Binary {
                            op: BinOp::Add,
                            right,
                            ..
                        } => {
                            assert!(matches!(
                                right.as_ref(),
                                Expr::Binary { op: BinOp::Mul, .. }
                            ));
                        }
                        other => panic!("expected Add, got {other:?}"),
                    },
                    other => panic!("expected Eq, got {other:?}"),
                },
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn case_expression_parses() {
        let src = r#"
            element E() {
                on request {
                    SET tier = CASE WHEN input.x > 100 THEN 'big' ELSE 'small' END;
                    SELECT * FROM input;
                }
            }
        "#;
        let e = parse_element(src).unwrap();
        let body = &e.on_request.as_ref().unwrap().body;
        let Stmt::Set { value, .. } = &body[0] else {
            unreachable!()
        };
        assert!(matches!(value, Expr::Case { .. }));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_element("element E() { on request { SELECT FROM input; } }").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.message.contains("expected"));
    }

    #[test]
    fn duplicate_handler_rejected() {
        let src = "element E() { on request { SELECT * FROM input; } on request { SELECT * FROM input; } }";
        assert!(parse_element(src).is_err());
    }

    #[test]
    fn init_row_arity_checked() {
        let src = "element E() { state t(a: u64 key, b: u64) init { (1) }; }";
        assert!(parse_element(src).is_err());
    }

    #[test]
    fn program_with_multiple_elements() {
        let src = "element A() { on request { SELECT * FROM input; } } \
                   element B() { on request { DROP; } }";
        let p = parse_program(src).unwrap();
        assert_eq!(p.elements.len(), 2);
        assert_eq!(p.elements[1].name, "B");
    }

    #[test]
    fn trailing_garbage_rejected() {
        let src = "element A() { on request { SELECT * FROM input; } } garbage";
        assert!(parse_program(src).is_err());
    }
}
