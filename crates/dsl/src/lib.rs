//! # adn-dsl — the ADN specification language
//!
//! Paper §5.1: "we draw inspiration from stream processing systems like
//! Dataflow SQL and view each RPC as a tuple with one or more fields.
//! Elements process an incoming stream of tuples, and their processing logic
//! is specified in a SQL-like DSL. Each element can read or write internal
//! states modeled as tables."
//!
//! This crate implements that language:
//!
//! * [`lexer`] — tokenizer with source positions (SQL keywords are
//!   case-insensitive, identifiers are case-sensitive).
//! * [`ast`] — element definitions: parameters, state tables (with optional
//!   initial rows), `on request` / `on response` handlers, SQL-flavoured
//!   statements, and an expression language with UDF calls.
//! * [`parser`] — recursive-descent parser producing the AST.
//! * [`printer`] — canonical pretty-printer (property-tested: printing then
//!   re-parsing is the identity).
//! * [`typecheck`] — resolves field/table/parameter references against an
//!   application's RPC schema and checks expression types.
//! * [`udf`] — signatures (not implementations) of user-defined functions,
//!   the paper's escape hatch for non-relational operations such as
//!   compression and encryption.
//!
//! ## Example
//!
//! The access-control element of the paper's Figure 4:
//!
//! ```text
//! element Acl() {
//!     state ac_tab(username: string key, permission: string);
//!     on request {
//!         SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
//!         WHERE ac_tab.permission == 'W';
//!     }
//! }
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod typecheck;
pub mod udf;

pub use ast::{ElementDef, Program};
pub use diag::{Diagnostic, Severity, Span};
pub use parser::{parse_element, parse_program, ParseError};
pub use typecheck::{check_element, CheckedElement, TypeError};

/// Parses and typechecks a single element against request/response schemas.
///
/// Convenience entry point combining [`parse_element`] and [`check_element`].
pub fn compile_frontend(
    source: &str,
    request: &adn_rpc::RpcSchema,
    response: &adn_rpc::RpcSchema,
) -> Result<CheckedElement, FrontendError> {
    let element = parse_element(source).map_err(FrontendError::Parse)?;
    check_element(&element, request, response).map_err(FrontendError::Type)
}

/// Either phase of frontend failure.
#[derive(Debug)]
pub enum FrontendError {
    /// Lexing/parsing failed.
    Parse(ParseError),
    /// Name resolution or type checking failed.
    Type(TypeError),
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrontendError::Parse(e) => write!(f, "parse error: {e}"),
            FrontendError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl FrontendError {
    /// Converts either phase's failure into a structured [`Diagnostic`].
    pub fn to_diagnostic(&self) -> Diagnostic {
        match self {
            FrontendError::Parse(e) => e.to_diagnostic(),
            FrontendError::Type(e) => e.to_diagnostic(),
        }
    }
}
