//! Name resolution and type checking for ADN elements.
//!
//! An element definition is generic — it mentions `input.<field>` names that
//! only exist once the application's RPC schema is known. Checking binds an
//! element to a concrete request/response schema pair and validates every
//! reference and every expression type. The result, [`CheckedElement`], also
//! records the element's read/write field sets and determinism — the facts
//! the optimizer's reordering and header-minimization passes rely on.

use std::collections::BTreeSet;
use std::fmt;

use adn_rpc::schema::RpcSchema;
use adn_rpc::value::ValueType;

use crate::ast::*;
use crate::diag::{codes, Diagnostic, Span};
use crate::udf::{self, TypePattern};

/// Type/resolution failure with a stable code and, when known, the byte
/// span of the offending statement or declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeError {
    pub message: String,
    /// Stable diagnostic code (see [`crate::diag::codes`]).
    pub code: &'static str,
    /// Span of the enclosing statement or declaration in the DSL source.
    pub span: Option<Span>,
}

impl TypeError {
    pub fn coded(code: &'static str, message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            code,
            span: None,
        }
    }

    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Structured form for rendering and JSON output.
    pub fn to_diagnostic(&self) -> Diagnostic {
        let d = Diagnostic::error(self.code, self.message.clone());
        match self.span {
            Some(span) => d.with_span(span),
            None => d,
        }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TypeError {}

/// Facts derived for one handler (request or response direction).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HandlerFacts {
    /// Input fields the handler reads.
    pub reads: BTreeSet<String>,
    /// Input fields the handler may modify (SET targets, non-identity
    /// projection outputs).
    pub writes: BTreeSet<String>,
    /// Whether the handler reads or writes element state tables.
    pub uses_state: bool,
    /// Whether the handler writes element state tables.
    pub writes_state: bool,
    /// Whether the handler can drop or abort the RPC.
    pub can_drop: bool,
    /// Whether the handler rewrites the message destination (ROUTE).
    pub routes: bool,
    /// Whether every expression is deterministic (no `random()`/`now()`).
    pub deterministic: bool,
    /// Names of UDFs called.
    pub udfs: BTreeSet<String>,
}

/// A typechecked element bound to a request/response schema pair.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckedElement {
    /// The validated definition.
    pub def: ElementDef,
    /// Facts about the request handler (empty defaults if absent).
    pub request_facts: HandlerFacts,
    /// Facts about the response handler (empty defaults if absent).
    pub response_facts: HandlerFacts,
}

impl CheckedElement {
    /// Union of request and response reads.
    pub fn all_reads(&self) -> BTreeSet<String> {
        self.request_facts
            .reads
            .union(&self.response_facts.reads)
            .cloned()
            .collect()
    }

    /// Union of request and response writes.
    pub fn all_writes(&self) -> BTreeSet<String> {
        self.request_facts
            .writes
            .union(&self.response_facts.writes)
            .cloned()
            .collect()
    }

    /// Whether the element is fully deterministic.
    pub fn deterministic(&self) -> bool {
        self.request_facts.deterministic && self.response_facts.deterministic
    }

    /// Whether the element can drop/abort RPCs in either direction.
    pub fn can_drop(&self) -> bool {
        self.request_facts.can_drop || self.response_facts.can_drop
    }
}

/// Typechecks `element` against the application's schemas.
pub fn check_element(
    element: &ElementDef,
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<CheckedElement, TypeError> {
    // Validate state tables: unique names/columns, init row types.
    let mut seen = BTreeSet::new();
    for state in &element.states {
        if !seen.insert(state.name.clone()) {
            return Err(TypeError::coded(
                codes::DUPLICATE_DEF,
                format!("duplicate state table {:?}", state.name),
            )
            .with_span(state.span));
        }
        let mut cols = BTreeSet::new();
        for col in &state.columns {
            if !cols.insert(col.name.clone()) {
                return Err(TypeError::coded(
                    codes::DUPLICATE_DEF,
                    format!("duplicate column {:?} in table {:?}", col.name, state.name),
                )
                .with_span(state.span));
            }
        }
        for (rownum, row) in state.init_rows.iter().enumerate() {
            for (lit, col) in row.iter().zip(&state.columns) {
                let lt = literal_type(lit);
                if !coercible(lt, col.ty) {
                    return Err(TypeError::coded(
                        codes::TYPE_MISMATCH,
                        format!(
                            "init row {rownum} of table {:?}: column {:?} expects {}, got {}",
                            state.name, col.name, col.ty, lt
                        ),
                    )
                    .with_span(state.span));
                }
            }
        }
    }
    // Validate parameter defaults.
    let mut param_names = BTreeSet::new();
    for p in &element.params {
        if !param_names.insert(p.name.clone()) {
            return Err(TypeError::coded(
                codes::DUPLICATE_DEF,
                format!("duplicate parameter {:?}", p.name),
            )
            .with_span(p.span));
        }
        if let Some(default) = &p.default {
            let lt = literal_type(default);
            if !coercible(lt, p.ty) {
                return Err(TypeError::coded(
                    codes::TYPE_MISMATCH,
                    format!(
                        "parameter {:?} default has type {}, expected {}",
                        p.name, lt, p.ty
                    ),
                )
                .with_span(p.span));
            }
        }
    }

    let request_facts = match &element.on_request {
        Some(h) => check_handler(element, h, request)?,
        None => HandlerFacts {
            deterministic: true,
            ..Default::default()
        },
    };
    let response_facts = match &element.on_response {
        Some(h) => check_handler(element, h, response)?,
        None => HandlerFacts {
            deterministic: true,
            ..Default::default()
        },
    };

    Ok(CheckedElement {
        def: element.clone(),
        request_facts,
        response_facts,
    })
}

fn literal_type(lit: &Literal) -> ValueType {
    match lit {
        Literal::Int(_) => ValueType::U64,
        Literal::Float(_) => ValueType::F64,
        Literal::Str(_) => ValueType::Str,
        Literal::Bool(_) => ValueType::Bool,
    }
}

/// Whether a value of type `from` may be used where `to` is expected.
/// Integer literals coerce to any numeric type; f64 accepts any numeric.
fn coercible(from: ValueType, to: ValueType) -> bool {
    if from == to {
        return true;
    }
    matches!(
        (from, to),
        (ValueType::U64, ValueType::I64 | ValueType::F64) | (ValueType::I64, ValueType::F64)
    )
}

/// Whether two types can appear on either side of a comparison.
fn comparable(a: ValueType, b: ValueType) -> bool {
    a == b || (a.is_numeric() && b.is_numeric())
}

struct HandlerChecker<'a> {
    element: &'a ElementDef,
    input: &'a RpcSchema,
    direction: Direction,
    /// Table currently in scope for `table.column` refs, if any.
    scoped_table: Option<&'a StateDef>,
    /// Span of the statement currently being checked.
    span: Option<Span>,
    facts: HandlerFacts,
}

fn check_handler(
    element: &ElementDef,
    handler: &Handler,
    input: &RpcSchema,
) -> Result<HandlerFacts, TypeError> {
    let mut checker = HandlerChecker {
        element,
        input,
        direction: handler.direction,
        scoped_table: None,
        span: None,
        facts: HandlerFacts {
            deterministic: true,
            ..Default::default()
        },
    };
    if handler.body.is_empty() {
        return Err(
            TypeError::coded(codes::INVALID_CONTEXT, "handler body must not be empty")
                .with_span(element.name_span),
        );
    }
    for (i, stmt) in handler.body.iter().enumerate() {
        checker.span = handler.stmt_span(i);
        checker.check_stmt(stmt)?;
    }
    Ok(checker.facts)
}

impl<'a> HandlerChecker<'a> {
    /// Builds a [`TypeError`] carrying the current statement's span.
    fn err(&self, code: &'static str, message: impl Into<String>) -> TypeError {
        let mut e = TypeError::coded(code, message);
        e.span = self.span;
        e
    }

    fn table(&self, name: &str) -> Result<&'a StateDef, TypeError> {
        self.element
            .state(name)
            .ok_or_else(|| self.err(codes::UNKNOWN_NAME, format!("unknown state table {name:?}")))
    }

    fn check_stmt(&mut self, stmt: &Stmt) -> Result<(), TypeError> {
        match stmt {
            Stmt::Select(sel) => self.check_select(sel),
            Stmt::Insert(ins) => {
                let table = self.table(&ins.table)?;
                if ins.values.len() != table.columns.len() {
                    return Err(self.err(
                        codes::ARITY,
                        format!(
                            "INSERT INTO {:?} has {} values, table has {} columns",
                            ins.table,
                            ins.values.len(),
                            table.columns.len()
                        ),
                    ));
                }
                for (expr, col) in ins.values.iter().zip(&table.columns) {
                    let ty = self.check_expr(expr)?;
                    if !coercible(ty, col.ty) {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!(
                                "INSERT INTO {:?}: column {:?} expects {}, got {}",
                                ins.table, col.name, col.ty, ty
                            ),
                        ));
                    }
                }
                self.facts.uses_state = true;
                self.facts.writes_state = true;
                Ok(())
            }
            Stmt::Update(upd) => {
                let table = self.table(&upd.table)?;
                self.scoped_table = Some(table);
                for (col_name, expr) in &upd.assignments {
                    let col = table
                        .columns
                        .iter()
                        .find(|c| &c.name == col_name)
                        .ok_or_else(|| {
                            self.err(
                                codes::UNKNOWN_NAME,
                                format!("UPDATE {:?}: unknown column {:?}", upd.table, col_name),
                            )
                        })?;
                    let ty = self.check_expr(expr)?;
                    if !coercible(ty, col.ty) {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!(
                                "UPDATE {:?}: column {:?} expects {}, got {}",
                                upd.table, col.name, col.ty, ty
                            ),
                        ));
                    }
                }
                if let Some(cond) = &upd.condition {
                    self.expect_bool(cond, "UPDATE WHERE")?;
                }
                self.scoped_table = None;
                self.facts.uses_state = true;
                self.facts.writes_state = true;
                Ok(())
            }
            Stmt::Delete(del) => {
                let table = self.table(&del.table)?;
                self.scoped_table = Some(table);
                if let Some(cond) = &del.condition {
                    self.expect_bool(cond, "DELETE WHERE")?;
                }
                self.scoped_table = None;
                self.facts.uses_state = true;
                self.facts.writes_state = true;
                Ok(())
            }
            Stmt::Drop(cond) => {
                if let Some(cond) = cond {
                    self.expect_bool(cond, "DROP WHERE")?;
                }
                self.facts.can_drop = true;
                Ok(())
            }
            Stmt::Route { key, condition } => {
                if self.direction == Direction::Response {
                    return Err(self.err(
                        codes::INVALID_CONTEXT,
                        "ROUTE is only valid in `on request` handlers (responses return to the caller)",
                    ));
                }
                // Any scalar key works; it is hashed to pick a replica.
                self.check_expr(key)?;
                if let Some(cond) = condition {
                    self.expect_bool(cond, "ROUTE WHERE")?;
                }
                self.facts.routes = true;
                Ok(())
            }
            Stmt::Abort {
                code,
                message,
                condition,
            } => {
                let code_ty = self.check_expr(code)?;
                if !code_ty.is_numeric() {
                    return Err(self.err(
                        codes::TYPE_MISMATCH,
                        format!("ABORT code must be numeric, got {code_ty}"),
                    ));
                }
                if let Some(msg) = message {
                    let msg_ty = self.check_expr(msg)?;
                    if msg_ty != ValueType::Str {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!("ABORT message must be a string, got {msg_ty}"),
                        ));
                    }
                }
                if let Some(cond) = condition {
                    self.expect_bool(cond, "ABORT WHERE")?;
                }
                self.facts.can_drop = true;
                Ok(())
            }
            Stmt::Set {
                field,
                value,
                condition,
            } => {
                let field_ty = self.input.type_of(field).ok_or_else(|| {
                    self.err(
                        codes::UNKNOWN_NAME,
                        format!("SET targets unknown input field {field:?}"),
                    )
                })?;
                let value_ty = self.check_expr(value)?;
                if !coercible(value_ty, field_ty) {
                    return Err(self.err(
                        codes::TYPE_MISMATCH,
                        format!("SET {field:?}: field is {field_ty}, expression is {value_ty}"),
                    ));
                }
                if let Some(cond) = condition {
                    self.expect_bool(cond, "SET WHERE")?;
                }
                self.facts.writes.insert(field.clone());
                Ok(())
            }
        }
    }

    fn check_select(&mut self, sel: &SelectStmt) -> Result<(), TypeError> {
        if let Some(join) = &sel.join {
            let table = self.table(&join.table)?;
            self.scoped_table = Some(table);
            self.expect_bool(&join.on, "JOIN ON")?;
            self.facts.uses_state = true;
            // An inner join can filter the stream out entirely.
            self.facts.can_drop = true;
        }
        if let Some(cond) = &sel.condition {
            self.expect_bool(cond, "SELECT WHERE")?;
            self.facts.can_drop = true;
        }
        if let Some(ea) = &sel.else_abort {
            let code_ty = self.check_expr(&ea.code)?;
            if !code_ty.is_numeric() {
                return Err(self.err(
                    codes::TYPE_MISMATCH,
                    format!("ELSE ABORT code must be numeric, got {code_ty}"),
                ));
            }
            if let Some(msg) = &ea.message {
                let msg_ty = self.check_expr(msg)?;
                if msg_ty != ValueType::Str {
                    return Err(self.err(
                        codes::TYPE_MISMATCH,
                        format!("ELSE ABORT message must be a string, got {msg_ty}"),
                    ));
                }
            }
        }
        match &sel.projection {
            Projection::Star => {}
            Projection::Items(items) => {
                for item in items {
                    let out_name = match (&item.alias, &item.expr) {
                        (Some(alias), _) => alias.clone(),
                        (None, Expr::InputField(name)) => name.clone(),
                        (None, Expr::TableColumn { column, .. }) => column.clone(),
                        (None, _) => {
                            return Err(self.err(
                                codes::INVALID_CONTEXT,
                                "projection expression needs an AS alias naming an input field",
                            ))
                        }
                    };
                    let field_ty = self.input.type_of(&out_name).ok_or_else(|| {
                        self.err(
                            codes::UNKNOWN_NAME,
                            format!(
                            "projection output {out_name:?} is not a field of the message schema"
                        ),
                        )
                    })?;
                    let expr_ty = self.check_expr(&item.expr)?;
                    if !coercible(expr_ty, field_ty) {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!(
                            "projection {out_name:?}: field is {field_ty}, expression is {expr_ty}"
                        ),
                        ));
                    }
                    // Identity projections (`SELECT x` where x stays x) do
                    // not count as writes; anything else does.
                    let identity = matches!(
                        &item.expr,
                        Expr::InputField(n) if *n == out_name
                    );
                    if !identity {
                        self.facts.writes.insert(out_name);
                    }
                }
            }
        }
        self.scoped_table = None;
        Ok(())
    }

    fn expect_bool(&mut self, expr: &Expr, what: &str) -> Result<(), TypeError> {
        let ty = self.check_expr(expr)?;
        if ty != ValueType::Bool {
            return Err(self.err(
                codes::TYPE_MISMATCH,
                format!("{what} condition must be boolean, got {ty}"),
            ));
        }
        Ok(())
    }

    fn check_expr(&mut self, expr: &Expr) -> Result<ValueType, TypeError> {
        match expr {
            Expr::Literal(lit) => Ok(literal_type(lit)),
            Expr::InputField(name) => {
                let ty = self.input.type_of(name).ok_or_else(|| {
                    self.err(codes::UNKNOWN_NAME, format!("unknown input field {name:?}"))
                })?;
                self.facts.reads.insert(name.clone());
                Ok(ty)
            }
            Expr::TableColumn { table, column } => {
                let scoped = self.scoped_table.ok_or_else(|| {
                    self.err(
                        codes::INVALID_CONTEXT,
                        format!(
                            "reference {table}.{column} outside a JOIN/UPDATE/DELETE on that table"
                        ),
                    )
                })?;
                if scoped.name != *table {
                    return Err(self.err(
                        codes::INVALID_CONTEXT,
                        format!(
                            "reference {table}.{column}: only table {:?} is in scope here",
                            scoped.name
                        ),
                    ));
                }
                let col = scoped
                    .columns
                    .iter()
                    .find(|c| c.name == *column)
                    .ok_or_else(|| {
                        self.err(
                            codes::UNKNOWN_NAME,
                            format!("table {table:?} has no column {column:?}"),
                        )
                    })?;
                self.facts.uses_state = true;
                Ok(col.ty)
            }
            Expr::Param(name) => {
                let p = self.element.param(name).ok_or_else(|| {
                    self.err(codes::UNKNOWN_NAME, format!(
                        "unknown name {name:?} (not a parameter; input fields are written input.{name})"
                    ))
                })?;
                Ok(p.ty)
            }
            Expr::Call { function, args } => {
                let sig = udf::lookup(function).ok_or_else(|| {
                    self.err(
                        codes::UNKNOWN_NAME,
                        format!("unknown function {function:?}"),
                    )
                })?;
                if args.len() != sig.params.len() {
                    return Err(self.err(
                        codes::ARITY,
                        format!(
                            "{function} expects {} arguments, got {}",
                            sig.params.len(),
                            args.len()
                        ),
                    ));
                }
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    arg_types.push(self.check_expr(a)?);
                }
                for (i, (pat, ty)) in sig.params.iter().zip(&arg_types).enumerate() {
                    let ok = match pat {
                        TypePattern::SameAsFirst => comparable(arg_types[0], *ty),
                        other => other.matches(*ty),
                    };
                    if !ok {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!("{function}: argument {i} has type {ty}, which does not match"),
                        ));
                    }
                }
                if !sig.deterministic {
                    self.facts.deterministic = false;
                }
                self.facts.udfs.insert(function.clone());
                Ok(match sig.ret {
                    TypePattern::Exact(t) => t,
                    TypePattern::SameAsFirst => arg_types[0],
                    TypePattern::Numeric => ValueType::F64,
                    TypePattern::StrOrBytes => ValueType::Bytes,
                    TypePattern::Any => arg_types.first().copied().unwrap_or(ValueType::U64),
                })
            }
            Expr::Unary { op, operand } => {
                let ty = self.check_expr(operand)?;
                match op {
                    UnOp::Not => {
                        if ty != ValueType::Bool {
                            return Err(self.err(
                                codes::TYPE_MISMATCH,
                                format!("NOT requires bool, got {ty}"),
                            ));
                        }
                        Ok(ValueType::Bool)
                    }
                    UnOp::Neg => {
                        if !ty.is_numeric() {
                            return Err(self.err(
                                codes::TYPE_MISMATCH,
                                format!("negation requires numeric, got {ty}"),
                            ));
                        }
                        // Negating an unsigned value promotes to signed.
                        Ok(if ty == ValueType::U64 {
                            ValueType::I64
                        } else {
                            ty
                        })
                    }
                }
            }
            Expr::Binary { op, left, right } => {
                let lt = self.check_expr(left)?;
                let rt = self.check_expr(right)?;
                if op.is_logical() {
                    if lt != ValueType::Bool || rt != ValueType::Bool {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!("{op:?} requires booleans, got {lt} and {rt}"),
                        ));
                    }
                    return Ok(ValueType::Bool);
                }
                if op.is_comparison() {
                    if !comparable(lt, rt) {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!("cannot compare {lt} with {rt}"),
                        ));
                    }
                    return Ok(ValueType::Bool);
                }
                // Arithmetic.
                if !lt.is_numeric() || !rt.is_numeric() {
                    return Err(self.err(
                        codes::TYPE_MISMATCH,
                        format!("arithmetic requires numeric operands, got {lt} and {rt}"),
                    ));
                }
                Ok(unify_numeric(lt, rt))
            }
            Expr::Case { arms, otherwise } => {
                let mut result: Option<ValueType> = None;
                for (cond, value) in arms {
                    self.expect_bool(cond, "CASE WHEN")?;
                    let vt = self.check_expr(value)?;
                    match result {
                        None => result = Some(vt),
                        Some(prev) if comparable(prev, vt) => {
                            result = Some(unify_if_numeric(prev, vt))
                        }
                        Some(prev) => {
                            return Err(self.err(
                                codes::TYPE_MISMATCH,
                                format!("CASE arms have incompatible types {prev} and {vt}"),
                            ))
                        }
                    }
                }
                let result = result.expect("parser guarantees at least one arm");
                if let Some(e) = otherwise {
                    let et = self.check_expr(e)?;
                    if !comparable(result, et) {
                        return Err(self.err(
                            codes::TYPE_MISMATCH,
                            format!("CASE ELSE has type {et}, arms have {result}"),
                        ));
                    }
                }
                Ok(result)
            }
        }
    }
}

fn unify_numeric(a: ValueType, b: ValueType) -> ValueType {
    use ValueType::*;
    match (a, b) {
        (F64, _) | (_, F64) => F64,
        (I64, _) | (_, I64) => I64,
        _ => U64,
    }
}

fn unify_if_numeric(a: ValueType, b: ValueType) -> ValueType {
    if a.is_numeric() && b.is_numeric() {
        unify_numeric(a, b)
    } else {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_element;
    use adn_rpc::schema::RpcSchema;

    fn schemas() -> (RpcSchema, RpcSchema) {
        let req = RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        (req, resp)
    }

    fn check(src: &str) -> Result<CheckedElement, TypeError> {
        let (req, resp) = schemas();
        check_element(&parse_element(src).unwrap(), &req, &resp)
    }

    #[test]
    fn acl_checks_and_reports_facts() {
        let src = r#"
            element Acl() {
                state ac_tab(username: string key, permission: string);
                on request {
                    SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                    WHERE ac_tab.permission == 'W';
                }
            }
        "#;
        let checked = check(src).unwrap();
        assert!(checked.request_facts.reads.contains("username"));
        assert!(checked.request_facts.writes.is_empty());
        assert!(checked.request_facts.uses_state);
        assert!(!checked.request_facts.writes_state);
        assert!(checked.request_facts.can_drop);
        assert!(checked.deterministic());
    }

    #[test]
    fn fault_injection_is_nondeterministic() {
        let src = r#"
            element Fault(abort_prob: f64 = 0.05) {
                on request {
                    ABORT(3, 'fault injected') WHERE random() < abort_prob;
                    SELECT * FROM input;
                }
            }
        "#;
        let checked = check(src).unwrap();
        assert!(!checked.request_facts.deterministic);
        assert!(checked.request_facts.can_drop);
        assert!(checked.request_facts.udfs.contains("random"));
    }

    #[test]
    fn compression_records_write() {
        let src = r#"
            element Compress() {
                on request {
                    SET payload = compress(input.payload);
                    SELECT * FROM input;
                }
            }
        "#;
        let checked = check(src).unwrap();
        assert!(checked.request_facts.writes.contains("payload"));
        assert!(checked.request_facts.reads.contains("payload"));
        assert!(!checked.request_facts.can_drop);
    }

    #[test]
    fn unknown_field_rejected() {
        let src = "element E() { on request { SELECT * FROM input WHERE input.nope == 1; } }";
        let err = check(src).unwrap_err();
        assert!(err.message.contains("nope"));
    }

    #[test]
    fn unknown_table_rejected() {
        let src = "element E() { on request { SELECT * FROM input JOIN ghost ON true; } }";
        assert!(check(src).is_err());
    }

    #[test]
    fn table_column_outside_scope_rejected() {
        let src = r#"
            element E() {
                state t(a: u64 key, b: u64);
                on request { SELECT * FROM input WHERE t.a == 1; }
            }
        "#;
        let err = check(src).unwrap_err();
        assert!(err.message.contains("outside"));
    }

    #[test]
    fn type_mismatch_in_set_rejected() {
        let src = "element E() { on request { SET username = 42; SELECT * FROM input; } }";
        let err = check(src).unwrap_err();
        assert!(err.message.contains("username"));
    }

    #[test]
    fn comparison_type_mismatch_rejected() {
        let src = "element E() { on request { SELECT * FROM input WHERE input.username == 5; } }";
        assert!(check(src).is_err());
    }

    #[test]
    fn where_must_be_boolean() {
        let src = "element E() { on request { SELECT * FROM input WHERE input.object_id; } }";
        let err = check(src).unwrap_err();
        assert!(err.message.contains("boolean"));
    }

    #[test]
    fn udf_arity_checked() {
        let src = "element E() { on request { SET payload = compress(); SELECT * FROM input; } }";
        assert!(check(src).is_err());
    }

    #[test]
    fn projection_alias_must_name_schema_field() {
        let src =
            "element E() { on request { SELECT hash(input.username) AS mystery FROM input; } }";
        let err = check(src).unwrap_err();
        assert!(err.message.contains("mystery"));
    }

    #[test]
    fn projection_rewrite_counts_as_write() {
        let src =
            "element E() { on request { SELECT hash(input.username) AS object_id FROM input; } }";
        let checked = check(src).unwrap();
        assert!(checked.request_facts.writes.contains("object_id"));
    }

    #[test]
    fn response_handler_checked_against_response_schema() {
        // `username` exists only in the request schema.
        let src =
            "element E() { on response { SELECT * FROM input WHERE input.username == 'x'; } }";
        assert!(check(src).is_err());
        let src = "element E() { on response { SELECT * FROM input WHERE input.ok; } }";
        assert!(check(src).is_ok());
    }

    #[test]
    fn duplicate_state_rejected() {
        let src = r#"
            element E() {
                state t(a: u64 key);
                state t(b: u64 key);
                on request { SELECT * FROM input; }
            }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn init_row_type_mismatch_rejected() {
        let src = r#"
            element E() {
                state t(a: u64 key, b: string) init { (1, 2) };
                on request { SELECT * FROM input; }
            }
        "#;
        assert!(check(src).is_err());
    }

    #[test]
    fn int_literal_coerces_to_float_param() {
        let src = "element E(p: f64 = 1) { on request { DROP WHERE random() < p; SELECT * FROM input; } }";
        assert!(check(src).is_ok());
    }

    #[test]
    fn case_arm_types_must_agree() {
        let src = "element E() { on request { SET object_id = CASE WHEN true THEN 1 ELSE 'x' END; SELECT * FROM input; } }";
        assert!(check(src).is_err());
    }

    #[test]
    fn empty_handler_rejected() {
        let src = "element E() { on request { } }";
        assert!(check(src).is_err());
    }
}
