//! Property tests for the baseline mesh's protocol stack: every layer must
//! roundtrip arbitrary inputs and reject garbage without panicking — the
//! same guarantees the ADN codecs carry, so neither side of the comparison
//! is cutting corners.

use std::sync::Arc;

use adn_mesh::hpack::{self, HpackContext};
use adn_mesh::{grpc, http2, pb};
use adn_rpc::message::RpcMessage;
use adn_rpc::schema::{MethodDef, RpcSchema, ServiceSchema};
use adn_rpc::value::{Value, ValueType};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<u64>().prop_map(Value::U64),
        any::<i64>().prop_map(Value::I64),
        any::<f64>().prop_map(Value::F64),
        any::<bool>().prop_map(Value::Bool),
        "[a-zA-Z0-9 ]{0,24}".prop_map(Value::Str),
        proptest::collection::vec(any::<u8>(), 0..128).prop_map(Value::Bytes),
    ]
}

fn schema_for(values: &[Value]) -> RpcSchema {
    let mut b = RpcSchema::builder();
    for (i, v) in values.iter().enumerate() {
        b = b.field(format!("f{i}"), v.value_type());
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn protobuf_schema_roundtrip(values in proptest::collection::vec(arb_value(), 0..10)) {
        let schema = schema_for(&values);
        let bytes = pb::encode_to_vec(&values);
        let back = pb::decode_with_schema(&bytes, &schema).unwrap();
        prop_assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            match (a, b) {
                (Value::F64(x), Value::F64(y)) => prop_assert_eq!(x.to_bits(), y.to_bits()),
                _ => prop_assert_eq!(a, b),
            }
        }
    }

    #[test]
    fn protobuf_dynamic_reencode_is_identity(values in proptest::collection::vec(arb_value(), 0..10)) {
        let bytes = pb::encode_to_vec(&values);
        let dynamic = pb::decode_dynamic(&bytes).unwrap();
        let mut enc = adn_wire::codec::Encoder::new();
        pb::encode_dynamic(&dynamic, &mut enc);
        prop_assert_eq!(enc.into_bytes(), bytes);
    }

    #[test]
    fn protobuf_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = pb::decode_dynamic(&bytes);
    }

    #[test]
    fn hpack_roundtrips_arbitrary_headers(
        headers in proptest::collection::vec(
            ("[a-z][a-z0-9-]{0,16}", "[ -~]{0,32}"),
            0..12,
        )
    ) {
        let headers: Vec<(String, String)> = headers;
        let mut enc_ctx = HpackContext::new();
        let mut dec_ctx = HpackContext::new();
        // Two consecutive blocks through the same contexts exercise the
        // dynamic table interplay.
        for _ in 0..2 {
            let block = hpack::encode_headers(&mut enc_ctx, &headers);
            let back = hpack::decode_headers(&mut dec_ctx, &block).unwrap();
            prop_assert_eq!(&back, &headers);
        }
    }

    #[test]
    fn hpack_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let mut ctx = HpackContext::new();
        let _ = hpack::decode_headers(&mut ctx, &bytes);
    }

    #[test]
    fn http2_message_roundtrip(
        header_block in proptest::collection::vec(any::<u8>(), 0..256),
        data in proptest::collection::vec(any::<u8>(), 0..40_000),
        stream_id in 1u32..1000,
    ) {
        let mut out = Vec::new();
        http2::encode_message(stream_id, &header_block, &data, &mut out).unwrap();
        let msg = http2::decode_message(&out).unwrap();
        prop_assert_eq!(msg.stream_id, stream_id);
        prop_assert_eq!(msg.header_block, header_block);
        prop_assert_eq!(msg.data, data);
    }

    #[test]
    fn http2_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = http2::decode_message(&bytes);
        let _ = http2::decode_frame(&bytes);
    }

    #[test]
    fn grpc_request_roundtrips(
        oid in any::<u64>(),
        user in "[a-zA-Z0-9]{0,16}",
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        call_id in any::<u64>(),
        src in any::<u64>(),
        dst in any::<u64>(),
    ) {
        let request = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder().field("ok", ValueType::Bool).build().unwrap(),
        );
        let service = Arc::new(
            ServiceSchema::new(
                "svc.T",
                vec![MethodDef {
                    id: 1,
                    name: "M".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        );
        let m = service.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", oid)
            .with("username", user.as_str())
            .with("payload", payload);
        msg.call_id = call_id;
        msg.src = src;
        msg.dst = dst;

        let mut tx = HpackContext::new();
        let mut rx = HpackContext::new();
        let bytes = grpc::encode_request(&mut tx, &msg, &service.name, "M").unwrap();
        let back = grpc::decode_message(&mut rx, &bytes, &service).unwrap();
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn grpc_decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let request = Arc::new(RpcSchema::builder().field("x", ValueType::U64).build().unwrap());
        let response = request.clone();
        let service = Arc::new(
            ServiceSchema::new(
                "s",
                vec![MethodDef {
                    id: 1,
                    name: "m".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        );
        let mut ctx = HpackContext::new();
        let _ = grpc::decode_message(&mut ctx, &bytes, &service);
    }
}
