//! Protobuf-lite: the self-describing tag/varint wire format.
//!
//! Field numbers come from schema position (index + 1); wire types follow
//! protobuf's: 0 = varint, 1 = 64-bit, 2 = length-delimited. Strings,
//! bytes, and floats use the standard representations. Booleans are
//! varints.
//!
//! The decoder comes in two flavours, matching the two consumers:
//! * [`decode_with_schema`] — the application side, which knows the schema.
//! * [`decode_dynamic`] — the proxy side, which does not: it recovers a
//!   generic `(field number, value)` list the way Envoy's generic filters
//!   see payloads. This "parse without the schema" step is precisely the
//!   overhead paper §6 attributes to the mesh.

use adn_rpc::schema::RpcSchema;
use adn_rpc::value::{Value, ValueType};
use adn_wire::codec::{Decoder, Encoder, WireError, WireResult};

/// Wire types.
const WT_VARINT: u64 = 0;
const WT_I64: u64 = 1;
const WT_LEN: u64 = 2;

/// A dynamically decoded field value (the proxy's view).
#[derive(Debug, Clone, PartialEq)]
pub enum PbValue {
    Varint(u64),
    Fixed64(u64),
    Bytes(Vec<u8>),
}

impl PbValue {
    /// Interprets length-delimited bytes as UTF-8, if possible.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PbValue::Bytes(b) => std::str::from_utf8(b).ok(),
            _ => None,
        }
    }
}

/// A dynamically decoded message: (field number, value) in wire order.
pub type DynMessage = Vec<(u64, PbValue)>;

/// Encodes schema-ordered values as protobuf bytes.
pub fn encode(values: &[Value], enc: &mut Encoder) {
    for (i, v) in values.iter().enumerate() {
        let field_no = (i + 1) as u64;
        match v {
            Value::U64(x) => {
                enc.put_varint(field_no << 3 | WT_VARINT);
                enc.put_varint(*x);
            }
            Value::I64(x) => {
                enc.put_varint(field_no << 3 | WT_VARINT);
                // Protobuf sint64 zig-zag.
                enc.put_varint_signed(*x);
            }
            Value::Bool(b) => {
                enc.put_varint(field_no << 3 | WT_VARINT);
                enc.put_varint(*b as u64);
            }
            Value::F64(x) => {
                enc.put_varint(field_no << 3 | WT_I64);
                enc.put_u64(x.to_bits());
            }
            Value::Str(s) => {
                enc.put_varint(field_no << 3 | WT_LEN);
                enc.put_str(s);
            }
            Value::Bytes(b) => {
                enc.put_varint(field_no << 3 | WT_LEN);
                enc.put_bytes(b);
            }
        }
    }
}

/// Encodes to a fresh buffer.
pub fn encode_to_vec(values: &[Value]) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(values.iter().map(Value::size_hint).sum::<usize>() + 16);
    encode(values, &mut enc);
    enc.into_bytes()
}

/// Dynamic decode: no schema, self-description only (the proxy path).
pub fn decode_dynamic(bytes: &[u8]) -> WireResult<DynMessage> {
    let mut dec = Decoder::new(bytes);
    let mut out = Vec::new();
    while !dec.is_exhausted() {
        let tag = dec.get_varint()?;
        let field_no = tag >> 3;
        if field_no == 0 {
            return Err(WireError::InvalidTag {
                tag,
                context: "protobuf field number 0",
            });
        }
        let value = match tag & 0x7 {
            WT_VARINT => PbValue::Varint(dec.get_varint()?),
            WT_I64 => PbValue::Fixed64(dec.get_u64()?),
            WT_LEN => PbValue::Bytes(dec.get_bytes()?.to_vec()),
            wt => {
                return Err(WireError::InvalidTag {
                    tag: wt,
                    context: "protobuf wire type",
                })
            }
        };
        out.push((field_no, value));
    }
    Ok(out)
}

/// Re-encodes a dynamic message (what the proxy does after filtering).
pub fn encode_dynamic(msg: &DynMessage, enc: &mut Encoder) {
    for (field_no, value) in msg {
        match value {
            PbValue::Varint(v) => {
                enc.put_varint(field_no << 3 | WT_VARINT);
                enc.put_varint(*v);
            }
            PbValue::Fixed64(v) => {
                enc.put_varint(field_no << 3 | WT_I64);
                enc.put_u64(*v);
            }
            PbValue::Bytes(b) => {
                enc.put_varint(field_no << 3 | WT_LEN);
                enc.put_bytes(b);
            }
        }
    }
}

/// Schema-driven decode (the application path). Unknown fields error;
/// missing fields default.
pub fn decode_with_schema(bytes: &[u8], schema: &RpcSchema) -> WireResult<Vec<Value>> {
    let dynamic = decode_dynamic(bytes)?;
    let mut values = schema.default_values();
    for (field_no, pv) in dynamic {
        let idx = (field_no - 1) as usize;
        let Some(field) = schema.fields().get(idx) else {
            return Err(WireError::InvalidTag {
                tag: field_no,
                context: "unknown protobuf field",
            });
        };
        let v = match (field.ty, pv) {
            (ValueType::U64, PbValue::Varint(x)) => Value::U64(x),
            (ValueType::I64, PbValue::Varint(x)) => Value::I64(adn_wire::varint::zigzag_decode(x)),
            (ValueType::Bool, PbValue::Varint(x)) => Value::Bool(x != 0),
            (ValueType::F64, PbValue::Fixed64(x)) => Value::F64(f64::from_bits(x)),
            (ValueType::Str, PbValue::Bytes(b)) => {
                Value::Str(String::from_utf8(b).map_err(|_| WireError::InvalidUtf8)?)
            }
            (ValueType::Bytes, PbValue::Bytes(b)) => Value::Bytes(b),
            _ => {
                return Err(WireError::Malformed(
                    "wire type does not match schema field",
                ))
            }
        };
        values[idx] = v;
    }
    Ok(values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> RpcSchema {
        RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("username", ValueType::Str)
            .field("payload", ValueType::Bytes)
            .field("score", ValueType::F64)
            .field("delta", ValueType::I64)
            .field("flag", ValueType::Bool)
            .build()
            .unwrap()
    }

    fn values() -> Vec<Value> {
        vec![
            Value::U64(42),
            Value::Str("alice".into()),
            Value::Bytes(vec![1, 2, 3]),
            Value::F64(2.5),
            Value::I64(-7),
            Value::Bool(true),
        ]
    }

    #[test]
    fn schema_roundtrip() {
        let bytes = encode_to_vec(&values());
        let back = decode_with_schema(&bytes, &schema()).unwrap();
        assert_eq!(back, values());
    }

    #[test]
    fn dynamic_roundtrip() {
        let bytes = encode_to_vec(&values());
        let dynamic = decode_dynamic(&bytes).unwrap();
        assert_eq!(dynamic.len(), 6);
        assert_eq!(dynamic[0], (1, PbValue::Varint(42)));
        assert_eq!(dynamic[1].1.as_str(), Some("alice"));
        let mut enc = Encoder::new();
        encode_dynamic(&dynamic, &mut enc);
        assert_eq!(enc.into_bytes(), bytes, "re-encode must be byte-identical");
    }

    #[test]
    fn dynamic_decode_never_panics_on_garbage() {
        for seed in 0..200u8 {
            let bytes: Vec<u8> = (0..seed).map(|i| i.wrapping_mul(seed)).collect();
            let _ = decode_dynamic(&bytes);
        }
    }

    #[test]
    fn unknown_field_rejected_by_schema_decode() {
        let mut enc = Encoder::new();
        enc.put_varint(99 << 3 | WT_VARINT);
        enc.put_varint(1);
        assert!(decode_with_schema(&enc.into_bytes(), &schema()).is_err());
    }

    #[test]
    fn wire_type_mismatch_rejected() {
        let mut enc = Encoder::new();
        // Field 1 is u64 (varint) but sent length-delimited.
        enc.put_varint(1 << 3 | WT_LEN);
        enc.put_bytes(b"xx");
        assert!(decode_with_schema(&enc.into_bytes(), &schema()).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode_to_vec(&values());
        for cut in 1..bytes.len() {
            // Either a clean error or a shorter valid prefix — never panic.
            let _ = decode_dynamic(&bytes[..cut]);
        }
    }
}
