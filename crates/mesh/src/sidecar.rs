//! The sidecar proxy: parse everything, filter, re-encode everything.
//!
//! One sidecar per host (paper Figure 1). Per message it performs exactly
//! the work the paper attributes to the mesh:
//!
//! 1. HTTP/2 frame parse, 2. HPACK header decode, 3. gRPC unframe,
//! 4. **dynamic** protobuf decode (a proxy doesn't link the app schema),
//! 5. the generic filter chain, 6. protobuf re-encode, 7. gRPC re-frame,
//! 8. HPACK re-encode toward the next hop, 9. HTTP/2 re-frame.
//!
//! Responses take the same 9 steps back through the NAT flow table.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::Receiver;

use adn_rpc::transport::{EndpointAddr, Frame, Link};
use adn_wire::codec::WireResult;

use crate::filters::{FilterVerdict, MeshFilter};
use crate::hpack::{self, HpackContext};
use crate::http2;
use crate::pb;

/// Sidecar counters.
#[derive(Debug, Default)]
pub struct SidecarStats {
    pub requests: AtomicU64,
    pub responses: AtomicU64,
    pub denied: AtomicU64,
    pub parse_errors: AtomicU64,
}

/// Where the sidecar sends requests after filtering.
#[derive(Debug, Clone, Copy)]
pub enum Upstream {
    /// Forward to the destination named in the message's `x-dst` header.
    Dst,
    /// Forward to a fixed endpoint (the peer sidecar).
    Fixed(EndpointAddr),
}

/// Configuration for [`spawn_sidecar`].
pub struct SidecarConfig {
    /// The sidecar's flat address (iptables-style interception means the
    /// app's traffic is addressed here).
    pub addr: EndpointAddr,
    /// Filter chain.
    pub filters: Vec<Box<dyn MeshFilter>>,
    /// Next hop for requests.
    pub upstream: Upstream,
}

/// Handle to a running sidecar.
pub struct SidecarHandle {
    addr: EndpointAddr,
    stop: Arc<std::sync::atomic::AtomicBool>,
    stats: Arc<SidecarStats>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl SidecarHandle {
    pub fn addr(&self) -> EndpointAddr {
        self.addr
    }

    pub fn requests(&self) -> u64 {
        self.stats.requests.load(Ordering::Relaxed)
    }

    pub fn responses(&self) -> u64 {
        self.stats.responses.load(Ordering::Relaxed)
    }

    pub fn denied(&self) -> u64 {
        self.stats.denied.load(Ordering::Relaxed)
    }

    pub fn parse_errors(&self) -> u64 {
        self.stats.parse_errors.load(Ordering::Relaxed)
    }

    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for SidecarHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn set_header(headers: &mut Vec<(String, String)>, name: &str, value: String) {
    match headers.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value,
        None => headers.push((name.to_owned(), value)),
    }
}

/// Spawns the sidecar thread.
pub fn spawn_sidecar(
    config: SidecarConfig,
    link: Arc<dyn Link>,
    frames: Receiver<Frame>,
) -> SidecarHandle {
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let stats = Arc::new(SidecarStats::default());
    let addr = config.addr;

    let t_stop = stop.clone();
    let t_stats = stats.clone();
    let join = std::thread::Builder::new()
        .name(format!("mesh-sidecar-{addr}"))
        .spawn(move || {
            let SidecarConfig {
                addr,
                mut filters,
                upstream,
            } = config;
            // Per-peer HPACK contexts (one "connection" per peer pair).
            let mut rx_ctx: HashMap<EndpointAddr, HpackContext> = HashMap::new();
            let mut tx_ctx: HashMap<EndpointAddr, HpackContext> = HashMap::new();
            // NAT flow table: call id → original requester.
            let mut flows: HashMap<u64, EndpointAddr> = HashMap::new();

            while !t_stop.load(Ordering::Relaxed) {
                let frame = match frames.recv_timeout(Duration::from_millis(20)) {
                    Ok(f) => f,
                    Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                    Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
                };
                let outcome = process_frame(
                    addr,
                    &frame,
                    &mut filters,
                    rx_ctx.entry(frame.src).or_default(),
                    &mut tx_ctx,
                    &mut flows,
                    upstream,
                    &t_stats,
                );
                match outcome {
                    Ok(Some((dst, payload))) => {
                        let _ = link.send(Frame {
                            src: addr,
                            dst,
                            payload,
                        });
                    }
                    Ok(None) => {}
                    Err(_) => {
                        t_stats.parse_errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
        .expect("spawn sidecar thread");

    SidecarHandle {
        addr,
        stop,
        stats,
        join: Some(join),
    }
}

/// The full per-message data path. Returns the forwarded (dst, bytes), or
/// None when the message was consumed (denied request → synthesized
/// response is returned instead through the same path).
#[allow(clippy::too_many_arguments)]
fn process_frame(
    addr: EndpointAddr,
    frame: &Frame,
    filters: &mut [Box<dyn MeshFilter>],
    rx_ctx: &mut HpackContext,
    tx_ctx: &mut HashMap<EndpointAddr, HpackContext>,
    flows: &mut HashMap<u64, EndpointAddr>,
    upstream: Upstream,
    stats: &SidecarStats,
) -> WireResult<Option<(EndpointAddr, Vec<u8>)>> {
    // 1. HTTP/2 parse.
    let h2 = http2::decode_message(&frame.payload)?;
    // 2. HPACK decode.
    let mut headers = hpack::decode_headers(rx_ctx, &h2.header_block)?;
    let is_response = header(&headers, ":status").is_some();
    // 3-4. gRPC unframe + dynamic protobuf decode (empty bodies allowed on
    // error responses).
    let mut body: pb::DynMessage = if h2.data.is_empty() {
        Vec::new()
    } else {
        pb::decode_dynamic(crate::grpc::grpc_unframe(&h2.data)?)?
    };

    let call_id: u64 = header(&headers, "x-call-id")
        .and_then(|v| v.parse().ok())
        .ok_or(adn_wire::codec::WireError::Malformed("missing x-call-id"))?;

    // 5. Filter chain.
    let mut verdict = FilterVerdict::Continue;
    for f in filters.iter_mut() {
        verdict = if is_response {
            f.on_response(&mut headers, &mut body)
        } else {
            f.on_request(&mut headers, &mut body)
        };
        if verdict != FilterVerdict::Continue {
            break;
        }
    }

    if is_response {
        stats.responses.fetch_add(1, Ordering::Relaxed);
    } else {
        stats.requests.fetch_add(1, Ordering::Relaxed);
    }

    match verdict {
        FilterVerdict::Continue => {
            let (dst, out_headers) = if is_response {
                // NAT out: restore the original requester.
                let dst = flows
                    .remove(&call_id)
                    .or_else(|| header(&headers, "x-dst").and_then(|v| v.parse().ok()))
                    .ok_or(adn_wire::codec::WireError::Malformed("unknown flow"))?;
                set_header(&mut headers, "x-dst", dst.to_string());
                (dst, headers)
            } else {
                // NAT in.
                let orig_src: u64 = header(&headers, "x-src")
                    .and_then(|v| v.parse().ok())
                    .ok_or(adn_wire::codec::WireError::Malformed("missing x-src"))?;
                flows.insert(call_id, orig_src);
                set_header(&mut headers, "x-src", addr.to_string());
                let dst = match upstream {
                    Upstream::Fixed(a) => a,
                    Upstream::Dst => header(&headers, "x-dst")
                        .and_then(|v| v.parse().ok())
                        .ok_or(adn_wire::codec::WireError::Malformed("missing x-dst"))?,
                };
                (dst, headers)
            };
            // 6-9. Re-encode everything toward the next hop.
            let header_block = hpack::encode_headers(tx_ctx.entry(dst).or_default(), &out_headers);
            let data = if body.is_empty() && h2.data.is_empty() {
                Vec::new()
            } else {
                let mut enc = adn_wire::codec::Encoder::new();
                pb::encode_dynamic(&body, &mut enc);
                crate::grpc::grpc_frame(&enc.into_bytes())
            };
            let mut out = Vec::with_capacity(header_block.len() + data.len() + 32);
            http2::encode_message(h2.stream_id, &header_block, &data, &mut out)?;
            Ok(Some((dst, out)))
        }
        FilterVerdict::Deny {
            grpc_status,
            message,
        } => {
            stats.denied.fetch_add(1, Ordering::Relaxed);
            if is_response {
                // Denied response: drop.
                return Ok(None);
            }
            // Synthesize an error response to the caller, Envoy-style.
            let caller: u64 = header(&headers, "x-src")
                .and_then(|v| v.parse().ok())
                .ok_or(adn_wire::codec::WireError::Malformed("missing x-src"))?;
            let resp_headers: Vec<(String, String)> = vec![
                (":status".into(), "200".into()),
                ("content-type".into(), "application/grpc".into()),
                ("x-call-id".into(), call_id.to_string()),
                (
                    "x-method-id".into(),
                    header(&headers, "x-method-id").unwrap_or("0").to_owned(),
                ),
                ("x-src".into(), addr.to_string()),
                ("x-dst".into(), caller.to_string()),
                ("grpc-status".into(), grpc_status.to_string()),
                ("grpc-message".into(), message),
            ];
            let header_block =
                hpack::encode_headers(tx_ctx.entry(caller).or_default(), &resp_headers);
            let mut out = Vec::with_capacity(header_block.len() + 16);
            http2::encode_message(h2.stream_id, &header_block, &[], &mut out)?;
            Ok(Some((caller, out)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{AccessLogFilter, AclFilter, FaultFilter};

    // The sidecar's end-to-end behaviour is exercised through `app`'s
    // tests (client → sidecar → sidecar → server); here we check the
    // handle mechanics and filter wiring compile-level contracts.

    #[test]
    fn sidecar_starts_and_stops() {
        let net = adn_rpc::transport::InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let frames = net.attach(9);
        let handle = spawn_sidecar(
            SidecarConfig {
                addr: 9,
                filters: vec![
                    Box::new(AccessLogFilter::new()),
                    Box::new(AclFilter::with_default_table(2)),
                    Box::new(FaultFilter::new(0.0, 1)),
                ],
                upstream: Upstream::Dst,
            },
            link,
            frames,
        );
        assert_eq!(handle.addr(), 9);
        assert_eq!(handle.requests(), 0);
        handle.stop();
    }

    #[test]
    fn garbage_frames_count_as_parse_errors() {
        let net = adn_rpc::transport::InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let frames = net.attach(9);
        let handle = spawn_sidecar(
            SidecarConfig {
                addr: 9,
                filters: vec![],
                upstream: Upstream::Dst,
            },
            link.clone(),
            frames,
        );
        link.send(Frame {
            src: 1,
            dst: 9,
            payload: b"not http2".to_vec(),
        })
        .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(handle.parse_errors(), 1);
    }
}
