//! HPACK-lite header compression (RFC 7541 shape, no Huffman).
//!
//! Implements the pieces that cost CPU on every message: the static table,
//! a bounded dynamic table with eviction, prefix-coded integers, and
//! literal string fields. Every HEADERS frame the mesh path carries is
//! encoded and decoded through this.

use adn_wire::codec::{WireError, WireResult};

/// Static table entries (a representative subset of RFC 7541 Appendix A).
pub const STATIC_TABLE: &[(&str, &str)] = &[
    (":authority", ""),
    (":method", "GET"),
    (":method", "POST"),
    (":path", "/"),
    (":scheme", "http"),
    (":scheme", "https"),
    (":status", "200"),
    (":status", "404"),
    (":status", "500"),
    ("accept-encoding", "gzip, deflate"),
    ("content-type", ""),
    ("user-agent", ""),
    ("grpc-status", ""),
    ("grpc-message", ""),
    ("te", "trailers"),
];

/// Maximum dynamic-table entries retained.
const DYN_TABLE_MAX: usize = 64;

/// Shared encoder/decoder state: the dynamic table.
#[derive(Debug, Default, Clone)]
pub struct HpackContext {
    /// Most recent first (index 0 = newest), as RFC 7541.
    dynamic: Vec<(String, String)>,
}

impl HpackContext {
    /// Fresh context (per connection, as in HTTP/2).
    pub fn new() -> Self {
        Self::default()
    }

    fn lookup(&self, name: &str, value: &str) -> Option<usize> {
        // Full (name, value) match: static table first, then dynamic.
        if let Some(i) = STATIC_TABLE
            .iter()
            .position(|(n, v)| *n == name && *v == value)
        {
            return Some(i + 1);
        }
        self.dynamic
            .iter()
            .position(|(n, v)| n == name && v == value)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    fn lookup_name(&self, name: &str) -> Option<usize> {
        if let Some(i) = STATIC_TABLE.iter().position(|(n, _)| *n == name) {
            return Some(i + 1);
        }
        self.dynamic
            .iter()
            .position(|(n, _)| n == name)
            .map(|i| STATIC_TABLE.len() + 1 + i)
    }

    fn get(&self, index: usize) -> WireResult<(String, String)> {
        if index == 0 {
            return Err(WireError::InvalidTag {
                tag: 0,
                context: "hpack index 0",
            });
        }
        if index <= STATIC_TABLE.len() {
            let (n, v) = STATIC_TABLE[index - 1];
            return Ok((n.to_owned(), v.to_owned()));
        }
        self.dynamic
            .get(index - STATIC_TABLE.len() - 1)
            .cloned()
            .ok_or(WireError::InvalidTag {
                tag: index as u64,
                context: "hpack dynamic index",
            })
    }

    fn insert(&mut self, name: String, value: String) {
        self.dynamic.insert(0, (name, value));
        if self.dynamic.len() > DYN_TABLE_MAX {
            self.dynamic.pop();
        }
    }

    /// Dynamic-table size (tests).
    pub fn dynamic_len(&self) -> usize {
        self.dynamic.len()
    }
}

/// Prefix-coded integer (RFC 7541 §5.1).
fn encode_int(out: &mut Vec<u8>, prefix_bits: u8, flags: u8, mut value: usize) {
    let max_prefix = (1usize << prefix_bits) - 1;
    if value < max_prefix {
        out.push(flags | value as u8);
        return;
    }
    out.push(flags | max_prefix as u8);
    value -= max_prefix;
    while value >= 128 {
        out.push((value % 128 + 128) as u8);
        value /= 128;
    }
    out.push(value as u8);
}

fn decode_int(buf: &[u8], pos: &mut usize, prefix_bits: u8) -> WireResult<usize> {
    let max_prefix = (1usize << prefix_bits) - 1;
    let first = *buf.get(*pos).ok_or(WireError::UnexpectedEof {
        needed: 1,
        context: "hpack integer",
    })?;
    *pos += 1;
    let mut value = (first as usize) & max_prefix;
    if value < max_prefix {
        return Ok(value);
    }
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(WireError::UnexpectedEof {
            needed: 1,
            context: "hpack integer continuation",
        })?;
        *pos += 1;
        if shift > 28 {
            return Err(WireError::VarintOverflow);
        }
        value += ((byte & 0x7f) as usize) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn encode_string(out: &mut Vec<u8>, s: &str) {
    encode_int(out, 7, 0, s.len());
    out.extend_from_slice(s.as_bytes());
}

fn decode_string(buf: &[u8], pos: &mut usize) -> WireResult<String> {
    let first = *buf.get(*pos).ok_or(WireError::UnexpectedEof {
        needed: 1,
        context: "hpack string",
    })?;
    if first & 0x80 != 0 {
        return Err(WireError::Malformed("huffman strings not supported"));
    }
    let len = decode_int(buf, pos, 7)?;
    let end = pos.checked_add(len).ok_or(WireError::LengthOutOfBounds {
        length: len as u64,
        limit: buf.len(),
    })?;
    if end > buf.len() {
        return Err(WireError::LengthOutOfBounds {
            length: len as u64,
            limit: buf.len() - *pos,
        });
    }
    let s = std::str::from_utf8(&buf[*pos..end])
        .map_err(|_| WireError::InvalidUtf8)?
        .to_owned();
    *pos = end;
    Ok(s)
}

/// Encodes a header list, updating the dynamic table.
pub fn encode_headers(ctx: &mut HpackContext, headers: &[(String, String)]) -> Vec<u8> {
    let mut out = Vec::with_capacity(headers.len() * 8);
    for (name, value) in headers {
        if let Some(index) = ctx.lookup(name, value) {
            // Indexed header field: 1xxxxxxx.
            encode_int(&mut out, 7, 0x80, index);
            continue;
        }
        match ctx.lookup_name(name) {
            Some(index) => {
                // Literal with incremental indexing, indexed name: 01xxxxxx.
                encode_int(&mut out, 6, 0x40, index);
                encode_string(&mut out, value);
            }
            None => {
                // Literal with incremental indexing, new name: 01000000.
                encode_int(&mut out, 6, 0x40, 0);
                encode_string(&mut out, name);
                encode_string(&mut out, value);
            }
        }
        ctx.insert(name.clone(), value.clone());
    }
    out
}

/// Decodes a header block, updating the dynamic table.
pub fn decode_headers(ctx: &mut HpackContext, buf: &[u8]) -> WireResult<Vec<(String, String)>> {
    let mut headers = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let first = buf[pos];
        if first & 0x80 != 0 {
            // Indexed.
            let index = decode_int(buf, &mut pos, 7)?;
            headers.push(ctx.get(index)?);
        } else if first & 0x40 != 0 {
            // Literal with incremental indexing.
            let index = decode_int(buf, &mut pos, 6)?;
            let name = if index == 0 {
                decode_string(buf, &mut pos)?
            } else {
                ctx.get(index)?.0
            };
            let value = decode_string(buf, &mut pos)?;
            ctx.insert(name.clone(), value.clone());
            headers.push((name, value));
        } else {
            return Err(WireError::InvalidTag {
                tag: first as u64,
                context: "hpack representation",
            });
        }
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn roundtrip_with_shared_context() {
        let mut enc_ctx = HpackContext::new();
        let mut dec_ctx = HpackContext::new();
        let headers = h(&[
            (":method", "POST"),
            (":path", "/objectstore.ObjectStore/Put"),
            ("content-type", "application/grpc"),
            ("x-call-id", "7"),
        ]);
        let block = encode_headers(&mut enc_ctx, &headers);
        let back = decode_headers(&mut dec_ctx, &block).unwrap();
        assert_eq!(back, headers);
        assert_eq!(enc_ctx.dynamic_len(), dec_ctx.dynamic_len());
    }

    #[test]
    fn repeated_headers_shrink_via_dynamic_table() {
        let mut enc_ctx = HpackContext::new();
        let headers = h(&[
            (":path", "/objectstore.ObjectStore/Put"),
            ("user-agent", "adn-mesh-bench/0.1"),
        ]);
        let first = encode_headers(&mut enc_ctx, &headers);
        let second = encode_headers(&mut enc_ctx, &headers);
        assert!(
            second.len() < first.len() / 2,
            "second block ({}) should be far smaller than first ({})",
            second.len(),
            first.len()
        );
        // And decoding both in order works.
        let mut dec_ctx = HpackContext::new();
        assert_eq!(decode_headers(&mut dec_ctx, &first).unwrap(), headers);
        assert_eq!(decode_headers(&mut dec_ctx, &second).unwrap(), headers);
    }

    #[test]
    fn integers_roundtrip_at_boundaries() {
        for v in [0usize, 1, 30, 31, 32, 127, 128, 16_000, 1_000_000] {
            let mut out = Vec::new();
            encode_int(&mut out, 5, 0, v);
            let mut pos = 0;
            assert_eq!(decode_int(&out, &mut pos, 5).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn decode_rejects_garbage_without_panicking() {
        let mut ctx = HpackContext::new();
        for seed in 0..200u8 {
            let bytes: Vec<u8> = (0..seed)
                .map(|i| i.wrapping_mul(31).wrapping_add(seed))
                .collect();
            let _ = decode_headers(&mut ctx, &bytes);
        }
    }

    #[test]
    fn bad_index_is_an_error() {
        let mut ctx = HpackContext::new();
        // Indexed header 127 + continuation to a huge index.
        let block = vec![0xFF, 0xFF, 0x7F];
        assert!(decode_headers(&mut ctx, &block).is_err());
    }

    #[test]
    fn dynamic_table_is_bounded() {
        let mut ctx = HpackContext::new();
        for i in 0..200 {
            let headers = h(&[(&format!("x-h{i}"), "v")]);
            encode_headers(&mut ctx, &headers);
        }
        assert!(ctx.dynamic_len() <= DYN_TABLE_MAX);
    }
}
