//! # adn-mesh — the baseline: a service mesh built from general-purpose
//! protocol layers
//!
//! This crate rebuilds the data path the paper's Figure 1 describes and its
//! evaluation compares against (gRPC + Envoy v1.20): the application
//! marshals every RPC into protobuf, wraps it in gRPC message frames, wraps
//! those in HTTP/2 frames with HPACK-coded headers, and a sidecar proxy at
//! *each* host intercepts the byte stream, parses all of it back, runs
//! generic filters, re-encodes all of it, and forwards.
//!
//! Layer by layer (all real computation, no sleeps or synthetic delays —
//! the overhead measured in the benchmarks is work actually done):
//!
//! * [`pb`] — protobuf-lite: self-describing tag/varint wire format. The
//!   sidecar decodes it *dynamically* (field number → value), exactly the
//!   way generic proxies must, because they don't link the app's schema.
//! * [`hpack`] — HPACK-lite header compression: static + dynamic tables,
//!   integer prefix coding, literal strings.
//! * [`http2`] — HTTP/2-lite framing: 9-byte frame headers, HEADERS and
//!   DATA frames, stream ids.
//! * [`grpc`] — the gRPC conventions: pseudo-headers (`:method`, `:path`),
//!   `content-type: application/grpc`, the 5-byte message prefix,
//!   `grpc-status` trailers.
//! * [`filters`] — Envoy-style generic filters for the paper's three
//!   policies (access log with format strings, ACL over dynamic metadata,
//!   percentage fault injection), each with the configuration knobs a
//!   general-purpose filter carries.
//! * [`sidecar`] — the proxy itself: parse → filter → re-encode, with a
//!   NAT flow table for the return path.
//! * [`app`] — the gRPC application endpoints (client and server) that
//!   marshal/unmarshal at the edges.
//!
//! The fabric underneath is the same flat-id [`adn_rpc::transport`] the ADN
//! path uses, so the comparison isolates exactly what the paper blames:
//! layered generality.

pub mod app;
pub mod filters;
pub mod grpc;
pub mod hpack;
pub mod http2;
pub mod pb;
pub mod sidecar;

pub use app::{MeshClient, MeshServer};
pub use sidecar::{spawn_sidecar, SidecarConfig, SidecarHandle};
