//! Envoy-style generic filters.
//!
//! Paper §6: "Envoy's RPC processing is also more expensive because the
//! filters for logging, access control, and fault injection are more
//! general with more knobs than our application needs." These filters are
//! written in that general style: they operate on *decoded header lists and
//! dynamic protobuf values* (not typed fields), carry configuration the
//! benchmark never exercises, and pay string formatting / matching costs a
//! specialized element would not.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::pb::{DynMessage, PbValue};

/// Filter outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterVerdict {
    /// Pass to the next filter.
    Continue,
    /// Reject with a gRPC status.
    Deny { grpc_status: u32, message: String },
}

/// A generic sidecar filter.
pub trait MeshFilter: Send {
    /// Filter name (diagnostics).
    fn name(&self) -> &str;

    /// Processes a request's headers + dynamic body.
    fn on_request(
        &mut self,
        headers: &mut Vec<(String, String)>,
        body: &mut DynMessage,
    ) -> FilterVerdict;

    /// Processes a response's headers + dynamic body.
    fn on_response(
        &mut self,
        _headers: &mut Vec<(String, String)>,
        _body: &mut DynMessage,
    ) -> FilterVerdict {
        FilterVerdict::Continue
    }
}

// ---------------------------------------------------------------------------
// Access log filter
// ---------------------------------------------------------------------------

/// Envoy-style access log with a format string. Substitutions:
/// `%PATH%`, `%METHOD%`, `%HEADER(name)%`, `%FIELD(n)%` (dynamic body
/// field), `%SEQ%`.
pub struct AccessLogFilter {
    format: String,
    seq: u64,
    log: Vec<String>,
    /// Knob the benchmark never uses: sample 1-in-N (1 = log everything).
    pub sample_every: u64,
}

impl AccessLogFilter {
    /// Default format comparable to Envoy's.
    pub fn new() -> Self {
        Self::with_format(
            "[%SEQ%] %METHOD% %PATH% user=%FIELD(2)% object=%FIELD(1)% call=%HEADER(x-call-id)%",
        )
    }

    /// Custom format string.
    pub fn with_format(format: &str) -> Self {
        Self {
            format: format.to_owned(),
            seq: 0,
            log: Vec::new(),
            sample_every: 1,
        }
    }

    /// Captured log lines.
    pub fn lines(&self) -> &[String] {
        &self.log
    }

    fn render(&self, headers: &[(String, String)], body: &DynMessage, direction: &str) -> String {
        let mut out = String::with_capacity(self.format.len() + 32);
        let mut rest = self.format.as_str();
        while let Some(start) = rest.find('%') {
            out.push_str(&rest[..start]);
            let after = &rest[start + 1..];
            let Some(end) = after.find('%') else {
                out.push('%');
                rest = after;
                continue;
            };
            let token = &after[..end];
            rest = &after[end + 1..];
            if token == "PATH" {
                out.push_str(
                    headers
                        .iter()
                        .find(|(n, _)| n == ":path")
                        .map(|(_, v)| v.as_str())
                        .unwrap_or("-"),
                );
            } else if token == "METHOD" {
                out.push_str(direction);
            } else if token == "SEQ" {
                out.push_str(&self.seq.to_string());
            } else if let Some(name) = token
                .strip_prefix("HEADER(")
                .and_then(|t| t.strip_suffix(')'))
            {
                out.push_str(
                    headers
                        .iter()
                        .find(|(n, _)| n == name)
                        .map(|(_, v)| v.as_str())
                        .unwrap_or("-"),
                );
            } else if let Some(num) = token
                .strip_prefix("FIELD(")
                .and_then(|t| t.strip_suffix(')'))
                .and_then(|t| t.parse::<u64>().ok())
            {
                match body.iter().find(|(n, _)| *n == num) {
                    Some((_, PbValue::Varint(v))) => out.push_str(&v.to_string()),
                    Some((_, PbValue::Fixed64(v))) => out.push_str(&v.to_string()),
                    Some((_, PbValue::Bytes(b))) => match std::str::from_utf8(b) {
                        Ok(s) => out.push_str(s),
                        Err(_) => out.push_str(&format!("<{} bytes>", b.len())),
                    },
                    None => out.push('-'),
                }
            } else {
                out.push('%');
                out.push_str(token);
                out.push('%');
            }
        }
        out.push_str(rest);
        out
    }
}

impl Default for AccessLogFilter {
    fn default() -> Self {
        Self::new()
    }
}

impl MeshFilter for AccessLogFilter {
    fn name(&self) -> &str {
        "access_log"
    }

    fn on_request(
        &mut self,
        headers: &mut Vec<(String, String)>,
        body: &mut DynMessage,
    ) -> FilterVerdict {
        self.seq += 1;
        if self.seq.is_multiple_of(self.sample_every) {
            let line = self.render(headers, body, "REQ");
            self.log.push(line);
        }
        FilterVerdict::Continue
    }

    fn on_response(
        &mut self,
        headers: &mut Vec<(String, String)>,
        body: &mut DynMessage,
    ) -> FilterVerdict {
        self.seq += 1;
        if self.seq.is_multiple_of(self.sample_every) {
            let line = self.render(headers, body, "RESP");
            self.log.push(line);
        }
        FilterVerdict::Continue
    }
}

// ---------------------------------------------------------------------------
// ACL filter
// ---------------------------------------------------------------------------

/// One ACL rule over a dynamic body field.
#[derive(Debug, Clone)]
pub struct AclRule {
    /// Protobuf field number holding the principal.
    pub field_no: u64,
    /// Principal this rule matches.
    pub principal: String,
    /// Allow or deny.
    pub allow: bool,
}

/// Generic RBAC-ish filter: per-principal rules with unused generality
/// (prefix matching, case folding) that still costs a branch per message.
pub struct AclFilter {
    rules: Vec<AclRule>,
    /// Default action when no rule matches.
    pub default_allow: bool,
    /// Knobs the benchmark leaves at defaults:
    pub case_insensitive: bool,
    pub match_prefix: bool,
    pub denied_status: u32,
}

impl AclFilter {
    /// Builds from (principal, allow) pairs on `field_no`.
    pub fn new(field_no: u64, entries: &[(&str, bool)]) -> Self {
        Self {
            rules: entries
                .iter()
                .map(|(p, allow)| AclRule {
                    field_no,
                    principal: p.to_string(),
                    allow: *allow,
                })
                .collect(),
            default_allow: false,
            case_insensitive: false,
            match_prefix: false,
            denied_status: 7,
        }
    }

    /// The mesh-side equivalent of the standard element ACL table.
    pub fn with_default_table(field_no: u64) -> Self {
        Self::new(
            field_no,
            &[
                ("alice", true),
                ("bob", false),
                ("carol", true),
                ("dave", true),
                ("eve", false),
            ],
        )
    }

    fn matches(&self, rule: &AclRule, principal: &str) -> bool {
        let (a, b) = if self.case_insensitive {
            (rule.principal.to_lowercase(), principal.to_lowercase())
        } else {
            (rule.principal.clone(), principal.to_owned())
        };
        if self.match_prefix {
            b.starts_with(&a)
        } else {
            a == b
        }
    }
}

impl MeshFilter for AclFilter {
    fn name(&self) -> &str {
        "rbac"
    }

    fn on_request(
        &mut self,
        _headers: &mut Vec<(String, String)>,
        body: &mut DynMessage,
    ) -> FilterVerdict {
        let field_no = self.rules.first().map(|r| r.field_no).unwrap_or(0);
        let principal = body
            .iter()
            .find(|(n, _)| *n == field_no)
            .and_then(|(_, v)| v.as_str())
            .unwrap_or("");
        let allowed = self
            .rules
            .iter()
            .find(|r| self.matches(r, principal))
            .map(|r| r.allow)
            .unwrap_or(self.default_allow);
        if allowed {
            FilterVerdict::Continue
        } else {
            FilterVerdict::Deny {
                grpc_status: self.denied_status,
                message: "permission denied".to_owned(),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection filter
// ---------------------------------------------------------------------------

/// Percentage-based abort injection, Envoy `fault` filter style.
pub struct FaultFilter {
    /// Abort probability in [0, 1].
    pub probability: f64,
    /// gRPC status used for injected aborts.
    pub abort_status: u32,
    /// Knob the benchmark leaves unset: only fault requests whose
    /// `:path` contains this substring.
    pub path_filter: Option<String>,
    rng: StdRng,
}

impl FaultFilter {
    pub fn new(probability: f64, seed: u64) -> Self {
        Self {
            probability,
            abort_status: 3,
            path_filter: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl MeshFilter for FaultFilter {
    fn name(&self) -> &str {
        "fault"
    }

    fn on_request(
        &mut self,
        headers: &mut Vec<(String, String)>,
        _body: &mut DynMessage,
    ) -> FilterVerdict {
        if let Some(needle) = &self.path_filter {
            let path = headers
                .iter()
                .find(|(n, _)| n == ":path")
                .map(|(_, v)| v.as_str())
                .unwrap_or("");
            if !path.contains(needle.as_str()) {
                return FilterVerdict::Continue;
            }
        }
        if self.rng.gen::<f64>() < self.probability {
            FilterVerdict::Deny {
                grpc_status: self.abort_status,
                message: "fault injected".to_owned(),
            }
        } else {
            FilterVerdict::Continue
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn headers() -> Vec<(String, String)> {
        vec![
            (":method".into(), "POST".into()),
            (":path".into(), "/objectstore.ObjectStore/Put".into()),
            ("x-call-id".into(), "9".into()),
        ]
    }

    fn body(user: &str) -> DynMessage {
        vec![
            (1, PbValue::Varint(42)),
            (2, PbValue::Bytes(user.as_bytes().to_vec())),
        ]
    }

    #[test]
    fn access_log_renders_format() {
        let mut f = AccessLogFilter::new();
        let mut h = headers();
        let mut b = body("alice");
        assert_eq!(f.on_request(&mut h, &mut b), FilterVerdict::Continue);
        let line = &f.lines()[0];
        assert!(line.contains("REQ"), "{line}");
        assert!(line.contains("/objectstore.ObjectStore/Put"), "{line}");
        assert!(line.contains("user=alice"), "{line}");
        assert!(line.contains("object=42"), "{line}");
        assert!(line.contains("call=9"), "{line}");
    }

    #[test]
    fn access_log_sampling_knob() {
        let mut f = AccessLogFilter::new();
        f.sample_every = 2;
        for _ in 0..10 {
            f.on_request(&mut headers(), &mut body("a"));
        }
        assert_eq!(f.lines().len(), 5);
    }

    #[test]
    fn acl_allows_and_denies() {
        let mut f = AclFilter::with_default_table(2);
        assert_eq!(
            f.on_request(&mut headers(), &mut body("alice")),
            FilterVerdict::Continue
        );
        assert!(matches!(
            f.on_request(&mut headers(), &mut body("bob")),
            FilterVerdict::Deny { grpc_status: 7, .. }
        ));
        assert!(matches!(
            f.on_request(&mut headers(), &mut body("mallory")),
            FilterVerdict::Deny { .. }
        ));
    }

    #[test]
    fn acl_knobs_work() {
        let mut f = AclFilter::new(2, &[("AL", true)]);
        f.case_insensitive = true;
        f.match_prefix = true;
        assert_eq!(
            f.on_request(&mut headers(), &mut body("alice")),
            FilterVerdict::Continue
        );
    }

    #[test]
    fn fault_filter_rate() {
        let mut f = FaultFilter::new(0.25, 3);
        let mut denied = 0;
        for _ in 0..4000 {
            if f.on_request(&mut headers(), &mut body("a")) != FilterVerdict::Continue {
                denied += 1;
            }
        }
        let rate = denied as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "{rate}");
    }

    #[test]
    fn fault_path_filter_knob() {
        let mut f = FaultFilter::new(1.0, 0);
        f.path_filter = Some("/other.Service/".into());
        assert_eq!(
            f.on_request(&mut headers(), &mut body("a")),
            FilterVerdict::Continue
        );
    }
}
