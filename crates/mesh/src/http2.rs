//! HTTP/2-lite framing.
//!
//! The 9-byte frame header (24-bit length, type, flags, 31-bit stream id)
//! and the two frame types the gRPC data path uses: HEADERS (one header
//! block per frame; no CONTINUATION) and DATA. Each mesh hop parses and
//! re-emits these frames.

use adn_wire::codec::{WireError, WireResult};

/// Frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    Data,
    Headers,
    Settings,
}

impl FrameType {
    fn to_byte(self) -> u8 {
        match self {
            FrameType::Data => 0x0,
            FrameType::Headers => 0x1,
            FrameType::Settings => 0x4,
        }
    }

    fn from_byte(b: u8) -> WireResult<Self> {
        Ok(match b {
            0x0 => FrameType::Data,
            0x1 => FrameType::Headers,
            0x4 => FrameType::Settings,
            other => {
                return Err(WireError::InvalidTag {
                    tag: other as u64,
                    context: "http2 frame type",
                })
            }
        })
    }
}

/// END_STREAM flag.
pub const FLAG_END_STREAM: u8 = 0x1;
/// END_HEADERS flag.
pub const FLAG_END_HEADERS: u8 = 0x4;

/// One HTTP/2 frame.
#[derive(Debug, Clone, PartialEq)]
pub struct H2Frame {
    pub frame_type: FrameType,
    pub flags: u8,
    pub stream_id: u32,
    pub payload: Vec<u8>,
}

/// Maximum frame payload accepted (default HTTP/2 SETTINGS_MAX_FRAME_SIZE).
pub const MAX_FRAME_SIZE: usize = 16_384;

/// Serializes a frame (splitting is the caller's job; oversize errors).
pub fn encode_frame(frame: &H2Frame, out: &mut Vec<u8>) -> WireResult<()> {
    if frame.payload.len() > MAX_FRAME_SIZE {
        return Err(WireError::LengthOutOfBounds {
            length: frame.payload.len() as u64,
            limit: MAX_FRAME_SIZE,
        });
    }
    let len = frame.payload.len() as u32;
    out.extend_from_slice(&len.to_be_bytes()[1..4]);
    out.push(frame.frame_type.to_byte());
    out.push(frame.flags);
    out.extend_from_slice(&(frame.stream_id & 0x7FFF_FFFF).to_be_bytes());
    out.extend_from_slice(&frame.payload);
    Ok(())
}

/// Parses one frame from the front of `buf`, returning it and the bytes
/// consumed. `Ok(None)` means more bytes are needed.
pub fn decode_frame(buf: &[u8]) -> WireResult<Option<(H2Frame, usize)>> {
    if buf.len() < 9 {
        return Ok(None);
    }
    let len = u32::from_be_bytes([0, buf[0], buf[1], buf[2]]) as usize;
    if len > MAX_FRAME_SIZE {
        return Err(WireError::LengthOutOfBounds {
            length: len as u64,
            limit: MAX_FRAME_SIZE,
        });
    }
    if buf.len() < 9 + len {
        return Ok(None);
    }
    let frame_type = FrameType::from_byte(buf[3])?;
    let flags = buf[4];
    let stream_id = u32::from_be_bytes([buf[5], buf[6], buf[7], buf[8]]) & 0x7FFF_FFFF;
    let payload = buf[9..9 + len].to_vec();
    Ok(Some((
        H2Frame {
            frame_type,
            flags,
            stream_id,
            payload,
        },
        9 + len,
    )))
}

/// Encodes a HEADERS frame followed by DATA frames carrying `data`,
/// split at [`MAX_FRAME_SIZE`]. This is one "HTTP/2 message" on the wire.
pub fn encode_message(
    stream_id: u32,
    header_block: &[u8],
    data: &[u8],
    out: &mut Vec<u8>,
) -> WireResult<()> {
    // HEADERS frames above MAX_FRAME_SIZE would need CONTINUATION; the
    // header blocks gRPC produces stay tiny, enforce rather than implement.
    encode_frame(
        &H2Frame {
            frame_type: FrameType::Headers,
            flags: FLAG_END_HEADERS,
            stream_id,
            payload: header_block.to_vec(),
        },
        out,
    )?;
    let mut chunks = data.chunks(MAX_FRAME_SIZE).peekable();
    if data.is_empty() {
        encode_frame(
            &H2Frame {
                frame_type: FrameType::Data,
                flags: FLAG_END_STREAM,
                stream_id,
                payload: Vec::new(),
            },
            out,
        )?;
        return Ok(());
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        encode_frame(
            &H2Frame {
                frame_type: FrameType::Data,
                flags: if last { FLAG_END_STREAM } else { 0 },
                stream_id,
                payload: chunk.to_vec(),
            },
            out,
        )?;
    }
    Ok(())
}

/// A fully reassembled message: header block + concatenated data.
#[derive(Debug, Clone, PartialEq)]
pub struct H2Message {
    pub stream_id: u32,
    pub header_block: Vec<u8>,
    pub data: Vec<u8>,
}

/// Parses a byte buffer containing exactly the frames of one message
/// (HEADERS then DATA...END_STREAM) into an [`H2Message`].
pub fn decode_message(buf: &[u8]) -> WireResult<H2Message> {
    let mut pos = 0usize;
    let mut header_block: Option<(u32, Vec<u8>)> = None;
    let mut data = Vec::new();
    loop {
        match decode_frame(&buf[pos..])? {
            Some((frame, consumed)) => {
                pos += consumed;
                match frame.frame_type {
                    FrameType::Headers => {
                        if header_block.is_some() {
                            return Err(WireError::Malformed("duplicate HEADERS"));
                        }
                        header_block = Some((frame.stream_id, frame.payload));
                    }
                    FrameType::Data => {
                        let Some((sid, _)) = &header_block else {
                            return Err(WireError::Malformed("DATA before HEADERS"));
                        };
                        if frame.stream_id != *sid {
                            return Err(WireError::Malformed("stream id mismatch"));
                        }
                        data.extend_from_slice(&frame.payload);
                        if frame.flags & FLAG_END_STREAM != 0 {
                            if pos != buf.len() {
                                return Err(WireError::Malformed("bytes after END_STREAM"));
                            }
                            let (stream_id, header_block) = header_block.expect("checked");
                            return Ok(H2Message {
                                stream_id,
                                header_block,
                                data,
                            });
                        }
                    }
                    FrameType::Settings => {} // connection management; skip
                }
            }
            None => {
                return Err(WireError::UnexpectedEof {
                    needed: 9,
                    context: "http2 message",
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let frame = H2Frame {
            frame_type: FrameType::Headers,
            flags: FLAG_END_HEADERS,
            stream_id: 5,
            payload: b"abc".to_vec(),
        };
        let mut out = Vec::new();
        encode_frame(&frame, &mut out).unwrap();
        let (back, consumed) = decode_frame(&out).unwrap().unwrap();
        assert_eq!(back, frame);
        assert_eq!(consumed, out.len());
    }

    #[test]
    fn partial_input_asks_for_more() {
        let frame = H2Frame {
            frame_type: FrameType::Data,
            flags: 0,
            stream_id: 1,
            payload: vec![0; 100],
        };
        let mut out = Vec::new();
        encode_frame(&frame, &mut out).unwrap();
        assert!(decode_frame(&out[..5]).unwrap().is_none());
        assert!(decode_frame(&out[..50]).unwrap().is_none());
    }

    #[test]
    fn message_roundtrip_with_large_data() {
        let header_block = vec![7u8; 40];
        let data = vec![9u8; MAX_FRAME_SIZE * 2 + 100]; // 3 DATA frames
        let mut out = Vec::new();
        encode_message(3, &header_block, &data, &mut out).unwrap();
        let msg = decode_message(&out).unwrap();
        assert_eq!(msg.stream_id, 3);
        assert_eq!(msg.header_block, header_block);
        assert_eq!(msg.data, data);
    }

    #[test]
    fn empty_data_still_ends_stream() {
        let mut out = Vec::new();
        encode_message(1, b"h", &[], &mut out).unwrap();
        let msg = decode_message(&out).unwrap();
        assert!(msg.data.is_empty());
    }

    #[test]
    fn oversize_frame_rejected() {
        let frame = H2Frame {
            frame_type: FrameType::Data,
            flags: 0,
            stream_id: 1,
            payload: vec![0; MAX_FRAME_SIZE + 1],
        };
        let mut out = Vec::new();
        assert!(encode_frame(&frame, &mut out).is_err());
    }

    #[test]
    fn malformed_sequences_rejected() {
        // DATA before HEADERS.
        let mut out = Vec::new();
        encode_frame(
            &H2Frame {
                frame_type: FrameType::Data,
                flags: FLAG_END_STREAM,
                stream_id: 1,
                payload: vec![],
            },
            &mut out,
        )
        .unwrap();
        assert!(decode_message(&out).is_err());
        // Truncated.
        assert!(decode_message(&[0, 0]).is_err());
    }

    #[test]
    fn unknown_frame_type_rejected() {
        let mut out = vec![0, 0, 0, 0x9, 0, 0, 0, 0, 1];
        out.extend_from_slice(&[]);
        assert!(decode_frame(&out).is_err());
    }
}
