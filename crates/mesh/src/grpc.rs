//! gRPC-lite conventions: pseudo-headers, the 5-byte message prefix, and
//! status trailers, layered over [`crate::http2`] + [`crate::hpack`] +
//! [`crate::pb`].
//!
//! RPC metadata that ADN carries as varints (call id, source, destination)
//! rides here as ASCII header strings — exactly the "embed application
//! information into standardized protocol headers" workaround paper §2
//! describes, with its integer↔string conversion cost on every hop.

use std::sync::Arc;

use adn_rpc::message::{MessageKind, RpcMessage, RpcStatus};
use adn_rpc::schema::ServiceSchema;
use adn_wire::codec::{WireError, WireResult};

use crate::hpack::{self, HpackContext};
use crate::http2;
use crate::pb;

/// gRPC message frame: 1-byte compressed flag + 4-byte big-endian length.
pub fn grpc_frame(message: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + message.len());
    out.push(0); // not compressed
    out.extend_from_slice(&(message.len() as u32).to_be_bytes());
    out.extend_from_slice(message);
    out
}

/// Inverse of [`grpc_frame`].
pub fn grpc_unframe(data: &[u8]) -> WireResult<&[u8]> {
    if data.len() < 5 {
        return Err(WireError::UnexpectedEof {
            needed: 5 - data.len(),
            context: "grpc frame prefix",
        });
    }
    if data[0] != 0 {
        return Err(WireError::Malformed("compressed grpc frames unsupported"));
    }
    let len = u32::from_be_bytes([data[1], data[2], data[3], data[4]]) as usize;
    if data.len() != 5 + len {
        return Err(WireError::Malformed("grpc frame length mismatch"));
    }
    Ok(&data[5..])
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| v.as_str())
}

fn parse_u64(headers: &[(String, String)], name: &str) -> WireResult<u64> {
    header(headers, name)
        .and_then(|v| v.parse().ok())
        .ok_or(WireError::Malformed("missing or invalid numeric header"))
}

/// Encodes a request as HTTP/2 bytes using the sender's HPACK context.
pub fn encode_request(
    ctx: &mut HpackContext,
    msg: &RpcMessage,
    service_name: &str,
    method_name: &str,
) -> WireResult<Vec<u8>> {
    let headers: Vec<(String, String)> = vec![
        (":method".into(), "POST".into()),
        (":scheme".into(), "http".into()),
        (":path".into(), format!("/{service_name}/{method_name}")),
        (":authority".into(), format!("svc-{}", msg.dst)),
        ("content-type".into(), "application/grpc".into()),
        ("te".into(), "trailers".into()),
        ("user-agent".into(), "adn-mesh-grpc/0.1".into()),
        ("x-call-id".into(), msg.call_id.to_string()),
        ("x-method-id".into(), msg.method_id.to_string()),
        ("x-src".into(), msg.src.to_string()),
        ("x-dst".into(), msg.dst.to_string()),
    ];
    let header_block = hpack::encode_headers(ctx, &headers);
    let body = grpc_frame(&pb::encode_to_vec(&msg.fields));
    let mut out = Vec::with_capacity(header_block.len() + body.len() + 32);
    http2::encode_message(1, &header_block, &body, &mut out)?;
    Ok(out)
}

/// Encodes a response (including aborted ones, via grpc-status).
pub fn encode_response(ctx: &mut HpackContext, msg: &RpcMessage) -> WireResult<Vec<u8>> {
    let (status, status_message) = match &msg.status {
        RpcStatus::Ok => (0u32, String::new()),
        RpcStatus::Aborted { code, message } => (*code, message.clone()),
        // gRPC's UNAVAILABLE — the canonical "try again later" overload
        // code. Decoding maps it back to a generic abort: the baseline
        // mesh has no first-class shed signal, which is part of what the
        // ADN path is measured against.
        RpcStatus::Shed => (14u32, "shed".into()),
    };
    let mut headers: Vec<(String, String)> = vec![
        (":status".into(), "200".into()),
        ("content-type".into(), "application/grpc".into()),
        ("x-call-id".into(), msg.call_id.to_string()),
        ("x-method-id".into(), msg.method_id.to_string()),
        ("x-src".into(), msg.src.to_string()),
        ("x-dst".into(), msg.dst.to_string()),
        ("grpc-status".into(), status.to_string()),
    ];
    if !status_message.is_empty() {
        headers.push(("grpc-message".into(), status_message));
    }
    let header_block = hpack::encode_headers(ctx, &headers);
    let body = if status == 0 {
        grpc_frame(&pb::encode_to_vec(&msg.fields))
    } else {
        Vec::new()
    };
    let mut out = Vec::with_capacity(header_block.len() + body.len() + 32);
    http2::encode_message(1, &header_block, &body, &mut out)?;
    Ok(out)
}

/// A message decoded at the application edge (schema known).
pub fn decode_message(
    ctx: &mut HpackContext,
    bytes: &[u8],
    service: &Arc<ServiceSchema>,
) -> WireResult<RpcMessage> {
    let h2 = http2::decode_message(bytes)?;
    let headers = hpack::decode_headers(ctx, &h2.header_block)?;
    let is_response = header(&headers, ":status").is_some();
    let call_id = parse_u64(&headers, "x-call-id")?;
    let method_id = parse_u64(&headers, "x-method-id")? as u16;
    let src = parse_u64(&headers, "x-src")?;
    let dst = parse_u64(&headers, "x-dst")?;

    let method = service
        .method_by_id(method_id)
        .ok_or(WireError::Malformed("unknown method id"))?;
    let (kind, schema) = if is_response {
        (MessageKind::Response, method.response.clone())
    } else {
        (MessageKind::Request, method.request.clone())
    };

    let status = if is_response {
        let code = parse_u64(&headers, "grpc-status")? as u32;
        if code == 0 {
            RpcStatus::Ok
        } else {
            RpcStatus::Aborted {
                code,
                message: header(&headers, "grpc-message").unwrap_or("").to_owned(),
            }
        }
    } else {
        RpcStatus::Ok
    };

    let fields = if h2.data.is_empty() && !matches!(status, RpcStatus::Ok) {
        schema.default_values()
    } else {
        let pb_bytes = grpc_unframe(&h2.data)?;
        pb::decode_with_schema(pb_bytes, &schema)?
    };

    Ok(RpcMessage {
        call_id,
        method_id,
        kind,
        status,
        src,
        dst,
        trace: None,
        deadline: None,
        schema,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::value::{Value, ValueType};

    fn service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "objectstore.ObjectStore",
                vec![MethodDef {
                    id: 1,
                    name: "Put".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    #[test]
    fn request_roundtrip() {
        let svc = service();
        let m = svc.method_by_id(1).unwrap();
        let mut msg = RpcMessage::request(7, 1, m.request.clone())
            .with("object_id", 42u64)
            .with("username", "alice")
            .with("payload", vec![1u8, 2, 3]);
        msg.src = 100;
        msg.dst = 200;
        let mut tx = HpackContext::new();
        let mut rx = HpackContext::new();
        let bytes = encode_request(&mut tx, &msg, &svc.name, "Put").unwrap();
        let back = decode_message(&mut rx, &bytes, &svc).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn ok_response_roundtrip() {
        let svc = service();
        let m = svc.method_by_id(1).unwrap();
        let req = RpcMessage::request(7, 1, m.request.clone());
        let mut resp = RpcMessage::response_to(&req, m.response.clone());
        resp.set("ok", Value::Bool(true));
        let mut tx = HpackContext::new();
        let mut rx = HpackContext::new();
        let bytes = encode_response(&mut tx, &resp).unwrap();
        let back = decode_message(&mut rx, &bytes, &svc).unwrap();
        assert_eq!(back, resp);
    }

    #[test]
    fn aborted_response_carries_status_without_body() {
        let svc = service();
        let m = svc.method_by_id(1).unwrap();
        let req = RpcMessage::request(7, 1, m.request.clone());
        let mut resp = RpcMessage::response_to(&req, m.response.clone());
        resp.abort(7, "permission denied");
        let mut tx = HpackContext::new();
        let mut rx = HpackContext::new();
        let bytes = encode_response(&mut tx, &resp).unwrap();
        let back = decode_message(&mut rx, &bytes, &svc).unwrap();
        assert_eq!(back.status, resp.status);
        assert_eq!(back.fields, m.response.default_values());
    }

    #[test]
    fn grpc_frame_roundtrip_and_validation() {
        let framed = grpc_frame(b"hello");
        assert_eq!(grpc_unframe(&framed).unwrap(), b"hello");
        assert!(grpc_unframe(&framed[..4]).is_err());
        let mut bad = framed.clone();
        bad[0] = 1; // compressed flag
        assert!(grpc_unframe(&bad).is_err());
        let mut short = framed;
        short.pop();
        assert!(grpc_unframe(&short).is_err());
    }

    #[test]
    fn wire_size_is_much_larger_than_adn() {
        // The same message through both codecs: the general stack should
        // cost several times the ADN bytes on short messages.
        let svc = service();
        let m = svc.method_by_id(1).unwrap();
        let msg = RpcMessage::request(7, 1, m.request.clone())
            .with("object_id", 42u64)
            .with("username", "alice")
            .with("payload", vec![1u8, 2, 3]);
        let adn_bytes = adn_rpc::wire_format::encode_message_to_vec(&msg).unwrap();
        let mut tx = HpackContext::new();
        let mesh_bytes = encode_request(&mut tx, &msg, &svc.name, "Put").unwrap();
        assert!(
            mesh_bytes.len() > adn_bytes.len() * 3,
            "mesh {} vs adn {}",
            mesh_bytes.len(),
            adn_bytes.len()
        );
    }
}
