//! gRPC application endpoints: the client and server at the edges of the
//! mesh path. They marshal/unmarshal with the schema (apps do link their
//! protos) but still pay the full protocol stack per message.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, Sender};
use parking_lot::Mutex;

use adn_rpc::error::{RpcError, RpcResult};
use adn_rpc::message::{MessageKind, RpcMessage, RpcStatus};
use adn_rpc::runtime::Handler;
use adn_rpc::schema::ServiceSchema;
use adn_rpc::transport::{EndpointAddr, Frame, Link};

use crate::grpc;
use crate::hpack::HpackContext;

/// A pending mesh call.
pub struct MeshPendingCall {
    call_id: u64,
    rx: Receiver<RpcMessage>,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
}

impl MeshPendingCall {
    /// Waits for the response.
    pub fn wait(self, timeout: Duration) -> RpcResult<RpcMessage> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => match &resp.status {
                RpcStatus::Ok => Ok(resp),
                RpcStatus::Aborted { code, message } => Err(RpcError::Aborted {
                    code: *code,
                    message: message.clone(),
                }),
                RpcStatus::Shed => Err(RpcError::Shed {
                    call_id: resp.call_id,
                }),
            },
            Err(_) => {
                self.pending.lock().remove(&self.call_id);
                Err(RpcError::Timeout {
                    call_id: self.call_id,
                })
            }
        }
    }
}

/// A gRPC client whose traffic is intercepted by a sidecar.
pub struct MeshClient {
    addr: EndpointAddr,
    link: Arc<dyn Link>,
    service: Arc<ServiceSchema>,
    /// All egress goes to the local sidecar (iptables interception).
    sidecar: EndpointAddr,
    tx_ctx: Mutex<HpackContext>,
    next_call_id: AtomicU64,
    pending: Arc<Mutex<HashMap<u64, Sender<RpcMessage>>>>,
    shutdown: Arc<AtomicBool>,
}

impl MeshClient {
    /// Creates a client at `addr` whose egress is intercepted by `sidecar`.
    pub fn new(
        addr: EndpointAddr,
        sidecar: EndpointAddr,
        link: Arc<dyn Link>,
        frames: Receiver<Frame>,
        service: Arc<ServiceSchema>,
    ) -> Arc<Self> {
        let client = Arc::new(Self {
            addr,
            link,
            service,
            sidecar,
            tx_ctx: Mutex::new(HpackContext::new()),
            next_call_id: AtomicU64::new(1),
            pending: Arc::new(Mutex::new(HashMap::new())),
            shutdown: Arc::new(AtomicBool::new(false)),
        });
        let dispatcher = client.clone();
        std::thread::Builder::new()
            .name(format!("mesh-client-{addr}"))
            .spawn(move || dispatcher.dispatch_loop(frames))
            .expect("spawn mesh client dispatcher");
        client
    }

    fn dispatch_loop(&self, frames: Receiver<Frame>) {
        // One HPACK context per peer sending us responses.
        let mut rx_ctx: HashMap<EndpointAddr, HpackContext> = HashMap::new();
        while !self.shutdown.load(Ordering::Relaxed) {
            let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                Ok(f) => f,
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
            };
            let ctx = rx_ctx.entry(frame.src).or_default();
            let Ok(msg) = grpc::decode_message(ctx, &frame.payload, &self.service) else {
                continue;
            };
            if msg.kind != MessageKind::Response {
                continue;
            }
            if let Some(tx) = self.pending.lock().remove(&msg.call_id) {
                let _ = tx.send(msg);
            }
        }
    }

    /// Starts a call through the mesh.
    pub fn send_call(&self, mut msg: RpcMessage, to: EndpointAddr) -> RpcResult<MeshPendingCall> {
        msg.call_id = self.next_call_id.fetch_add(1, Ordering::Relaxed);
        msg.kind = MessageKind::Request;
        msg.src = self.addr;
        msg.dst = to;

        let method = self
            .service
            .method_by_id(msg.method_id)
            .ok_or(RpcError::UnknownMethod(msg.method_id))?;
        let method_name = method.name.clone();

        let (tx, rx) = crossbeam::channel::bounded(1);
        self.pending.lock().insert(msg.call_id, tx);
        let handle = MeshPendingCall {
            call_id: msg.call_id,
            rx,
            pending: self.pending.clone(),
        };

        let payload = {
            let mut ctx = self.tx_ctx.lock();
            grpc::encode_request(&mut ctx, &msg, &self.service.name, &method_name)?
        };
        self.link.send(Frame {
            src: self.addr,
            dst: self.sidecar,
            payload,
        })?;
        Ok(handle)
    }

    /// One call, blocking.
    pub fn call(&self, msg: RpcMessage, to: EndpointAddr) -> RpcResult<RpcMessage> {
        self.send_call(msg, to)?.wait(Duration::from_secs(10))
    }

    /// The service schema.
    pub fn service(&self) -> &Arc<ServiceSchema> {
        &self.service
    }
}

impl Drop for MeshClient {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }
}

/// Handle to a running mesh server.
pub struct MeshServer {
    shutdown: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl MeshServer {
    /// Spawns a gRPC server at `addr`; its responses go back through the
    /// local `sidecar`.
    pub fn spawn(
        addr: EndpointAddr,
        sidecar: EndpointAddr,
        link: Arc<dyn Link>,
        frames: Receiver<Frame>,
        service: Arc<ServiceSchema>,
        mut handler: Handler,
    ) -> Self {
        let shutdown = Arc::new(AtomicBool::new(false));
        let stop = shutdown.clone();
        let join = std::thread::Builder::new()
            .name(format!("mesh-server-{addr}"))
            .spawn(move || {
                let mut rx_ctx: HashMap<EndpointAddr, HpackContext> = HashMap::new();
                let mut tx_ctx = HpackContext::new();
                while !stop.load(Ordering::Relaxed) {
                    let frame = match frames.recv_timeout(Duration::from_millis(50)) {
                        Ok(f) => f,
                        Err(crossbeam::channel::RecvTimeoutError::Timeout) => continue,
                        Err(crossbeam::channel::RecvTimeoutError::Disconnected) => break,
                    };
                    let ctx = rx_ctx.entry(frame.src).or_default();
                    let Ok(req) = grpc::decode_message(ctx, &frame.payload, &service) else {
                        continue;
                    };
                    if req.kind != MessageKind::Request {
                        continue;
                    }
                    let mut resp = handler(&req);
                    resp.call_id = req.call_id;
                    resp.kind = MessageKind::Response;
                    resp.src = addr;
                    resp.dst = req.src; // the NAT'd sidecar hop
                    let Ok(payload) = grpc::encode_response(&mut tx_ctx, &resp) else {
                        continue;
                    };
                    let _ = link.send(Frame {
                        src: addr,
                        dst: sidecar,
                        payload,
                    });
                }
            })
            .expect("spawn mesh server");
        Self {
            shutdown,
            join: Some(join),
        }
    }

    /// Stops the server.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for MeshServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filters::{AccessLogFilter, AclFilter, FaultFilter};
    use crate::sidecar::{spawn_sidecar, SidecarConfig, Upstream};
    use adn_rpc::schema::{MethodDef, RpcSchema};
    use adn_rpc::transport::InProcNetwork;
    use adn_rpc::value::{Value, ValueType};

    fn service() -> Arc<ServiceSchema> {
        let request = Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        let response = Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        );
        Arc::new(
            ServiceSchema::new(
                "objectstore.ObjectStore",
                vec![MethodDef {
                    id: 1,
                    name: "Put".into(),
                    request,
                    response,
                }],
            )
            .unwrap(),
        )
    }

    /// Builds the full Figure-1 topology:
    /// client(1) → client-sidecar(11) → server-sidecar(12) → server(2).
    fn mesh_world(
        fault_prob: f64,
    ) -> (
        Arc<MeshClient>,
        crate::sidecar::SidecarHandle,
        crate::sidecar::SidecarHandle,
        MeshServer,
        Arc<ServiceSchema>,
    ) {
        let net = InProcNetwork::new();
        let link: Arc<dyn Link> = Arc::new(net.clone());
        let svc = service();

        let server_frames = net.attach(2);
        let svc2 = svc.clone();
        let server = MeshServer::spawn(
            2,
            12,
            link.clone(),
            server_frames,
            svc.clone(),
            Box::new(move |req| {
                let m = svc2.method_by_id(1).unwrap();
                let mut resp = RpcMessage::response_to(req, m.response.clone());
                resp.set("ok", Value::Bool(true));
                resp.set("payload", req.get("payload").unwrap().clone());
                resp
            }),
        );

        // Client sidecar runs the full filter chain (the paper's setup);
        // the server sidecar also parses/re-encodes but with no filters.
        let cs_frames = net.attach(11);
        let client_sidecar = spawn_sidecar(
            SidecarConfig {
                addr: 11,
                filters: vec![
                    Box::new(AccessLogFilter::new()),
                    Box::new(AclFilter::with_default_table(2)),
                    Box::new(FaultFilter::new(fault_prob, 99)),
                ],
                upstream: Upstream::Fixed(12),
            },
            link.clone(),
            cs_frames,
        );
        let ss_frames = net.attach(12);
        let server_sidecar = spawn_sidecar(
            SidecarConfig {
                addr: 12,
                filters: vec![],
                upstream: Upstream::Dst,
            },
            link.clone(),
            ss_frames,
        );

        let client_frames = net.attach(1);
        let client = MeshClient::new(1, 11, link, client_frames, svc.clone());
        (client, client_sidecar, server_sidecar, server, svc)
    }

    fn request(svc: &ServiceSchema, oid: u64, user: &str) -> RpcMessage {
        let m = svc.method_by_id(1).unwrap();
        RpcMessage::request(0, 1, m.request.clone())
            .with("object_id", oid)
            .with("username", user)
            .with("payload", vec![5u8; 16])
    }

    #[test]
    fn end_to_end_roundtrip_through_both_sidecars() {
        let (client, cs, ss, _server, svc) = mesh_world(0.0);
        let resp = client.call(request(&svc, 1, "alice"), 2).unwrap();
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(resp.get("payload"), Some(&Value::Bytes(vec![5u8; 16])));
        assert_eq!(cs.requests(), 1);
        assert_eq!(cs.responses(), 1);
        assert_eq!(ss.requests(), 1);
        assert_eq!(ss.responses(), 1);
    }

    #[test]
    fn acl_filter_denies_at_the_sidecar() {
        let (client, cs, ss, _server, svc) = mesh_world(0.0);
        let err = client.call(request(&svc, 1, "bob"), 2).unwrap_err();
        assert!(matches!(err, RpcError::Aborted { code: 7, .. }));
        assert_eq!(cs.denied(), 1);
        // The server sidecar never saw the request.
        assert_eq!(ss.requests(), 0);
    }

    #[test]
    fn fault_filter_aborts_at_rate() {
        let (client, _cs, _ss, _server, svc) = mesh_world(0.5);
        let mut faulted = 0;
        for i in 0..200 {
            match client.call(request(&svc, i, "alice"), 2) {
                Err(RpcError::Aborted { code: 3, .. }) => faulted += 1,
                Ok(_) => {}
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
        let rate = faulted as f64 / 200.0;
        assert!((rate - 0.5).abs() < 0.15, "fault rate {rate}");
    }

    #[test]
    fn many_concurrent_calls_complete() {
        let (client, _cs, _ss, _server, svc) = mesh_world(0.0);
        let mut handles = Vec::new();
        for i in 0..128 {
            handles.push(client.send_call(request(&svc, i, "alice"), 2).unwrap());
        }
        for h in handles {
            h.wait(Duration::from_secs(5)).unwrap();
        }
    }
}
