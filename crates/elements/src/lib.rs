//! # adn-elements — the standard ADN element library
//!
//! Paper §4 Q1 calls for developers to "reuse code of elements developed by
//! others". This crate is that library:
//!
//! * [`sources`] — the DSL source of every standard element, including the
//!   three the paper's evaluation uses (Logging, ACL, Fault injection) and
//!   the §2 example chain (load balancing by object id, compression,
//!   access control).
//! * [`handcoded`] — hand-optimized native implementations of the same
//!   elements, written the way the paper's "mRPC developers" wrote their
//!   modules: direct field access, no interpretation. These are the
//!   baseline for the generated-vs-hand-written comparison (Figure 5 /
//!   experiment E6).
//! * [`catalog`](#functions) — name → source lookup plus a one-call
//!   `build` that parses, typechecks, and lowers an element against an
//!   application's schemas.
//!
//! Standard elements are written against conventional field names
//! (`username`, `object_id`, `payload`, `ok`). Element reuse is schema-
//! dependent by design (the paper: "an element that manipulates an RPC
//! field of one application may not necessarily work in another") — `build`
//! fails with a type error when the application's schema lacks the fields
//! an element touches.

pub mod handcoded;
pub mod sources;

use adn_dsl::typecheck::CheckedElement;
use adn_ir::ElementIr;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::Value;

/// Names of all standard elements.
pub fn standard_names() -> Vec<&'static str> {
    sources::ALL.iter().map(|(n, _)| *n).collect()
}

/// DSL source of a standard element.
pub fn dsl_source(name: &str) -> Option<&'static str> {
    sources::ALL
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| *s)
}

/// Errors from building a standard element.
#[derive(Debug)]
pub enum BuildError {
    /// No element with that name.
    UnknownElement(String),
    /// Parse/typecheck failure against the application schema.
    Frontend(adn_dsl::FrontendError),
    /// Lowering failure (bad arguments, etc.).
    Lower(adn_ir::LowerError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnknownElement(n) => write!(f, "unknown element {n:?}"),
            BuildError::Frontend(e) => write!(f, "{e}"),
            BuildError::Lower(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Parses and typechecks a standard element against an application schema.
pub fn check(
    name: &str,
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<CheckedElement, BuildError> {
    let source = dsl_source(name).ok_or_else(|| BuildError::UnknownElement(name.to_owned()))?;
    adn_dsl::compile_frontend(source, request, response).map_err(BuildError::Frontend)
}

/// Builds (parses, checks, lowers) a standard element with arguments.
pub fn build(
    name: &str,
    args: &[(String, Value)],
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<ElementIr, BuildError> {
    let checked = check(name, request, response)?;
    adn_ir::lower_element(&checked, args, request, response).map_err(BuildError::Lower)
}

/// Builds the paper §6 evaluation chain: Logging → ACL → Fault.
pub fn paper_eval_chain(
    request: &RpcSchema,
    response: &RpcSchema,
    fault_prob: f64,
) -> Result<Vec<ElementIr>, BuildError> {
    Ok(vec![
        build("Logging", &[], request, response)?,
        build("Acl", &[], request, response)?,
        build(
            "Fault",
            &[("abort_prob".to_owned(), Value::F64(fault_prob))],
            request,
            response,
        )?,
    ])
}

/// Builds the paper §2 example chain: LB by object id → compression →
/// access control (+ decompression on the receive side).
pub fn section2_chain(
    request: &RpcSchema,
    response: &RpcSchema,
) -> Result<Vec<ElementIr>, BuildError> {
    Ok(vec![
        build("LoadBalancer", &[], request, response)?,
        build("Compress", &[], request, response)?,
        build("Acl", &[], request, response)?,
        build("Decompress", &[], request, response)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_rpc::value::ValueType;

    fn schemas() -> (RpcSchema, RpcSchema) {
        (
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn every_standard_element_builds_against_conventional_schema() {
        let (req, resp) = schemas();
        for name in standard_names() {
            build(name, &[], &req, &resp)
                .unwrap_or_else(|e| panic!("element {name} failed to build: {e}"));
        }
    }

    #[test]
    fn unknown_element_reports_cleanly() {
        let (req, resp) = schemas();
        assert!(matches!(
            build("Ghost", &[], &req, &resp),
            Err(BuildError::UnknownElement(_))
        ));
    }

    #[test]
    fn elements_fail_against_incompatible_schema() {
        // Schema without `username`: ACL cannot bind.
        let req = RpcSchema::builder()
            .field("k", ValueType::U64)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .build()
            .unwrap();
        assert!(matches!(
            build("Acl", &[], &req, &resp),
            Err(BuildError::Frontend(_))
        ));
    }

    #[test]
    fn paper_chains_build() {
        let (req, resp) = schemas();
        let chain = paper_eval_chain(&req, &resp, 0.02).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain[0].name, "Logging");
        let chain = section2_chain(&req, &resp).unwrap();
        assert_eq!(chain.len(), 4);
    }

    #[test]
    fn fault_prob_argument_binds() {
        let (req, resp) = schemas();
        let e = build(
            "Fault",
            &[("abort_prob".to_owned(), Value::F64(0.5))],
            &req,
            &resp,
        )
        .unwrap();
        // The constant should appear in the lowered IR.
        let mut saw = false;
        for s in e.all_stmts() {
            for expr in s.expressions() {
                expr.walk(&mut |n| {
                    if let adn_ir::IrExpr::Const(Value::F64(v)) = n {
                        if *v == 0.5 {
                            saw = true;
                        }
                    }
                });
            }
        }
        assert!(saw);
    }
}
