//! DSL sources of the standard elements.
//!
//! The paper §6 observes that "standard SQL syntax was rich enough" for the
//! three evaluation elements — these sources show what that looks like.
//! Each element is "tens of lines of SQL" against the "hundreds of lines of
//! Rust" in `handcoded` (experiment E3 quantifies the ratio).

/// Logging: records request and response metadata into a state table
/// (paper §6: "records both the request and response").
pub const LOGGING: &str = r#"
-- Record both directions of every RPC into the log table. The capacity
-- bound gives log-rotation semantics: the newest 65536 records are kept.
element Logging() {
    state log_tab(seq: u64 key, direction: string, username: string, object_id: u64) capacity 65536;
    on request {
        INSERT INTO log_tab VALUES (now(), 'req', input.username, input.object_id);
        SELECT * FROM input;
    }
    on response {
        INSERT INTO log_tab VALUES (now(), 'resp', '', 0);
        SELECT * FROM input;
    }
}
"#;

/// Access control list: drops requests from users without write permission
/// (paper Figure 4).
pub const ACL: &str = r#"
-- Block users that do not have write permission (paper Figure 4).
element Acl() {
    state ac_tab(username: string key, permission: string) init {
        ('alice', 'W'),
        ('bob', 'R'),
        ('carol', 'W'),
        ('dave', 'W'),
        ('eve', 'R')
    };
    on request {
        SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
        WHERE ac_tab.permission == 'W'
        ELSE ABORT(7, 'permission denied');
    }
}
"#;

/// Fault injection: aborts requests with a configured probability
/// (paper §6: "aborts requests based on a configured probability").
pub const FAULT: &str = r#"
-- Abort a configurable fraction of requests.
element Fault(abort_prob: f64 = 0.02) {
    on request {
        ABORT(3, 'fault injected') WHERE random() < abort_prob;
        SELECT * FROM input;
    }
}
"#;

/// Key-based load balancer: routes to a replica by object id (paper §2:
/// "load balance RPC requests from A to B.1 or B.2 based on the object
/// identifier in the request").
pub const LOAD_BALANCER: &str = r#"
-- Pick a destination replica by stable hash of the object id.
element LoadBalancer() {
    on request {
        ROUTE input.object_id;
        SELECT * FROM input;
    }
}
"#;

/// Request-payload compression (paper §2's compress step, sender side).
/// Direction matters: a chain element sits at one point on the path, so
/// compressing responses is a separate element pair
/// ([`COMPRESS_RESPONSE`], placed at the receiver side).
pub const COMPRESS: &str = r#"
element Compress() {
    on request {
        SET payload = compress(input.payload);
        SELECT * FROM input;
    }
}
"#;

/// Request-payload decompression (paper §2's decompress step, receiver
/// side).
pub const DECOMPRESS: &str = r#"
element Decompress() {
    on request {
        SET payload = decompress(input.payload);
        SELECT * FROM input;
    }
}
"#;

/// Response-payload compression: runs at the *receiver* side (the response
/// originates there), compressing before the wire.
pub const COMPRESS_RESPONSE: &str = r#"
element CompressResponse() {
    on response {
        SET payload = compress(input.payload);
        SELECT * FROM input;
    }
}
"#;

/// Response-payload decompression: runs at the *sender* side, restoring
/// the response before the application sees it.
pub const DECOMPRESS_RESPONSE: &str = r#"
element DecompressResponse() {
    on response {
        SET payload = decompress(input.payload);
        SELECT * FROM input;
    }
}
"#;

/// Payload encryption (sender side; paper §4 Q1's co-location example).
pub const ENCRYPT: &str = r#"
element Encrypt(secret: string = 'adn-demo-key') {
    on request {
        SET payload = encrypt(input.payload, secret);
        SELECT * FROM input;
    }
}
"#;

/// Payload decryption (receiver side).
pub const DECRYPT: &str = r#"
element Decrypt(secret: string = 'adn-demo-key') {
    on request {
        SET payload = decrypt(input.payload, secret);
        SELECT * FROM input;
    }
}
"#;

/// Per-user admission quota: after `limit` requests from a user, further
/// requests are shed (a simple "shaping" filter expressible in pure SQL).
pub const QUOTA: &str = r#"
element Quota(limit: u64 = 1000) {
    state used(username: string key, n: u64);
    on request {
        UPDATE used SET n = used.n + 1 WHERE used.username == input.username;
        INSERT INTO used VALUES (input.username, 1);
        SELECT * FROM input JOIN used ON input.username == used.username
        WHERE used.n <= limit;
    }
}
"#;

/// Request mutation: tags large payloads by rewriting the object id space
/// (demonstrates CASE and projection rewrites).
pub const TAGGER: &str = r#"
element Tagger(cutoff: u64 = 1024) {
    on request {
        SET object_id = CASE WHEN len(input.payload) > cutoff
                             THEN input.object_id + 1000000
                             ELSE input.object_id END;
        SELECT * FROM input;
    }
}
"#;

/// Best-effort per-user telemetry counters. Marked drop-insensitive by the
/// facade when installed, so the optimizer may move droppers past it.
pub const METRICS: &str = r#"
element Metrics() {
    state hits(username: string key, n: u64);
    on request {
        UPDATE hits SET n = hits.n + 1 WHERE hits.username == input.username;
        INSERT INTO hits VALUES (input.username, 1);
        SELECT * FROM input;
    }
}
"#;

/// Numeric firewall: drops a configurable blocked object id (fits the
/// switch backend's exact-match model, used by offload examples).
pub const FIREWALL: &str = r#"
element Firewall(blocked: u64 = 0) {
    on request {
        DROP WHERE input.object_id == blocked;
        SELECT * FROM input;
    }
}
"#;

/// All standard elements as (name, source) pairs.
pub const ALL: &[(&str, &str)] = &[
    ("Logging", LOGGING),
    ("Acl", ACL),
    ("Fault", FAULT),
    ("LoadBalancer", LOAD_BALANCER),
    ("Compress", COMPRESS),
    ("Decompress", DECOMPRESS),
    ("CompressResponse", COMPRESS_RESPONSE),
    ("DecompressResponse", DECOMPRESS_RESPONSE),
    ("Encrypt", ENCRYPT),
    ("Decrypt", DECRYPT),
    ("Quota", QUOTA),
    ("Tagger", TAGGER),
    ("Metrics", METRICS),
    ("Firewall", FIREWALL),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sources_parse() {
        for (name, src) in ALL {
            adn_dsl::parse_element(src)
                .unwrap_or_else(|e| panic!("element {name} does not parse: {e}"));
        }
    }

    #[test]
    fn names_match_element_definitions() {
        for (name, src) in ALL {
            let def = adn_dsl::parse_element(src).unwrap();
            assert_eq!(&def.name, name, "catalog name mismatch");
        }
    }

    #[test]
    fn no_duplicate_names() {
        for (i, (a, _)) in ALL.iter().enumerate() {
            for (b, _) in &ALL[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
