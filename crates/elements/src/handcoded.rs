//! Hand-optimized native engines.
//!
//! Paper §6: "We also compare against hand-written mRPC modules to
//! understand the ease of development in our DSL versus Rust ... The mRPC
//! modules were written by mRPC developers for high performance." These are
//! those modules for our substrate: the exact semantics of the DSL elements
//! in `sources`, written directly against the message representation with
//! pre-resolved field indices, no interpretation, and no per-message
//! allocation beyond what the semantics require.
//!
//! Figure 5's third bar (and experiment E6's baseline) comes from here: the
//! compiled DSL plans are expected to be a few percent slower than these.

use std::collections::HashMap;

use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::schema::RpcSchema;
use adn_rpc::transport::EndpointAddr;
use adn_rpc::value::Value;
use adn_wire::codec::{Decoder, Encoder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One log record kept by [`HandLogging`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogRecord {
    pub seq: u64,
    pub is_request: bool,
    pub username: String,
    pub object_id: u64,
}

/// Retained log records (matches the DSL element's `capacity 65536`).
pub const LOG_CAPACITY: usize = 65536;

/// Hand-written logging engine: appends one record per message direction,
/// rotating past [`LOG_CAPACITY`].
pub struct HandLogging {
    username_idx: usize,
    object_id_idx: usize,
    seq: u64,
    records: std::collections::VecDeque<LogRecord>,
}

impl HandLogging {
    /// Resolves field indices once, up front (the hand-coded style).
    pub fn new(request_schema: &RpcSchema) -> Self {
        Self {
            username_idx: request_schema.index_of("username").expect("username field"),
            object_id_idx: request_schema
                .index_of("object_id")
                .expect("object_id field"),
            seq: 0,
            records: std::collections::VecDeque::new(),
        }
    }

    /// Records captured so far (oldest first).
    pub fn records(&self) -> &std::collections::VecDeque<LogRecord> {
        &self.records
    }
}

impl Engine for HandLogging {
    fn name(&self) -> &str {
        "hand_logging"
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        self.seq += 1;
        let record = match msg.kind {
            MessageKind::Request => LogRecord {
                seq: self.seq,
                is_request: true,
                username: match msg.get_idx(self.username_idx) {
                    Value::Str(s) => s.clone(),
                    _ => String::new(),
                },
                object_id: msg.get_idx(self.object_id_idx).as_u64().unwrap_or(0),
            },
            MessageKind::Response => LogRecord {
                seq: self.seq,
                is_request: false,
                username: String::new(),
                object_id: 0,
            },
        };
        if self.records.len() >= LOG_CAPACITY {
            self.records.pop_front();
        }
        self.records.push_back(record);
        Verdict::Forward
    }

    fn export_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_u64(self.seq);
        enc.put_varint(self.records.len() as u64);
        for r in &self.records {
            enc.put_u64(r.seq);
            enc.put_u8(r.is_request as u8);
            enc.put_str(&r.username);
            enc.put_u64(r.object_id);
        }
        enc.into_bytes()
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(image);
        let seq = dec.get_u64().map_err(|e| e.to_string())?;
        let count = dec.get_varint().map_err(|e| e.to_string())?;
        let mut records = std::collections::VecDeque::with_capacity(count as usize);
        for _ in 0..count {
            records.push_back(LogRecord {
                seq: dec.get_u64().map_err(|e| e.to_string())?,
                is_request: dec.get_u8().map_err(|e| e.to_string())? != 0,
                username: dec.get_str().map_err(|e| e.to_string())?.to_owned(),
                object_id: dec.get_u64().map_err(|e| e.to_string())?,
            });
        }
        self.seq = seq;
        self.records = records;
        Ok(())
    }
}

/// Hand-written ACL: a `HashMap<String, bool>` of users with write access.
pub struct HandAcl {
    username_idx: usize,
    writers: HashMap<String, bool>,
}

impl HandAcl {
    /// Builds from (username, permission) pairs — `"W"` grants access.
    pub fn new(request_schema: &RpcSchema, entries: &[(&str, &str)]) -> Self {
        Self {
            username_idx: request_schema.index_of("username").expect("username field"),
            writers: entries
                .iter()
                .map(|(u, p)| (u.to_string(), *p == "W"))
                .collect(),
        }
    }

    /// The default table matching `sources::ACL`'s init rows.
    pub fn with_default_table(request_schema: &RpcSchema) -> Self {
        Self::new(
            request_schema,
            &[
                ("alice", "W"),
                ("bob", "R"),
                ("carol", "W"),
                ("dave", "W"),
                ("eve", "R"),
            ],
        )
    }
}

impl Engine for HandAcl {
    fn name(&self) -> &str {
        "hand_acl"
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        if msg.kind != MessageKind::Request {
            return Verdict::Forward;
        }
        let Value::Str(user) = msg.get_idx(self.username_idx) else {
            return Verdict::abort_permission_denied();
        };
        match self.writers.get(user) {
            Some(true) => Verdict::Forward,
            // Known reader or unknown user: deny with code 7, matching the
            // DSL element's ELSE ABORT clause.
            _ => Verdict::abort_permission_denied(),
        }
    }

    fn export_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        // Deterministic order for byte-stable snapshots.
        let mut entries: Vec<(&String, &bool)> = self.writers.iter().collect();
        entries.sort();
        enc.put_varint(entries.len() as u64);
        for (user, w) in entries {
            enc.put_str(user);
            enc.put_u8(*w as u8);
        }
        enc.into_bytes()
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(image);
        let count = dec.get_varint().map_err(|e| e.to_string())?;
        let mut writers = HashMap::with_capacity(count as usize);
        for _ in 0..count {
            let user = dec.get_str().map_err(|e| e.to_string())?.to_owned();
            let w = dec.get_u8().map_err(|e| e.to_string())? != 0;
            writers.insert(user, w);
        }
        self.writers = writers;
        Ok(())
    }
}

/// Hand-written fault injection: aborts with probability `abort_prob`.
pub struct HandFault {
    abort_prob: f64,
    rng: StdRng,
}

impl HandFault {
    pub fn new(abort_prob: f64, seed: u64) -> Self {
        Self {
            abort_prob,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Engine for HandFault {
    fn name(&self) -> &str {
        "hand_fault"
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        if msg.kind != MessageKind::Request {
            return Verdict::Forward;
        }
        if self.rng.gen::<f64>() < self.abort_prob {
            Verdict::Abort {
                code: 3,
                message: "fault injected".to_owned(),
            }
        } else {
            Verdict::Forward
        }
    }
}

/// Hand-written key-hash load balancer over a replica set.
pub struct HandLoadBalancer {
    key_idx: usize,
    replicas: Vec<EndpointAddr>,
}

impl HandLoadBalancer {
    pub fn new(request_schema: &RpcSchema, key_field: &str, replicas: Vec<EndpointAddr>) -> Self {
        Self {
            key_idx: request_schema.index_of(key_field).expect("key field"),
            replicas,
        }
    }
}

impl Engine for HandLoadBalancer {
    fn name(&self) -> &str {
        "hand_lb"
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        if msg.kind == MessageKind::Request && !self.replicas.is_empty() {
            let h = msg.get_idx(self.key_idx).stable_hash();
            msg.dst = self.replicas[(h % self.replicas.len() as u64) as usize];
        }
        Verdict::Forward
    }
}

/// Hand-written request-payload compression engine, matching
/// `sources::COMPRESS`.
pub struct HandCompress {
    payload_req_idx: usize,
}

impl HandCompress {
    pub fn new(request_schema: &RpcSchema) -> Self {
        Self {
            payload_req_idx: request_schema.index_of("payload").expect("payload field"),
        }
    }
}

impl Engine for HandCompress {
    fn name(&self) -> &str {
        "hand_compress"
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        if msg.kind != MessageKind::Request {
            return Verdict::Forward;
        }
        if let Value::Bytes(b) = msg.get_idx(self.payload_req_idx) {
            let compressed = adn_backend::udf_impl::compress(b);
            msg.set_idx(self.payload_req_idx, Value::Bytes(compressed));
        }
        Verdict::Forward
    }
}

/// Builds the hand-coded equivalent of the paper's evaluation chain
/// (Logging → ACL → Fault), for Figure 5's third configuration.
pub fn paper_eval_chain_handcoded(
    request_schema: &RpcSchema,
    fault_prob: f64,
    seed: u64,
) -> Vec<Box<dyn Engine>> {
    vec![
        Box::new(HandLogging::new(request_schema)),
        Box::new(HandAcl::with_default_table(request_schema)),
        Box::new(HandFault::new(fault_prob, seed)),
    ]
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_backend::native::{compile_element, CompileOpts};
    use adn_rpc::value::ValueType;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn request(oid: u64, user: &str) -> RpcMessage {
        let (req, _) = schemas();
        RpcMessage::request(1, 1, req)
            .with("object_id", oid)
            .with("username", user)
            .with("payload", b"hello".to_vec())
    }

    #[test]
    fn hand_acl_matches_dsl_acl_behaviour() {
        let (req_schema, resp_schema) = schemas();
        let dsl = crate::build("Acl", &[], &req_schema, &resp_schema).unwrap();
        let mut compiled = compile_element(&dsl, &CompileOpts::default());
        let mut hand = HandAcl::with_default_table(&req_schema);

        for user in ["alice", "bob", "carol", "dave", "eve", "mallory", ""] {
            let mut m1 = request(1, user);
            let mut m2 = m1.clone();
            assert_eq!(
                compiled.process(&mut m1),
                hand.process(&mut m2),
                "divergence for user {user:?}"
            );
        }
    }

    #[test]
    fn hand_logging_counts_both_directions() {
        let (req_schema, resp_schema) = schemas();
        let mut log = HandLogging::new(&req_schema);
        let req = request(7, "alice");
        let mut m = req.clone();
        log.process(&mut m);
        let mut resp = RpcMessage::response_to(&req, resp_schema);
        log.process(&mut resp);
        assert_eq!(log.records().len(), 2);
        assert!(log.records()[0].is_request);
        assert_eq!(log.records()[0].username, "alice");
        assert!(!log.records()[1].is_request);
    }

    #[test]
    fn hand_logging_state_roundtrip() {
        let (req_schema, _) = schemas();
        let mut log = HandLogging::new(&req_schema);
        let mut m = request(7, "alice");
        log.process(&mut m);
        let image = log.export_state();
        let mut fresh = HandLogging::new(&req_schema);
        fresh.import_state(&image).unwrap();
        assert_eq!(fresh.records(), log.records());
        assert_eq!(fresh.export_state(), image);
    }

    #[test]
    fn hand_fault_rate() {
        let mut fault = HandFault::new(0.25, 9);
        let mut aborted = 0;
        for i in 0..4000 {
            let mut m = request(i, "alice");
            if !fault.process(&mut m).is_forward() {
                aborted += 1;
            }
        }
        let rate = aborted as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.03, "rate {rate}");
    }

    #[test]
    fn hand_lb_spreads_and_is_stable() {
        let (req_schema, _) = schemas();
        let mut lb = HandLoadBalancer::new(&req_schema, "object_id", vec![10, 20, 30]);
        let mut seen = std::collections::HashSet::new();
        for i in 0..50 {
            let mut m = request(i, "alice");
            lb.process(&mut m);
            seen.insert(m.dst);
            let mut again = request(i, "alice");
            lb.process(&mut again);
            assert_eq!(m.dst, again.dst);
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn hand_lb_matches_dsl_route() {
        let (req_schema, resp_schema) = schemas();
        let dsl = crate::build("LoadBalancer", &[], &req_schema, &resp_schema).unwrap();
        let mut compiled = compile_element(
            &dsl,
            &CompileOpts {
                seed: 0,
                replicas: vec![10, 20, 30],
                ..Default::default()
            },
        );
        let mut hand = HandLoadBalancer::new(&req_schema, "object_id", vec![10, 20, 30]);
        for i in 0..100 {
            let mut m1 = request(i, "alice");
            let mut m2 = m1.clone();
            compiled.process(&mut m1);
            hand.process(&mut m2);
            assert_eq!(m1.dst, m2.dst, "replica choice diverged for key {i}");
        }
    }

    #[test]
    fn hand_compress_matches_dsl_compress() {
        let (req_schema, resp_schema) = schemas();
        let dsl = crate::build("Compress", &[], &req_schema, &resp_schema).unwrap();
        let mut compiled = compile_element(&dsl, &CompileOpts::default());
        let mut hand = HandCompress::new(&req_schema);
        let mut m1 = request(1, "alice").with("payload", vec![7u8; 300]);
        let mut m2 = m1.clone();
        compiled.process(&mut m1);
        hand.process(&mut m2);
        assert_eq!(m1.fields, m2.fields);
    }

    #[test]
    fn handcoded_chain_builds() {
        let (req_schema, _) = schemas();
        let chain = paper_eval_chain_handcoded(&req_schema, 0.02, 1);
        assert_eq!(chain.len(), 3);
    }
}
