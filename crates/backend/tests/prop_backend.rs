//! Property tests for the backend:
//!
//! * **Reordering preserves semantics** (paper §3, Configuration 3): for
//!   random chains built from a pool of deterministic elements and random
//!   RPC streams, the optimized chain and the original chain produce
//!   identical verdicts and identical field values.
//! * **Commute soundness**: whenever the analysis says two elements
//!   commute, executing them in either order agrees on every message.
//! * **Codec safety**: compression and encryption roundtrip arbitrary
//!   payloads; decompress never panics on garbage.
//! * **eBPF vs. software equivalence**: for elements both backends accept,
//!   the eBPF interpreter and the native engine agree.
//! * **ISA round-trips**: every `BpfInsn` survives `decode(encode(_))`,
//!   and `lift(assemble(_))` is the identity on compiled element programs.
//! * **Three-way differential**: random arithmetic elements agree across
//!   the native engine, the legacy B-code interpreter, and the encoded
//!   eBPF interpreter — verdicts and field values both. Expressions are
//!   bounded (no subtraction, divisors ≥ 1) so native checked arithmetic
//!   cannot error where eBPF would wrap; the wrap/trap divergence itself
//!   is documented and pinned in `tests/conformance.rs`.

use adn_backend::native::{compile_element, CompileOpts};
use adn_backend::udf_impl::{compress, decompress, xor_stream, UdfRuntime};
use adn_backend::{ebpf, isa, native};
use adn_dsl::parser::parse_element;
use adn_dsl::typecheck::check_element;
use adn_ir::{optimize, ChainIr, ElementIr, PassConfig};
use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::RpcMessage;
use adn_rpc::schema::RpcSchema;
use adn_rpc::value::{Value, ValueType};
use proptest::prelude::*;
use std::sync::Arc;

fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
    (
        Arc::new(
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        ),
        Arc::new(
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
        ),
    )
}

fn lower(src: &str) -> ElementIr {
    let (req, resp) = schemas();
    let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
    adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
}

/// Pool of deterministic elements for chain-equivalence tests. (Elements
/// using `random()` are excluded: reordering around them is already barred
/// by the commute rule, and their RNG streams make byte-equality checks
/// meaningless.)
fn element_pool() -> Vec<ElementIr> {
    vec![
        lower(
            r#"element Acl() {
                state ac_tab(username: string key, permission: string) init {
                    ('alice', 'W'), ('bob', 'R'), ('carol', 'W')
                };
                on request {
                    SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                    WHERE ac_tab.permission == 'W';
                }
            }"#,
        ),
        lower(
            "element Compress() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        ),
        lower(
            "element Encrypt() { on request { SET payload = encrypt(input.payload, 'k1'); SELECT * FROM input; } }",
        ),
        lower(
            "element IdShift() { on request { SET object_id = input.object_id + 1; SELECT * FROM input; } }",
        ),
        lower(
            "element SmallDrop() { on request { DROP WHERE input.object_id % 7 == 0; SELECT * FROM input; } }",
        ),
        lower(
            "element HashRewrite() { on request { SELECT hash(input.username) AS object_id FROM input; } }",
        ),
        lower(
            r#"element Metrics() {
                state counts(username: string key, n: u64);
                on request {
                    INSERT INTO counts VALUES (input.username, 0);
                    UPDATE counts SET n = counts.n + 1 WHERE counts.username == input.username;
                    SELECT * FROM input;
                }
            }"#,
        ),
    ]
}

fn arb_message() -> impl Strategy<Value = (u64, String, Vec<u8>)> {
    (
        any::<u64>(),
        prop_oneof![
            Just("alice".to_owned()),
            Just("bob".to_owned()),
            Just("carol".to_owned()),
            Just("eve".to_owned()),
        ],
        proptest::collection::vec(any::<u8>(), 0..128),
    )
}

fn make_request(oid: u64, user: &str, payload: &[u8]) -> RpcMessage {
    let (req, _) = schemas();
    RpcMessage::request(1, 1, req)
        .with("object_id", oid)
        .with("username", user)
        .with("payload", payload.to_vec())
}

/// Runs a message through a chain of engines (short-circuiting).
fn run_chain(engines: &mut [native::NativeEngine], msg: &mut RpcMessage) -> Verdict {
    for e in engines.iter_mut() {
        match e.process(msg) {
            Verdict::Forward => continue,
            other => return other,
        }
    }
    Verdict::Forward
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimized_chain_is_equivalent(
        picks in proptest::collection::vec(0usize..7, 1..5),
        msgs in proptest::collection::vec(arb_message(), 1..20),
    ) {
        let pool = element_pool();
        let elements: Vec<ElementIr> = picks.iter().map(|&i| pool[i].clone()).collect();
        let (req, resp) = schemas();
        let chain = ChainIr::new(elements.clone(), req, resp);
        let (optimized, _report) = optimize(chain, &PassConfig::default());

        let opts = CompileOpts { seed: 11, replicas: vec![],
    ..Default::default()
};
        let mut base: Vec<_> = elements.iter().map(|e| compile_element(e, &opts)).collect();
        let mut opt: Vec<_> = optimized.elements.iter().map(|e| compile_element(e, &opts)).collect();

        for (oid, user, payload) in &msgs {
            let mut a = make_request(*oid, user, payload);
            let mut b = a.clone();
            let va = run_chain(&mut base, &mut a);
            let vb = run_chain(&mut opt, &mut b);
            prop_assert_eq!(&va, &vb, "verdicts diverged");
            if va == Verdict::Forward {
                prop_assert_eq!(&a.fields, &b.fields, "fields diverged");
            }
        }
    }

    #[test]
    fn commute_judgment_is_sound(
        i in 0usize..7,
        j in 0usize..7,
        msgs in proptest::collection::vec(arb_message(), 1..20),
    ) {
        let pool = element_pool();
        let (a, b) = (pool[i].clone(), pool[j].clone());
        prop_assume!(adn_ir::analysis::commute(&a, &b));

        let opts = CompileOpts { seed: 3, replicas: vec![],
    ..Default::default()
};
        let mut ab = vec![compile_element(&a, &opts), compile_element(&b, &opts)];
        let mut ba = vec![compile_element(&b, &opts), compile_element(&a, &opts)];

        for (oid, user, payload) in &msgs {
            let mut m1 = make_request(*oid, user, payload);
            let mut m2 = m1.clone();
            let v1 = run_chain(&mut ab, &mut m1);
            let v2 = run_chain(&mut ba, &mut m2);
            prop_assert_eq!(&v1, &v2, "claimed-commuting pair diverged on verdict");
            if v1 == Verdict::Forward {
                prop_assert_eq!(&m1.fields, &m2.fields, "claimed-commuting pair diverged on fields");
            }
        }
        // State must also agree.
        for (e1, e2) in ab.iter().zip([&ba[1], &ba[0]]) {
            prop_assert_eq!(e1.export_state(), e2.export_state(), "state diverged");
        }
    }

    #[test]
    fn compress_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        prop_assert_eq!(decompress(&compress(&data)).unwrap(), data);
    }

    #[test]
    fn decompress_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }

    #[test]
    fn encryption_involutive(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        key in "[a-z]{1,12}",
    ) {
        prop_assert_eq!(xor_stream(&xor_stream(&data, &key), &key), data);
    }

    #[test]
    fn ebpf_agrees_with_native_on_numeric_filters(
        oid in 0u64..1_000_000,
        threshold in 0u64..1_000,
    ) {
        // A deterministic numeric dropper both backends accept.
        let src = format!(
            "element F() {{ on request {{ DROP WHERE input.object_id % 1000 < {threshold}; SELECT * FROM input; }} }}"
        );
        let element = lower(&src);

        // Native.
        let mut n = compile_element(&element, &CompileOpts::default());
        let mut msg = make_request(oid, "alice", b"x");
        let nv = n.process(&mut msg);

        // eBPF.
        let (req, _) = schemas();
        let types: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let compiled = ebpf::compile_for_schema(&element, &types, &[ValueType::Bool, ValueType::Bytes]).unwrap();
        let mut fields = vec![
            Value::U64(oid),
            Value::Str("alice".into()),
            Value::Bytes(b"x".to_vec()),
        ];
        let mut maps = ebpf::EbpfMaps::for_element(&compiled);
        let mut udf = UdfRuntime::new(0);
        let mut route = ebpf::RouteDecision::default();
        let ev = ebpf::execute(&compiled.request, &mut fields, &mut maps, &mut udf, &mut route);

        let native_dropped = nv == Verdict::Drop;
        let ebpf_dropped = ev == ebpf::EbpfVerdict::Drop;
        prop_assert_eq!(native_dropped, ebpf_dropped);
    }

    #[test]
    fn ebpf_verifier_never_panics_on_random_programs(
        insns in proptest::collection::vec(arb_insn(), 0..64),
    ) {
        let prog = ebpf::EbpfProgram { insns };
        let _ = ebpf::verify(&prog, 2);
    }

    #[test]
    fn isa_word_encoding_roundtrips(
        opcode in any::<u8>(),
        dst in 0u8..16,
        src in 0u8..16,
        off in any::<i16>(),
        imm in any::<i32>(),
    ) {
        // The register nibbles are the only fields narrower than their
        // struct type; everything else occupies its full bit width.
        let insn = isa::BpfInsn { opcode, dst, src, off, imm };
        prop_assert_eq!(isa::BpfInsn::decode(insn.encode()), insn);
    }

    #[test]
    fn assemble_lift_roundtrips_compiled_elements(pick in 0usize..4) {
        let element = lower(offloadable_pool()[pick]);
        let (req, _) = schemas();
        let types: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let compiled =
            ebpf::compile_for_schema(&element, &types, &[ValueType::Bool, ValueType::Bytes])
                .unwrap();
        for prog in [&compiled.request, &compiled.response] {
            let assembled = isa::assemble(prog).unwrap();
            let lifted = isa::lift(&assembled.insns).unwrap();
            prop_assert_eq!(&lifted.insns, &prog.insns);
        }
    }

    #[test]
    fn encoded_interpreter_agrees_with_native_and_legacy(
        oid in any::<u64>(),
        ops in proptest::collection::vec((0usize..4, 1u64..10), 0..4),
    ) {
        // Fold a bounded expression over `input.object_id % 997`: only
        // {+, *, /, %} with small constants, so the value stays far below
        // u64::MAX and native checked arithmetic never traps where the
        // eBPF backends would wrap.
        let mut expr = "(input.object_id % 997)".to_owned();
        for (op, c) in &ops {
            let sym = ["+", "*", "/", "%"][*op];
            expr = format!("({expr} {sym} {c})");
        }
        let src = format!(
            "element D() {{ on request {{ DROP WHERE {expr} % 2 == 0; SET object_id = {expr}; SELECT * FROM input; }} }}"
        );
        let element = lower(&src);

        // Native engine.
        let mut n = compile_element(&element, &CompileOpts::default());
        let mut msg = make_request(oid, "alice", b"x");
        let nv = n.process(&mut msg);

        // Legacy B-code interpreter and the encoded real-ISA interpreter,
        // fed identical field vectors.
        let (req, _) = schemas();
        let types: Vec<ValueType> = req.fields().iter().map(|f| f.ty).collect();
        let compiled =
            ebpf::compile_for_schema(&element, &types, &[ValueType::Bool, ValueType::Bytes])
                .unwrap();
        let start_fields = vec![
            Value::U64(oid),
            Value::Str("alice".into()),
            Value::Bytes(b"x".to_vec()),
        ];

        let mut legacy_fields = start_fields.clone();
        let mut maps = ebpf::EbpfMaps::for_element(&compiled);
        let mut udf = UdfRuntime::new(0);
        let mut route = ebpf::RouteDecision::default();
        let lv = ebpf::execute(
            &compiled.request,
            &mut legacy_fields,
            &mut maps,
            &mut udf,
            &mut route,
        );

        let assembled = isa::assemble(&compiled.request).unwrap();
        let mut encoded_fields = start_fields;
        let mut maps2 = ebpf::EbpfMaps::for_element(&compiled);
        let mut udf2 = UdfRuntime::new(0);
        let mut route2 = ebpf::RouteDecision::default();
        let ev = isa::execute_encoded(
            &assembled.insns,
            &mut encoded_fields,
            &mut maps2,
            &mut udf2,
            &mut route2,
        )
        .unwrap();

        prop_assert_eq!(&lv, &ev, "legacy and encoded verdicts diverged");
        let dropped = nv == Verdict::Drop;
        prop_assert_eq!(dropped, lv == ebpf::EbpfVerdict::Drop, "native and eBPF verdicts diverged");
        if !dropped {
            prop_assert_eq!(
                msg.get("object_id"),
                legacy_fields.first(),
                "native and legacy fields diverged"
            );
            prop_assert_eq!(&legacy_fields, &encoded_fields, "legacy and encoded fields diverged");
        }
    }
}

/// Elements every backend offloads: pure field arithmetic, filters, and
/// the hash helper — no state tables, payload codecs, or randomness.
fn offloadable_pool() -> Vec<&'static str> {
    vec![
        "element F() { on request { DROP WHERE input.object_id % 7 == 0; SELECT * FROM input; } }",
        "element G() { on request { SET object_id = input.object_id * 3 + 1; SELECT * FROM input; } }",
        "element H() { on request { SELECT hash(input.username) AS object_id FROM input; } }",
        "element I() { on request { DROP WHERE hash(input.username) % 2 == 0; SELECT * FROM input; } }",
    ]
}

fn arb_insn() -> impl Strategy<Value = ebpf::Insn> {
    use ebpf::{AluOp, CmpOp, Insn};
    prop_oneof![
        (0u8..12, any::<u64>()).prop_map(|(dst, imm)| Insn::LdImm { dst, imm }),
        (0u8..12, 0u16..8).prop_map(|(dst, field)| Insn::LdField { dst, field }),
        (0u16..8, 0u8..12).prop_map(|(field, src)| Insn::StField { field, src }),
        (0u8..12, 0u8..12).prop_map(|(dst, src)| Insn::Mov { dst, src }),
        (0u8..12, 0u8..12).prop_map(|(dst, src)| Insn::Alu {
            op: AluOp::Add,
            dst,
            src
        }),
        (0u16..64).prop_map(|off| Insn::Jmp { off }),
        (0u8..12, 0u8..12, 0u16..64).prop_map(|(a, b, off)| Insn::JmpIf {
            cmp: CmpOp::Eq,
            signed: false,
            a,
            b,
            off
        }),
        (0u8..4, 0u8..12, 0u8..12, 0u16..64).prop_map(|(map, key, dst, miss_off)| {
            Insn::MapLookup {
                map,
                key,
                dst,
                miss_off,
            }
        }),
        (0u8..3).prop_map(|verdict| Insn::Ret { verdict }),
    ]
}
