//! ISA conformance corpus for the encoded eBPF interpreter.
//!
//! Table-driven programs built from raw instruction words, each checking
//! one documented semantic of the instruction set (RFC 9669 where the
//! kernel standardizes it): wrapping ALU64 arithmetic, `div 0 → 0`,
//! `mod 0 → dst unchanged`, cpuv4 `sdiv`/`smod`, masked shift amounts,
//! ALU32 zero-extension, the full jump family including JMP32 low-half
//! compares, sub-word stack accesses in little-endian byte order, the
//! two-slot `lddw`, and the verdict encoding in `r0`.
//!
//! Each case computes a value into `r2` and stores it through the context
//! pointer (`r1`) into field 0, where the harness asserts it.

use adn_backend::ebpf::{EbpfMaps, EbpfVerdict, RouteDecision};
use adn_backend::isa::{
    self, alu32_imm, alu32_reg, alu64_imm, alu64_reg, exit, ja, jmp_imm, jmp_reg, lddw, ldx,
    mov64_imm, mov64_reg, st, stx, BpfInsn,
};
use adn_backend::udf_impl::UdfRuntime;
use adn_rpc::value::Value;

/// Raw ALU64 reg-source instruction with an explicit `off` (for the
/// cpuv4 `sdiv`/`smod` selector, which the convenience constructors
/// don't expose).
fn alu64_off(op: u8, dst: u8, src: u8, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: isa::BPF_ALU64 | op | isa::BPF_X,
        dst,
        src,
        off,
        imm: 0,
    }
}

/// Raw ALU64 NEG (no constructor: it has no source operand).
fn neg64(dst: u8) -> BpfInsn {
    BpfInsn {
        opcode: isa::BPF_ALU64 | isa::BPF_NEG | isa::BPF_K,
        dst,
        src: 0,
        off: 0,
        imm: 0,
    }
}

/// Raw JMP32 immediate compare (32-bit low-half semantics).
fn jmp32_imm(op: u8, dst: u8, imm: i32, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: isa::BPF_JMP32 | op | isa::BPF_K,
        dst,
        src: 0,
        off,
        imm,
    }
}

fn run(insns: &[BpfInsn], fields: &mut [Value]) -> EbpfVerdict {
    let mut maps = EbpfMaps::default();
    let mut udf = UdfRuntime::new(0);
    let mut route = RouteDecision::default();
    isa::execute_encoded(insns, fields, &mut maps, &mut udf, &mut route)
        .unwrap_or_else(|e| panic!("program faulted: {e}\n{}", isa::disasm(insns)))
}

/// Appends the store-and-return epilogue: `fields[0] = r2; return 0`.
fn finish(mut body: Vec<BpfInsn>) -> Vec<BpfInsn> {
    body.push(stx(isa::BPF_DW, 1, 2, 0));
    body.push(mov64_imm(0, 0));
    body.push(exit());
    body
}

struct Case {
    name: &'static str,
    body: Vec<BpfInsn>,
    /// Initial value of context field 0.
    field0: u64,
    expect: u64,
}

fn cases() -> Vec<Case> {
    let mut v = Vec::new();
    let mut case = |name: &'static str, body: Vec<BpfInsn>, expect: u64| {
        v.push(Case {
            name,
            body,
            field0: 0,
            expect,
        })
    };

    // --- ALU64 ------------------------------------------------------------
    case(
        "add64_wraps",
        {
            let mut b = lddw(2, u64::MAX).to_vec();
            b.push(alu64_imm(isa::BPF_ADD, 2, 1));
            b
        },
        0,
    );
    case(
        "sub64_wraps",
        vec![mov64_imm(2, 0), alu64_imm(isa::BPF_SUB, 2, 1)],
        u64::MAX,
    );
    case(
        "mul64_wraps",
        {
            let mut b = lddw(2, 1 << 63).to_vec();
            b.push(alu64_imm(isa::BPF_MUL, 2, 2));
            b
        },
        0,
    );
    case(
        "div64_by_zero_yields_zero",
        vec![
            mov64_imm(2, 42),
            mov64_imm(3, 0),
            alu64_reg(isa::BPF_DIV, 2, 3),
        ],
        0,
    );
    case(
        "mod64_by_zero_keeps_dst",
        vec![
            mov64_imm(2, 42),
            mov64_imm(3, 0),
            alu64_reg(isa::BPF_MOD, 2, 3),
        ],
        42,
    );
    case(
        "div64_unsigned",
        {
            let mut b = lddw(2, u64::MAX).to_vec();
            b.push(mov64_imm(3, 2));
            b.push(alu64_reg(isa::BPF_DIV, 2, 3));
            b
        },
        u64::MAX / 2,
    );
    case(
        "sdiv64_truncates_toward_zero",
        {
            let mut b = lddw(2, (-7i64) as u64).to_vec();
            b.push(mov64_imm(3, 2));
            b.push(alu64_off(isa::BPF_DIV, 2, 3, isa::OFF_SDIV));
            b
        },
        (-3i64) as u64,
    );
    case(
        "smod64_keeps_dividend_sign",
        {
            let mut b = lddw(2, (-7i64) as u64).to_vec();
            b.push(mov64_imm(3, 2));
            b.push(alu64_off(isa::BPF_MOD, 2, 3, isa::OFF_SDIV));
            b
        },
        (-1i64) as u64,
    );
    case(
        "and_or_xor",
        vec![
            mov64_imm(2, 0b1100),
            alu64_imm(isa::BPF_AND, 2, 0b1010), // 0b1000
            alu64_imm(isa::BPF_OR, 2, 0b0001),  // 0b1001
            alu64_imm(isa::BPF_XOR, 2, 0b1111), // 0b0110
        ],
        0b0110,
    );
    case(
        "lsh64_masks_shift_amount",
        vec![
            mov64_imm(2, 1),
            alu64_imm(isa::BPF_LSH, 2, 66), // 66 & 63 == 2
        ],
        4,
    );
    case(
        "rsh64_is_logical",
        {
            let mut b = lddw(2, u64::MAX).to_vec();
            b.push(alu64_imm(isa::BPF_RSH, 2, 63));
            b
        },
        1,
    );
    case(
        "arsh64_is_arithmetic",
        {
            let mut b = lddw(2, (-8i64) as u64).to_vec();
            b.push(alu64_imm(isa::BPF_ARSH, 2, 1));
            b
        },
        (-4i64) as u64,
    );
    case("neg64", vec![mov64_imm(2, 5), neg64(2)], (-5i64) as u64);
    case("mov64_imm_sign_extends", vec![mov64_imm(2, -1)], u64::MAX);

    // --- ALU32 ------------------------------------------------------------
    case(
        "add32_wraps_and_zero_extends",
        {
            let mut b = lddw(2, u64::MAX).to_vec();
            b.push(alu32_imm(isa::BPF_ADD, 2, 1)); // low32 0xffffffff + 1 → 0
            b
        },
        0,
    );
    case(
        "mov32_zero_extends",
        {
            let mut b = lddw(3, u64::MAX).to_vec();
            b.push(mov64_imm(2, 0));
            b.push(alu32_reg(isa::BPF_MOV, 2, 3));
            b
        },
        0xffff_ffff,
    );
    case(
        "arsh32_sign_extends_within_32",
        {
            let mut b = lddw(2, 0x8000_0000).to_vec();
            b.push(alu32_imm(isa::BPF_ARSH, 2, 31));
            b
        },
        0xffff_ffff,
    );
    case(
        "lsh32_masks_at_31",
        vec![
            mov64_imm(2, 1),
            alu32_imm(isa::BPF_LSH, 2, 33), // 33 & 31 == 1
        ],
        2,
    );

    // --- jumps ------------------------------------------------------------
    // Pattern: taken path lands on `mov r2, 222`, fall-through sets 111.
    let branch_case = |insn: BpfInsn| -> Vec<BpfInsn> {
        vec![
            insn, // off must be 2: skip the next two slots
            mov64_imm(2, 111),
            ja(1),
            mov64_imm(2, 222),
        ]
    };
    case(
        "jeq_taken",
        {
            let mut b = vec![mov64_imm(2, 9)];
            b.extend(branch_case(jmp_imm(isa::BPF_JEQ, 2, 9, 2)));
            b
        },
        222,
    );
    case(
        "jne_not_taken",
        {
            let mut b = vec![mov64_imm(2, 9)];
            b.extend(branch_case(jmp_imm(isa::BPF_JNE, 2, 9, 2)));
            b
        },
        111,
    );
    case(
        "jgt_unsigned_sees_neg_as_huge",
        {
            let mut b = lddw(2, (-1i64) as u64).to_vec();
            b.extend(branch_case(jmp_imm(isa::BPF_JGT, 2, 5, 2)));
            b
        },
        222,
    );
    case(
        "jsgt_signed_sees_neg_as_small",
        {
            let mut b = lddw(2, (-1i64) as u64).to_vec();
            b.extend(branch_case(jmp_imm(isa::BPF_JSGT, 2, 5, 2)));
            b
        },
        111,
    );
    case(
        "jslt_taken_on_negative",
        {
            let mut b = lddw(2, (-5i64) as u64).to_vec();
            b.extend(branch_case(jmp_imm(isa::BPF_JSLT, 2, -1, 2)));
            b
        },
        222,
    );
    case(
        "jle_reg_compare",
        {
            let mut b = vec![mov64_imm(2, 7), mov64_imm(3, 7)];
            b.extend(branch_case(jmp_reg(isa::BPF_JLE, 2, 3, 2)));
            b
        },
        222,
    );
    case(
        "jset_tests_intersection",
        {
            let mut b = vec![mov64_imm(2, 0b1010)];
            b.extend(branch_case(jmp_imm(isa::BPF_JSET, 2, 0b0100, 2)));
            b
        },
        111,
    );
    case(
        "jmp32_compares_low_halves",
        {
            // Full value differs from 2, low half equals 2 → JMP32 takes it.
            let mut b = lddw(2, 0x1_0000_0002).to_vec();
            b.extend(branch_case(jmp32_imm(isa::BPF_JEQ, 2, 2, 2)));
            b
        },
        222,
    );
    case(
        "jmp64_sees_high_half",
        {
            let mut b = lddw(2, 0x1_0000_0002).to_vec();
            b.extend(branch_case(jmp_imm(isa::BPF_JEQ, 2, 2, 2)));
            b
        },
        111,
    );

    // --- memory -----------------------------------------------------------
    case(
        "stack_bytes_are_little_endian",
        vec![
            st(isa::BPF_B, 10, -8, 0x78),
            st(isa::BPF_B, 10, -7, 0x56),
            st(isa::BPF_B, 10, -6, 0x34),
            st(isa::BPF_B, 10, -5, 0x12),
            ldx(isa::BPF_W, 2, 10, -8),
        ],
        0x1234_5678,
    );
    case(
        "st_dw_sign_extends_imm",
        vec![
            st(isa::BPF_DW, 10, -16, -1),
            ldx(isa::BPF_B, 2, 10, -9), // top byte of the doubleword
        ],
        0xff,
    );
    case(
        "sub_word_load_masks",
        vec![st(isa::BPF_DW, 10, -8, -1), ldx(isa::BPF_H, 2, 10, -8)],
        0xffff,
    );
    case(
        "stack_halfword_store",
        vec![
            mov64_imm(2, 0),
            st(isa::BPF_DW, 10, -8, 0),
            mov64_imm(3, 0xbeef),
            stx(isa::BPF_H, 10, 3, -8),
            ldx(isa::BPF_DW, 2, 10, -8),
        ],
        0xbeef,
    );
    case(
        "lddw_loads_full_64_bits",
        lddw(2, 0x0123_4567_89ab_cdef).to_vec(),
        0x0123_4567_89ab_cdef,
    );

    // --- context ----------------------------------------------------------
    v.push(Case {
        name: "ctx_load_reads_field",
        body: vec![ldx(isa::BPF_DW, 2, 1, 0), alu64_imm(isa::BPF_ADD, 2, 5)],
        field0: 37,
        expect: 42,
    });
    v.push(Case {
        name: "ctx_pointer_copies_like_a_scalar",
        body: vec![mov64_reg(9, 1), ldx(isa::BPF_DW, 2, 9, 0)],
        field0: 7,
        expect: 7,
    });

    v
}

#[test]
fn conformance_corpus() {
    for c in cases() {
        let insns = finish(c.body);
        let mut fields = vec![Value::U64(c.field0)];
        let v = run(&insns, &mut fields);
        assert_eq!(v, EbpfVerdict::Forward, "case `{}` verdict", c.name);
        assert_eq!(
            fields[0],
            Value::U64(c.expect),
            "case `{}`:\n{}",
            c.name,
            isa::disasm(&insns)
        );
    }
}

#[test]
fn verdicts_encode_in_r0() {
    let mut fields = vec![Value::U64(0)];
    let drop = vec![mov64_imm(0, 1), exit()];
    assert_eq!(run(&drop, &mut fields), EbpfVerdict::Drop);

    // Abort code 7 rides in bits 8..40 above the verdict byte.
    let abort = vec![
        mov64_imm(0, 7),
        alu64_imm(isa::BPF_LSH, 0, 8),
        alu64_imm(isa::BPF_OR, 0, 2),
        exit(),
    ];
    assert_eq!(run(&abort, &mut fields), EbpfVerdict::Abort { code: 7 });

    let forward = vec![mov64_imm(0, 0), exit()];
    assert_eq!(run(&forward, &mut fields), EbpfVerdict::Forward);
}

#[test]
fn raw_word_encoding_round_trips_the_corpus() {
    for c in cases() {
        let insns = finish(c.body);
        let words = isa::encode_words(&insns);
        assert_eq!(isa::decode_words(&words), insns, "case `{}`", c.name);
    }
}
