//! Compiled execution plans: the native backend's answer to "translate
//! optimized IR into platform-native code" (paper §5.2) without invoking
//! rustc at deployment time.
//!
//! [`compile_expr`] translates an [`IrExpr`] tree into a [`CExpr`] tree
//! once, at engine-compile time: UDF names resolve to enum ids (no string
//! matching per message), common predicate shapes specialize into direct
//! comparisons over borrowed values (no `Value` construction on the hot
//! path), and constants are pre-cloned into place. The executor mirrors the
//! reference evaluator in `eval` exactly — equivalence is property-tested.

use std::borrow::Cow;

use adn_ir::expr::{eval_binop, eval_cast, eval_unop, IrBinOp, IrExpr, IrUnOp};
use adn_rpc::value::{Value, ValueType};

use crate::eval::ExecError;
use crate::udf_impl::UdfRuntime;

/// Built-in UDFs, resolved from names at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UdfId {
    Compress,
    Decompress,
    Encrypt,
    Decrypt,
    Hash,
    Len,
    Random,
    Now,
    Concat,
    ToString,
    Min,
    Max,
}

impl UdfId {
    /// Resolves a DSL function name.
    pub fn resolve(name: &str) -> Option<UdfId> {
        Some(match name {
            "compress" => UdfId::Compress,
            "decompress" => UdfId::Decompress,
            "encrypt" => UdfId::Encrypt,
            "decrypt" => UdfId::Decrypt,
            "hash" => UdfId::Hash,
            "len" => UdfId::Len,
            "random" => UdfId::Random,
            "now" => UdfId::Now,
            "concat" => UdfId::Concat,
            "to_string" => UdfId::ToString,
            "min" => UdfId::Min,
            "max" => UdfId::Max,
            _ => return None,
        })
    }

    /// The canonical name (for error messages and the generic dispatcher).
    pub fn name(self) -> &'static str {
        match self {
            UdfId::Compress => "compress",
            UdfId::Decompress => "decompress",
            UdfId::Encrypt => "encrypt",
            UdfId::Decrypt => "decrypt",
            UdfId::Hash => "hash",
            UdfId::Len => "len",
            UdfId::Random => "random",
            UdfId::Now => "now",
            UdfId::Concat => "concat",
            UdfId::ToString => "to_string",
            UdfId::Min => "min",
            UdfId::Max => "max",
        }
    }
}

/// The operand of a specialized comparison.
#[derive(Debug, Clone)]
pub enum CRef {
    Field(usize),
    Col(usize),
    Const(Value),
}

impl CRef {
    #[inline]
    fn get<'a>(
        &'a self,
        fields: &'a [Value],
        row: Option<&'a [Value]>,
    ) -> Result<&'a Value, ExecError> {
        Ok(match self {
            CRef::Field(i) => &fields[*i],
            CRef::Col(c) => &row.ok_or(ExecError::NoRowBound)?[*c],
            CRef::Const(v) => v,
        })
    }

    fn from_expr(e: &IrExpr) -> Option<CRef> {
        Some(match e {
            IrExpr::Field(i) => CRef::Field(*i),
            IrExpr::Col(c) => CRef::Col(*c),
            IrExpr::Const(v) => CRef::Const(v.clone()),
            _ => return None,
        })
    }
}

/// A compiled expression.
#[derive(Debug, Clone)]
pub enum CExpr {
    Const(Value),
    Field(usize),
    Col(usize),
    /// Specialized comparison of two leaf references: no allocation, no
    /// recursion. Covers the ACL/filter hot paths (`input.x == tab.y`,
    /// `tab.col == 'W'`, `input.k == 13`, ...).
    Cmp {
        op: IrBinOp,
        left: CRef,
        right: CRef,
    },
    /// `random() < p` with constant `p` — the fault-injection fast path.
    RandomBelow(f64),
    Udf {
        id: UdfId,
        args: Vec<CExpr>,
    },
    Cast {
        to: ValueType,
        inner: Box<CExpr>,
    },
    Unary {
        op: IrUnOp,
        operand: Box<CExpr>,
    },
    Binary {
        op: IrBinOp,
        left: Box<CExpr>,
        right: Box<CExpr>,
    },
    Case {
        arms: Vec<(CExpr, CExpr)>,
        otherwise: Option<Box<CExpr>>,
    },
}

/// Compiles an IR expression. Unknown UDFs fall back to a generic id-less
/// path only at compile time — they become an error immediately.
pub fn compile_expr(e: &IrExpr) -> Result<CExpr, String> {
    Ok(match e {
        IrExpr::Const(v) => CExpr::Const(v.clone()),
        IrExpr::Field(i) => CExpr::Field(*i),
        IrExpr::Col(c) => CExpr::Col(*c),
        IrExpr::Udf { name, args } => {
            let id = UdfId::resolve(name).ok_or_else(|| format!("unknown UDF {name:?}"))?;
            CExpr::Udf {
                id,
                args: args.iter().map(compile_expr).collect::<Result<_, _>>()?,
            }
        }
        IrExpr::Cast { to, inner } => CExpr::Cast {
            to: *to,
            inner: Box::new(compile_expr(inner)?),
        },
        IrExpr::Unary { op, operand } => CExpr::Unary {
            op: *op,
            operand: Box::new(compile_expr(operand)?),
        },
        IrExpr::Binary { op, left, right } => {
            // Specialization 1: leaf-vs-leaf comparison.
            if op.is_comparison_plan() {
                if let (Some(l), Some(r)) = (CRef::from_expr(left), CRef::from_expr(right)) {
                    return Ok(CExpr::Cmp {
                        op: *op,
                        left: l,
                        right: r,
                    });
                }
                // Specialization 2: random() < const (either side).
                match (left.as_ref(), right.as_ref(), op) {
                    (IrExpr::Udf { name, args }, IrExpr::Const(Value::F64(p)), IrBinOp::Lt)
                        if name == "random" && args.is_empty() =>
                    {
                        return Ok(CExpr::RandomBelow(*p));
                    }
                    (IrExpr::Const(Value::F64(p)), IrExpr::Udf { name, args }, IrBinOp::Gt)
                        if name == "random" && args.is_empty() =>
                    {
                        return Ok(CExpr::RandomBelow(*p));
                    }
                    _ => {}
                }
            }
            CExpr::Binary {
                op: *op,
                left: Box::new(compile_expr(left)?),
                right: Box::new(compile_expr(right)?),
            }
        }
        IrExpr::Case { arms, otherwise } => CExpr::Case {
            arms: arms
                .iter()
                .map(|(c, v)| Ok::<_, String>((compile_expr(c)?, compile_expr(v)?)))
                .collect::<Result<_, _>>()?,
            otherwise: otherwise
                .as_ref()
                .map(|e| compile_expr(e).map(Box::new))
                .transpose()?,
        },
    })
}

trait CmpPlanExt {
    fn is_comparison_plan(&self) -> bool;
}

impl CmpPlanExt for IrBinOp {
    fn is_comparison_plan(&self) -> bool {
        matches!(
            self,
            IrBinOp::Eq | IrBinOp::NotEq | IrBinOp::Lt | IrBinOp::Le | IrBinOp::Gt | IrBinOp::Ge
        )
    }
}

#[inline]
fn cmp_values(op: IrBinOp, a: &Value, b: &Value) -> bool {
    use std::cmp::Ordering::*;
    match op {
        IrBinOp::Eq => a.dsl_eq(b),
        IrBinOp::NotEq => !a.dsl_eq(b),
        IrBinOp::Lt => a.total_cmp(b) == Less,
        IrBinOp::Le => a.total_cmp(b) != Greater,
        IrBinOp::Gt => a.total_cmp(b) == Greater,
        IrBinOp::Ge => a.total_cmp(b) != Less,
        _ => unreachable!("cmp_values on non-comparison"),
    }
}

/// Executes a compiled expression (borrowing where possible).
pub fn exec<'a>(
    e: &'a CExpr,
    fields: &'a [Value],
    row: Option<&'a [Value]>,
    udf: &mut UdfRuntime,
) -> Result<Cow<'a, Value>, ExecError> {
    Ok(match e {
        CExpr::Const(v) => Cow::Borrowed(v),
        CExpr::Field(i) => Cow::Borrowed(&fields[*i]),
        CExpr::Col(c) => Cow::Borrowed(&row.ok_or(ExecError::NoRowBound)?[*c]),
        CExpr::Cmp { op, left, right } => Cow::Owned(Value::Bool(cmp_values(
            *op,
            left.get(fields, row)?,
            right.get(fields, row)?,
        ))),
        CExpr::RandomBelow(p) => Cow::Owned(Value::Bool(udf.random_f64() < *p)),
        CExpr::Udf { id, args } => {
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(exec(a, fields, row, udf)?.into_owned());
            }
            Cow::Owned(call_udf(*id, &vals, udf)?)
        }
        CExpr::Cast { to, inner } => {
            let v = exec(inner, fields, row, udf)?;
            Cow::Owned(eval_cast(*to, &v)?)
        }
        CExpr::Unary { op, operand } => {
            let v = exec(operand, fields, row, udf)?;
            Cow::Owned(eval_unop(*op, &v)?)
        }
        CExpr::Binary { op, left, right } => match op {
            IrBinOp::And => match exec(left, fields, row, udf)?.as_ref() {
                Value::Bool(false) => Cow::Owned(Value::Bool(false)),
                Value::Bool(true) => {
                    let r = exec(right, fields, row, udf)?;
                    match r.as_ref() {
                        Value::Bool(b) => Cow::Owned(Value::Bool(*b)),
                        other => {
                            return Err(adn_ir::expr::EvalError::TypeError(format!(
                                "AND on {other}"
                            ))
                            .into())
                        }
                    }
                }
                other => {
                    return Err(
                        adn_ir::expr::EvalError::TypeError(format!("AND on {other}")).into(),
                    )
                }
            },
            IrBinOp::Or => match exec(left, fields, row, udf)?.as_ref() {
                Value::Bool(true) => Cow::Owned(Value::Bool(true)),
                Value::Bool(false) => {
                    let r = exec(right, fields, row, udf)?;
                    match r.as_ref() {
                        Value::Bool(b) => Cow::Owned(Value::Bool(*b)),
                        other => {
                            return Err(adn_ir::expr::EvalError::TypeError(format!(
                                "OR on {other}"
                            ))
                            .into())
                        }
                    }
                }
                other => {
                    return Err(adn_ir::expr::EvalError::TypeError(format!("OR on {other}")).into())
                }
            },
            other => {
                let l = exec(left, fields, row, udf)?;
                let r = exec(right, fields, row, udf)?;
                Cow::Owned(eval_binop(*other, &l, &r)?)
            }
        },
        CExpr::Case { arms, otherwise } => {
            for (cond, value) in arms {
                if exec(cond, fields, row, udf)?.is_truthy() {
                    return exec(value, fields, row, udf);
                }
            }
            match otherwise {
                Some(e) => exec(e, fields, row, udf)?,
                None => Cow::Owned(Value::Bool(false)),
            }
        }
    })
}

/// Boolean execution of a compiled predicate.
#[inline]
pub fn exec_pred(
    e: &CExpr,
    fields: &[Value],
    row: Option<&[Value]>,
    udf: &mut UdfRuntime,
) -> Result<bool, ExecError> {
    // The dominant shapes return without allocating.
    match e {
        CExpr::Cmp { op, left, right } => Ok(cmp_values(
            *op,
            left.get(fields, row)?,
            right.get(fields, row)?,
        )),
        CExpr::RandomBelow(p) => Ok(udf.random_f64() < *p),
        other => match exec(other, fields, row, udf)?.as_ref() {
            Value::Bool(b) => Ok(*b),
            v => Err(adn_ir::expr::EvalError::TypeError(format!(
                "predicate yielded {v}, not bool"
            ))
            .into()),
        },
    }
}

/// Enum-dispatched UDF invocation (no string matching per message).
fn call_udf(id: UdfId, args: &[Value], udf: &mut UdfRuntime) -> Result<Value, ExecError> {
    match id {
        UdfId::Random if args.is_empty() => {
            return Ok(Value::F64(udf.random_f64()));
        }
        UdfId::Now if args.is_empty() => {
            return Ok(Value::U64(udf.now()));
        }
        UdfId::Hash => {
            if let [v] = args {
                return Ok(Value::U64(v.stable_hash()));
            }
        }
        UdfId::Len => match args {
            [Value::Str(s)] => return Ok(Value::U64(s.len() as u64)),
            [Value::Bytes(b)] => return Ok(Value::U64(b.len() as u64)),
            _ => {}
        },
        // Heavier UDFs go through the generic dispatcher; their body cost
        // dwarfs the name match.
        _ => {}
    }
    udf.call(id.name(), args).map_err(Into::into)
}

// ---------------------------------------------------------------------------
// Compiled statements
// ---------------------------------------------------------------------------

/// A compiled join.
#[derive(Debug, Clone)]
pub struct CJoin {
    pub table: usize,
    pub on: CExpr,
    pub strategy: adn_ir::element::JoinStrategy,
}

/// A compiled statement (mirrors [`adn_ir::IrStmt`] with compiled
/// expressions).
#[derive(Debug, Clone)]
pub enum CStmt {
    Select {
        assignments: Vec<(usize, CExpr)>,
        join: Option<CJoin>,
        condition: Option<CExpr>,
        else_abort: Option<(CExpr, Option<CExpr>)>,
    },
    Insert {
        table: usize,
        values: Vec<CExpr>,
    },
    Update {
        table: usize,
        assignments: Vec<(usize, CExpr)>,
        condition: Option<CExpr>,
    },
    /// UPDATE whose condition pins the table's single key column to a
    /// row-independent expression: executed as one hash lookup instead of
    /// a scan (the Quota/Metrics per-user counter pattern).
    UpdateKeyed {
        table: usize,
        /// Evaluates to the key value (no `Col` references).
        key: CExpr,
        assignments: Vec<(usize, CExpr)>,
        /// The full original condition, re-checked against the found row.
        condition: CExpr,
    },
    Delete {
        table: usize,
        condition: Option<CExpr>,
    },
    Drop {
        condition: Option<CExpr>,
    },
    Route {
        key: CExpr,
        condition: Option<CExpr>,
    },
    Abort {
        code: CExpr,
        message: Option<CExpr>,
        condition: Option<CExpr>,
    },
    Set {
        field: usize,
        value: CExpr,
        condition: Option<CExpr>,
    },
}

/// Finds a conjunct `Col(key_col) == e` where `e` reads no columns,
/// returning `e`.
fn keyed_condition(cond: &IrExpr, key_col: usize) -> Option<&IrExpr> {
    match cond {
        IrExpr::Binary {
            op: IrBinOp::And,
            left,
            right,
        } => keyed_condition(left, key_col).or_else(|| keyed_condition(right, key_col)),
        IrExpr::Binary {
            op: IrBinOp::Eq,
            left,
            right,
        } => match (left.as_ref(), right.as_ref()) {
            (IrExpr::Col(c), e) | (e, IrExpr::Col(c)) if *c == key_col && !e.uses_cols() => Some(e),
            _ => None,
        },
        _ => None,
    }
}

/// Compiles one IR statement. `tables` supplies key metadata for the keyed
/// UPDATE specialization.
pub fn compile_stmt_for(
    stmt: &adn_ir::IrStmt,
    tables: &[adn_ir::TableIr],
) -> Result<CStmt, String> {
    use adn_ir::IrStmt;
    if let IrStmt::Update {
        table,
        assignments,
        condition: Some(cond),
    } = stmt
    {
        if let [key_col] = tables[*table].key_columns.as_slice() {
            let writes_key = assignments.iter().any(|(col, _)| col == key_col);
            if !writes_key {
                if let Some(key_expr) = keyed_condition(cond, *key_col) {
                    return Ok(CStmt::UpdateKeyed {
                        table: *table,
                        key: compile_expr(key_expr)?,
                        assignments: assignments
                            .iter()
                            .map(|(i, e)| Ok::<_, String>((*i, compile_expr(e)?)))
                            .collect::<Result<_, _>>()?,
                        condition: compile_expr(cond)?,
                    });
                }
            }
        }
    }
    compile_stmt(stmt)
}

/// Compiles one IR statement.
pub fn compile_stmt(stmt: &adn_ir::IrStmt) -> Result<CStmt, String> {
    use adn_ir::IrStmt;
    let opt = |e: &Option<IrExpr>| -> Result<Option<CExpr>, String> {
        e.as_ref().map(compile_expr).transpose()
    };
    Ok(match stmt {
        IrStmt::Select {
            assignments,
            join,
            condition,
            else_abort,
        } => CStmt::Select {
            assignments: assignments
                .iter()
                .map(|(i, e)| Ok::<_, String>((*i, compile_expr(e)?)))
                .collect::<Result<_, _>>()?,
            join: join
                .as_ref()
                .map(|j| {
                    Ok::<_, String>(CJoin {
                        table: j.table,
                        on: compile_expr(&j.on)?,
                        strategy: j.strategy.clone(),
                    })
                })
                .transpose()?,
            condition: opt(condition)?,
            else_abort: else_abort
                .as_ref()
                .map(|(code, message)| {
                    Ok::<_, String>((
                        compile_expr(code)?,
                        message.as_ref().map(compile_expr).transpose()?,
                    ))
                })
                .transpose()?,
        },
        IrStmt::Insert { table, values } => CStmt::Insert {
            table: *table,
            values: values.iter().map(compile_expr).collect::<Result<_, _>>()?,
        },
        IrStmt::Update {
            table,
            assignments,
            condition,
        } => CStmt::Update {
            table: *table,
            assignments: assignments
                .iter()
                .map(|(i, e)| Ok::<_, String>((*i, compile_expr(e)?)))
                .collect::<Result<_, _>>()?,
            condition: opt(condition)?,
        },
        IrStmt::Delete { table, condition } => CStmt::Delete {
            table: *table,
            condition: opt(condition)?,
        },
        IrStmt::Drop { condition } => CStmt::Drop {
            condition: opt(condition)?,
        },
        IrStmt::Route { key, condition } => CStmt::Route {
            key: compile_expr(key)?,
            condition: opt(condition)?,
        },
        IrStmt::Abort {
            code,
            message,
            condition,
        } => CStmt::Abort {
            code: compile_expr(code)?,
            message: opt(message)?,
            condition: opt(condition)?,
        },
        IrStmt::Set {
            field,
            value,
            condition,
        } => CStmt::Set {
            field: *field,
            value: compile_expr(value)?,
            condition: opt(condition)?,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use proptest::prelude::*;

    fn rt() -> UdfRuntime {
        UdfRuntime::new(5)
    }

    #[test]
    fn udf_ids_resolve_all_builtins() {
        for sig in adn_dsl::udf::builtin_udfs() {
            let id = UdfId::resolve(sig.name).unwrap_or_else(|| panic!("{} missing", sig.name));
            assert_eq!(id.name(), sig.name);
        }
        assert!(UdfId::resolve("ghost").is_none());
    }

    #[test]
    fn cmp_specialization_kicks_in() {
        let e = IrExpr::Binary {
            op: IrBinOp::Eq,
            left: Box::new(IrExpr::Field(0)),
            right: Box::new(IrExpr::Col(1)),
        };
        assert!(matches!(compile_expr(&e).unwrap(), CExpr::Cmp { .. }));
        let e = IrExpr::Binary {
            op: IrBinOp::Lt,
            left: Box::new(IrExpr::Udf {
                name: "random".into(),
                args: vec![],
            }),
            right: Box::new(IrExpr::Const(Value::F64(0.25))),
        };
        assert!(matches!(compile_expr(&e).unwrap(), CExpr::RandomBelow(_)));
    }

    #[test]
    fn random_below_matches_configured_rate() {
        let e = CExpr::RandomBelow(0.3);
        let mut udf = rt();
        let mut hits = 0;
        for _ in 0..4000 {
            if exec_pred(&e, &[], None, &mut udf).unwrap() {
                hits += 1;
            }
        }
        let rate = hits as f64 / 4000.0;
        assert!((rate - 0.3).abs() < 0.05, "{rate}");
    }

    fn arb_ir_expr() -> impl Strategy<Value = IrExpr> {
        let leaf = prop_oneof![
            any::<u64>().prop_map(|v| IrExpr::Const(Value::U64(v % 1000))),
            any::<bool>().prop_map(|b| IrExpr::Const(Value::Bool(b))),
            "[a-c]{1,4}".prop_map(|s| IrExpr::Const(Value::Str(s))),
            (0usize..3).prop_map(IrExpr::Field),
            (0usize..2).prop_map(IrExpr::Col),
        ];
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone(), arb_op()).prop_map(|(l, r, op)| IrExpr::Binary {
                    op,
                    left: Box::new(l),
                    right: Box::new(r),
                }),
                inner.clone().prop_map(|e| IrExpr::Unary {
                    op: IrUnOp::Not,
                    operand: Box::new(e),
                }),
                (
                    inner.clone(),
                    proptest::collection::vec(inner.clone(), 1..2)
                )
                    .prop_map(|(v, mut args)| {
                        args.truncate(1);
                        IrExpr::Case {
                            arms: vec![(args.pop().expect("one"), v)],
                            otherwise: None,
                        }
                    }),
                inner.clone().prop_map(|e| IrExpr::Udf {
                    name: "hash".into(),
                    args: vec![e],
                }),
            ]
        })
    }

    fn arb_op() -> impl Strategy<Value = IrBinOp> {
        prop_oneof![
            Just(IrBinOp::Eq),
            Just(IrBinOp::NotEq),
            Just(IrBinOp::Lt),
            Just(IrBinOp::Gt),
            Just(IrBinOp::Add),
            Just(IrBinOp::Mul),
            Just(IrBinOp::And),
            Just(IrBinOp::Or),
        ]
    }

    proptest! {
        /// The compiled plan and the reference evaluator agree exactly —
        /// same values or same error class — on arbitrary expressions.
        #[test]
        fn compiled_plan_matches_reference_eval(
            expr in arb_ir_expr(),
            f0 in any::<u64>(),
            f1 in "[a-c]{1,4}",
            f2 in any::<bool>(),
            c0 in any::<u64>(),
            c1 in "[a-c]{1,4}",
        ) {
            let fields = vec![Value::U64(f0 % 1000), Value::Str(f1), Value::Bool(f2)];
            let row = vec![Value::U64(c0 % 1000), Value::Str(c1)];
            let compiled = compile_expr(&expr).unwrap();

            let mut u1 = UdfRuntime::new(42);
            let mut u2 = UdfRuntime::new(42);
            let reference = eval(&expr, &fields, Some(&row), &mut u1);
            let planned = exec(&compiled, &fields, Some(&row), &mut u2).map(Cow::into_owned);
            match (reference, planned) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(false, "divergence: ref={a:?} plan={b:?}"),
            }
        }
    }
}
