//! Tabular element state.
//!
//! Paper §5.2: "The decoupling of code and state, and the tabular nature of
//! state, enables us to reconfigure the network without disrupting
//! applications. To migrate or scale out a load balancer, the controller can
//! copy over its state and start running a new instance; while reducing the
//! number of load balancer instances, it can merge their states."
//!
//! [`StateTable`] is that substrate: insertion-ordered rows with an optional
//! key index, byte-exact snapshot/restore, and key-hash partition/merge for
//! scale-out and scale-in.

use adn_rpc::value::Value;
#[cfg(test)]
use adn_rpc::value::ValueType;
use adn_rpc::wire_format::{decode_value, encode_value};
use adn_wire::codec::{Decoder, Encoder, WireError};

use adn_ir::TableIr;

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Key hashes are already FNV-mixed 64-bit values; the index map can use
/// them directly instead of re-hashing through SipHash.
#[derive(Default)]
pub struct IdentityHasher(u64);

impl Hasher for IdentityHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("IdentityHasher only accepts u64 keys");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

type KeyIndex = HashMap<u64, usize, BuildHasherDefault<IdentityHasher>>;

/// A runtime state table instantiated from a [`TableIr`] layout.
#[derive(Debug, Clone)]
pub struct StateTable {
    layout: TableIr,
    /// Live rows in insertion order (`None` = deleted slot, compacted on
    /// snapshot).
    rows: Vec<Option<Vec<Value>>>,
    /// Key hash → row index, for tables with key columns.
    index: KeyIndex,
    live: usize,
    /// Scan cursor for FIFO eviction when the layout bounds capacity.
    evict_cursor: usize,
}

impl StateTable {
    /// Creates a table with the layout's initial rows.
    pub fn new(layout: TableIr) -> Self {
        let mut table = Self {
            rows: Vec::new(),
            index: KeyIndex::default(),
            live: 0,
            evict_cursor: 0,
            layout,
        };
        for row in table.layout.init_rows.clone() {
            table.upsert(row);
        }
        table
    }

    /// The table layout.
    pub fn layout(&self) -> &TableIr {
        &self.layout
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether the table has no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn key_hash(&self, row: &[Value]) -> Option<u64> {
        if self.layout.key_columns.is_empty() {
            return None;
        }
        Some(combined_hash(
            self.layout.key_columns.iter().map(|&c| &row[c]),
        ))
    }

    /// Hash of a key built from values (one per key column, in key order).
    pub fn key_hash_of(&self, key_values: &[&Value]) -> u64 {
        combined_hash(key_values.iter().copied())
    }

    /// Allocation-free variant of [`StateTable::key_hash_of`].
    pub fn key_hash_of_iter<'a>(&self, key_values: impl Iterator<Item = &'a Value>) -> u64 {
        combined_hash(key_values)
    }

    /// Inserts a row; replaces any existing row with the same key. When the
    /// layout bounds capacity, inserting a *new* row beyond the bound first
    /// evicts the oldest live row (FIFO — log-rotation semantics).
    pub fn upsert(&mut self, row: Vec<Value>) {
        debug_assert_eq!(row.len(), self.layout.column_types.len());
        if let Some(h) = self.key_hash(&row) {
            if let Some(&idx) = self.index.get(&h) {
                self.rows[idx] = Some(row);
                return;
            }
            self.push_new(Some(h), row);
        } else {
            self.push_new(None, row);
        }
    }

    /// Appends a row known to be new (key absent), evicting the oldest row
    /// first when the layout bounds capacity. Returns the evicted row so
    /// hot paths can recycle its allocations.
    fn push_new(&mut self, key_hash: Option<u64>, row: Vec<Value>) -> Option<Vec<Value>> {
        let mut reclaimed = None;
        if let Some(cap) = self.layout.capacity {
            if self.live >= cap {
                reclaimed = self.evict_oldest();
            }
        }
        if let Some(h) = key_hash {
            self.index.insert(h, self.rows.len());
        }
        self.rows.push(Some(row));
        self.live += 1;
        self.maybe_compact();
        reclaimed
    }

    /// Tombstones the oldest live row (and de-indexes it), returning it.
    fn evict_oldest(&mut self) -> Option<Vec<Value>> {
        while self.evict_cursor < self.rows.len() {
            let i = self.evict_cursor;
            if let Some(row) = self.rows[i].take() {
                if !self.layout.key_columns.is_empty() {
                    let h = combined_hash(self.layout.key_columns.iter().map(|&c| &row[c]));
                    // Only remove if the index still points at this slot (it
                    // may have been superseded by a keyed upsert elsewhere).
                    if self.index.get(&h) == Some(&i) {
                        self.index.remove(&h);
                    }
                }
                self.live -= 1;
                self.evict_cursor += 1;
                return Some(row);
            }
            self.evict_cursor += 1;
        }
        None
    }

    /// Compacts the slot vector when tombstones dominate (keeps bounded
    /// tables truly O(capacity) in memory).
    fn maybe_compact(&mut self) {
        if self.rows.len() > 64 && self.rows.len() > self.live * 2 {
            let mut compacted = Vec::with_capacity(self.live);
            for row in self.rows.drain(..).flatten() {
                compacted.push(Some(row));
            }
            self.rows = compacted;
            self.evict_cursor = 0;
            self.rebuild_index();
        }
    }

    /// Inserts a row only if no row with the same key exists (SQL
    /// `ON CONFLICT DO NOTHING`). Returns whether the row was inserted.
    /// Key-less tables always append.
    pub fn insert_if_absent(&mut self, row: Vec<Value>) -> bool {
        if let Some(h) = self.key_hash(&row) {
            if self.index.contains_key(&h) {
                return false;
            }
        }
        self.upsert(row);
        true
    }

    /// [`StateTable::insert_if_absent`] that hands back whichever row the
    /// operation displaced — the FIFO-evicted row at capacity, or `row`
    /// itself on key conflict — so hot paths (the JIT's specialized INSERT)
    /// can recycle its allocations instead of freeing them. Observable
    /// table state evolves exactly as with `insert_if_absent`.
    pub fn insert_if_absent_reclaim(&mut self, row: Vec<Value>) -> Option<Vec<Value>> {
        debug_assert_eq!(row.len(), self.layout.column_types.len());
        let h = self.key_hash(&row);
        if let Some(h) = h {
            if self.index.contains_key(&h) {
                return Some(row);
            }
        }
        self.push_new(h, row)
    }

    /// Looks up by key hash (tables with keys only).
    pub fn lookup(&self, key_hash: u64) -> Option<&[Value]> {
        self.index
            .get(&key_hash)
            .and_then(|&i| self.rows[i].as_deref())
    }

    /// Iterates live rows in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &[Value]> {
        self.rows.iter().filter_map(|r| r.as_deref())
    }

    /// Applies `update` to every live row matching `pred`. Returns the
    /// number of rows updated. Key-column updates re-index.
    pub fn update_where(
        &mut self,
        mut pred: impl FnMut(&[Value]) -> bool,
        mut update: impl FnMut(&mut Vec<Value>),
    ) -> usize {
        let mut updated = 0;
        let mut reindex = false;
        for row in self.rows.iter_mut().flatten() {
            if pred(row) {
                let old_key = self
                    .layout
                    .key_columns
                    .iter()
                    .map(|&c| row[c].clone())
                    .collect::<Vec<_>>();
                update(row);
                let new_key = self
                    .layout
                    .key_columns
                    .iter()
                    .map(|&c| row[c].clone())
                    .collect::<Vec<_>>();
                if old_key != new_key {
                    reindex = true;
                }
                updated += 1;
            }
        }
        if reindex {
            self.rebuild_index();
        }
        updated
    }

    /// Deletes every live row matching `pred`. Returns rows deleted.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&[Value]) -> bool) -> usize {
        let mut deleted = 0;
        for slot in &mut self.rows {
            if let Some(row) = slot {
                if pred(row) {
                    *slot = None;
                    deleted += 1;
                }
            }
        }
        if deleted > 0 {
            self.live -= deleted;
            self.rebuild_index();
        }
        deleted
    }

    fn rebuild_index(&mut self) {
        self.index.clear();
        if self.layout.key_columns.is_empty() {
            return;
        }
        for (i, slot) in self.rows.iter().enumerate() {
            if let Some(row) = slot {
                let h = combined_hash(self.layout.key_columns.iter().map(|&c| &row[c]));
                self.index.insert(h, i);
            }
        }
    }

    // -- snapshot / restore ---------------------------------------------------

    /// Serializes live rows (compacting deleted slots).
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.live as u64);
        for row in self.scan() {
            for v in row {
                encode_value(&mut enc, v);
            }
        }
        enc.into_bytes()
    }

    /// Replaces contents from a snapshot produced by a table with the same
    /// layout.
    pub fn restore(&mut self, image: &[u8]) -> Result<(), WireError> {
        let mut dec = Decoder::new(image);
        let count = dec.get_varint()?;
        let mut rows = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let mut row = Vec::with_capacity(self.layout.column_types.len());
            for &ty in &self.layout.column_types {
                row.push(decode_value(&mut dec, ty)?);
            }
            rows.push(row);
        }
        if !dec.is_exhausted() {
            return Err(WireError::Malformed("trailing bytes in state image"));
        }
        self.rows.clear();
        self.index.clear();
        self.live = 0;
        self.evict_cursor = 0;
        for row in rows {
            self.upsert(row);
        }
        Ok(())
    }

    // -- partition / merge ------------------------------------------------------

    /// Splits the table into `shards` tables by key hash (`hash % shards`).
    /// Rows of key-less tables are distributed round-robin.
    pub fn partition(&self, shards: usize) -> Vec<StateTable> {
        assert!(shards > 0);
        let mut out: Vec<StateTable> = (0..shards)
            .map(|_| {
                let mut layout = self.layout.clone();
                layout.init_rows.clear();
                StateTable::new(layout)
            })
            .collect();
        for (i, row) in self.scan().enumerate() {
            let shard = match self.key_hash(row) {
                Some(h) => (h % shards as u64) as usize,
                None => i % shards,
            };
            out[shard].upsert(row.to_vec());
        }
        out
    }

    /// Splits by `hash(row[column]) % shards` — the same function the
    /// scale-out shard router applies to the corresponding request field,
    /// so every row lands on the shard that will receive its key's traffic.
    pub fn partition_by_column(&self, column: usize, shards: usize) -> Vec<StateTable> {
        assert!(shards > 0);
        let mut out: Vec<StateTable> = (0..shards)
            .map(|_| {
                let mut layout = self.layout.clone();
                layout.init_rows.clear();
                StateTable::new(layout)
            })
            .collect();
        for row in self.scan() {
            let shard = (row[column].stable_hash() % shards as u64) as usize;
            out[shard].upsert(row.to_vec());
        }
        out
    }

    /// Merges another shard's rows into this table. Keyed rows collide by
    /// key (other wins — last-writer); key-less rows append.
    pub fn merge_from(&mut self, other: &StateTable) {
        for row in other.scan() {
            self.upsert(row.to_vec());
        }
    }

    /// Sums of per-column sizes, used by device capacity checks.
    pub fn memory_hint(&self) -> usize {
        self.scan()
            .map(|r| r.iter().map(Value::size_hint).sum::<usize>())
            .sum()
    }
}

fn combined_hash<'a>(values: impl Iterator<Item = &'a Value>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in values {
        h ^= v.stable_hash();
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> TableIr {
        TableIr {
            name: "ac_tab".into(),
            column_names: vec!["username".into(), "permission".into()],
            column_types: vec![ValueType::Str, ValueType::Str],
            key_columns: vec![0],
            capacity: None,
            init_rows: vec![
                vec![Value::Str("alice".into()), Value::Str("W".into())],
                vec![Value::Str("bob".into()), Value::Str("R".into())],
            ],
        }
    }

    fn s(v: &str) -> Value {
        Value::Str(v.into())
    }

    #[test]
    fn init_rows_loaded_and_indexed() {
        let t = StateTable::new(layout());
        assert_eq!(t.len(), 2);
        let h = t.key_hash_of(&[&s("alice")]);
        assert_eq!(t.lookup(h).unwrap()[1], s("W"));
    }

    #[test]
    fn upsert_replaces_by_key() {
        let mut t = StateTable::new(layout());
        t.upsert(vec![s("alice"), s("R")]);
        assert_eq!(t.len(), 2, "same key must not grow the table");
        let h = t.key_hash_of(&[&s("alice")]);
        assert_eq!(t.lookup(h).unwrap()[1], s("R"));
    }

    #[test]
    fn update_where_reindexes_key_changes() {
        let mut t = StateTable::new(layout());
        let n = t.update_where(|row| row[0] == s("bob"), |row| row[0] = s("robert"));
        assert_eq!(n, 1);
        assert!(t.lookup(t.key_hash_of(&[&s("bob")])).is_none());
        assert_eq!(t.lookup(t.key_hash_of(&[&s("robert")])).unwrap()[1], s("R"));
    }

    #[test]
    fn delete_where_removes_and_reindexes() {
        let mut t = StateTable::new(layout());
        assert_eq!(t.delete_where(|row| row[1] == s("R")), 1);
        assert_eq!(t.len(), 1);
        assert!(t.lookup(t.key_hash_of(&[&s("bob")])).is_none());
        assert!(t.lookup(t.key_hash_of(&[&s("alice")])).is_some());
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut t = StateTable::new(layout());
        t.upsert(vec![s("carol"), s("W")]);
        t.delete_where(|r| r[0] == s("bob"));
        let image = t.snapshot();

        let mut fresh = StateTable::new(TableIr {
            init_rows: vec![],
            ..layout()
        });
        fresh.restore(&image).unwrap();
        assert_eq!(fresh.len(), 2);
        assert_eq!(
            fresh.lookup(fresh.key_hash_of(&[&s("carol")])).unwrap()[1],
            s("W")
        );
        assert_eq!(fresh.snapshot(), image, "snapshot must be canonical");
    }

    #[test]
    fn restore_rejects_corrupt_images() {
        let mut t = StateTable::new(layout());
        assert!(t.restore(&[0xFF]).is_err());
        let mut image = t.snapshot();
        image.push(0);
        assert!(t.restore(&image).is_err());
    }

    #[test]
    fn partition_then_merge_is_lossless() {
        let mut t = StateTable::new(layout());
        for i in 0..100 {
            t.upsert(vec![s(&format!("user{i}")), s("W")]);
        }
        let shards = t.partition(4);
        assert_eq!(shards.iter().map(StateTable::len).sum::<usize>(), t.len());
        // Every row lands in the shard its key hashes to.
        for (si, shard) in shards.iter().enumerate() {
            for row in shard.scan() {
                let h = t.key_hash_of(&[&row[0]]);
                assert_eq!((h % 4) as usize, si);
            }
        }
        // Merge back and compare contents.
        let mut merged = StateTable::new(TableIr {
            init_rows: vec![],
            ..layout()
        });
        for shard in &shards {
            merged.merge_from(shard);
        }
        assert_eq!(merged.len(), t.len());
        for row in t.scan() {
            let h = merged.key_hash_of(&[&row[0]]);
            assert_eq!(merged.lookup(h).unwrap(), row);
        }
    }

    #[test]
    fn bounded_keyless_table_evicts_fifo() {
        let mut t = StateTable::new(TableIr {
            name: "log".into(),
            column_names: vec!["n".into()],
            column_types: vec![ValueType::U64],
            key_columns: vec![],
            capacity: Some(4),
            init_rows: vec![],
        });
        for i in 0..300u64 {
            t.upsert(vec![Value::U64(i)]);
        }
        assert_eq!(t.len(), 4);
        let got: Vec<u64> = t.scan().map(|r| r[0].as_u64().unwrap()).collect();
        assert_eq!(got, vec![296, 297, 298, 299]);
        // Memory stays bounded: compaction keeps slots near capacity.
        assert!(t.rows.len() <= 80, "slots grew to {}", t.rows.len());
    }

    #[test]
    fn bounded_keyed_table_evicts_oldest_key() {
        let mut t = StateTable::new(TableIr {
            name: "recent".into(),
            column_names: vec!["k".into(), "v".into()],
            column_types: vec![ValueType::U64, ValueType::U64],
            key_columns: vec![0],
            capacity: Some(3),
            init_rows: vec![],
        });
        for k in 0..5u64 {
            t.upsert(vec![Value::U64(k), Value::U64(k * 10)]);
        }
        assert_eq!(t.len(), 3);
        // Keys 0,1 evicted; 2,3,4 remain and are findable by key.
        for k in [2u64, 3, 4] {
            let h = t.key_hash_of(&[&Value::U64(k)]);
            assert_eq!(t.lookup(h).unwrap()[1], Value::U64(k * 10), "key {k}");
        }
        assert!(t.lookup(t.key_hash_of(&[&Value::U64(0)])).is_none());
        // Keyed upsert of an existing key does NOT evict.
        t.upsert(vec![Value::U64(3), Value::U64(99)]);
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.lookup(t.key_hash_of(&[&Value::U64(3)])).unwrap()[1],
            Value::U64(99)
        );
    }

    #[test]
    fn keyless_tables_scan_in_insertion_order() {
        let mut t = StateTable::new(TableIr {
            name: "log".into(),
            column_names: vec!["n".into()],
            column_types: vec![ValueType::U64],
            key_columns: vec![],
            capacity: None,
            init_rows: vec![],
        });
        for i in 0..5u64 {
            t.upsert(vec![Value::U64(i)]);
        }
        let got: Vec<u64> = t
            .scan()
            .map(|r| match &r[0] {
                Value::U64(v) => *v,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.len(), 5, "keyless tables never dedup");
    }
}
