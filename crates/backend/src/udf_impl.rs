//! Software implementations of the built-in UDFs.
//!
//! Paper §5.1 models operations that SQL cannot express (compression,
//! encryption) as user-defined functions with platform-specific
//! implementations. These are the software-processor implementations.
//!
//! Substitutions (documented in DESIGN.md): `compress` is an RLE-based
//! codec rather than a production LZ — it does real, input-proportional CPU
//! work and really shrinks repetitive payloads, which is what the benchmarks
//! need; `encrypt` is a splitmix64 keystream XOR rather than AES — again,
//! real per-byte work with a real inverse. `now()` is a logical clock and
//! `random()` a seeded PRNG so every experiment is reproducible.

use adn_rpc::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runtime context for UDF execution: per-engine randomness and clock.
#[derive(Debug)]
pub struct UdfRuntime {
    rng: StdRng,
    logical_clock: u64,
}

/// UDF execution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct UdfError {
    pub message: String,
}

impl UdfError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for UdfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for UdfError {}

impl UdfRuntime {
    /// Creates a runtime with the given random seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            logical_clock: 0,
        }
    }

    /// Draws a uniform f64 in [0, 1).
    pub fn random_f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Draws a uniform u64 (used by the eBPF simulator's RAND insn).
    pub fn random_u64(&mut self) -> u64 {
        self.rng.gen::<u64>()
    }

    /// Monotonic logical timestamp.
    pub fn now(&mut self) -> u64 {
        self.logical_clock += 1;
        self.logical_clock
    }

    /// Dispatches a UDF call by name.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, UdfError> {
        match name {
            "compress" => match args {
                [Value::Bytes(b)] => Ok(Value::Bytes(compress(b))),
                _ => Err(bad_args(name)),
            },
            "decompress" => match args {
                [Value::Bytes(b)] => decompress(b)
                    .map(Value::Bytes)
                    .map_err(|e| UdfError::new(format!("decompress: {e}"))),
                _ => Err(bad_args(name)),
            },
            "encrypt" | "decrypt" => match args {
                [Value::Bytes(b), Value::Str(key)] => Ok(Value::Bytes(xor_stream(b, key))),
                _ => Err(bad_args(name)),
            },
            "hash" => match args {
                [v] => Ok(Value::U64(v.stable_hash())),
                _ => Err(bad_args(name)),
            },
            "len" => match args {
                [Value::Str(s)] => Ok(Value::U64(s.len() as u64)),
                [Value::Bytes(b)] => Ok(Value::U64(b.len() as u64)),
                _ => Err(bad_args(name)),
            },
            "random" => {
                if args.is_empty() {
                    Ok(Value::F64(self.random_f64()))
                } else {
                    Err(bad_args(name))
                }
            }
            "now" => {
                if args.is_empty() {
                    Ok(Value::U64(self.now()))
                } else {
                    Err(bad_args(name))
                }
            }
            "concat" => match args {
                [Value::Str(a), Value::Str(b)] => Ok(Value::Str(format!("{a}{b}"))),
                _ => Err(bad_args(name)),
            },
            "to_string" => match args {
                [v] => Ok(Value::Str(match v {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                })),
                _ => Err(bad_args(name)),
            },
            "min" | "max" => match args {
                [a, b] => {
                    let pick_a = match name {
                        "min" => a.total_cmp(b) != std::cmp::Ordering::Greater,
                        _ => a.total_cmp(b) != std::cmp::Ordering::Less,
                    };
                    Ok(if pick_a { a.clone() } else { b.clone() })
                }
                _ => Err(bad_args(name)),
            },
            other => Err(UdfError::new(format!("unknown UDF {other:?}"))),
        }
    }
}

fn bad_args(name: &str) -> UdfError {
    UdfError::new(format!("{name}: invalid argument types"))
}

// ---------------------------------------------------------------------------
// Compression: byte-level RLE with literal runs.
//
// Format: varint(original_len) then ops until exhausted:
//   0x00 varint(n) <n literal bytes>
//   0x01 varint(n) <1 byte>          -- n repetitions of the byte
// ---------------------------------------------------------------------------

/// Compresses `data`. Runs of ≥4 identical bytes are run-length coded.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    write_varint(&mut out, data.len() as u64);
    let mut i = 0;
    let mut lit_start = 0;
    while i < data.len() {
        // Measure the run at i.
        let b = data[i];
        let mut run = 1;
        while i + run < data.len() && data[i + run] == b {
            run += 1;
        }
        if run >= 4 {
            flush_literals(&mut out, &data[lit_start..i]);
            out.push(0x01);
            write_varint(&mut out, run as u64);
            out.push(b);
            i += run;
            lit_start = i;
        } else {
            i += run;
        }
    }
    flush_literals(&mut out, &data[lit_start..]);
    out
}

fn flush_literals(out: &mut Vec<u8>, lits: &[u8]) {
    if !lits.is_empty() {
        out.push(0x00);
        write_varint(out, lits.len() as u64);
        out.extend_from_slice(lits);
    }
}

/// Inverse of [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, String> {
    let (orig_len, mut i) = read_varint(data).ok_or("truncated length header")?;
    if orig_len > 64 * 1024 * 1024 {
        return Err(format!("declared length {orig_len} exceeds 64 MiB cap"));
    }
    let mut out = Vec::with_capacity(orig_len as usize);
    while i < data.len() {
        let op = data[i];
        i += 1;
        let (n, adv) = read_varint(&data[i..]).ok_or("truncated op length")?;
        i += adv;
        match op {
            0x00 => {
                let end = i.checked_add(n as usize).ok_or("length overflow")?;
                if end > data.len() {
                    return Err("literal run past end".into());
                }
                out.extend_from_slice(&data[i..end]);
                i = end;
            }
            0x01 => {
                if i >= data.len() {
                    return Err("missing run byte".into());
                }
                if out.len() + n as usize > orig_len as usize {
                    return Err("run exceeds declared length".into());
                }
                out.extend(std::iter::repeat_n(data[i], n as usize));
                i += 1;
            }
            other => return Err(format!("unknown op {other:#x}")),
        }
    }
    if out.len() as u64 != orig_len {
        return Err(format!(
            "declared length {orig_len} but decoded {} bytes",
            out.len()
        ));
    }
    Ok(out)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(data: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0;
    for (i, &b) in data.iter().enumerate() {
        if i >= 10 {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

// ---------------------------------------------------------------------------
// Encryption stand-in: XOR keystream from splitmix64 over the key hash.
// Involutive: applying twice with the same key restores the input.
// ---------------------------------------------------------------------------

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// XORs `data` with a keystream derived from `key`.
pub fn xor_stream(data: &[u8], key: &str) -> Vec<u8> {
    let mut state = Value::Str(key.to_owned()).stable_hash();
    let mut out = Vec::with_capacity(data.len());
    let mut chunk = [0u8; 8];
    for (i, &b) in data.iter().enumerate() {
        if i % 8 == 0 {
            chunk = splitmix64(&mut state).to_le_bytes();
        }
        out.push(b ^ chunk[i % 8]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compress_roundtrips() {
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"abcabcabc".to_vec(),
            vec![7u8; 1000],
            (0..=255u8).collect::<Vec<u8>>(),
            b"aaaabbbbccccdddd hello world aaaaaaaaaaaaaaaa".to_vec(),
        ] {
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data, "roundtrip for {data:?}");
        }
    }

    #[test]
    fn compress_shrinks_repetitive_data() {
        let data = vec![0u8; 4096];
        let c = compress(&data);
        assert!(
            c.len() < 32,
            "4096 zeros should compress to a few bytes, got {}",
            c.len()
        );
    }

    #[test]
    fn decompress_rejects_garbage() {
        assert!(decompress(&[]).is_err());
        assert!(
            decompress(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F])
                .is_err()
        );
        // Valid header, bogus op.
        assert!(decompress(&[4, 0x05, 1, 2]).is_err());
        // Run longer than declared length.
        let mut evil = Vec::new();
        write_varint(&mut evil, 4);
        evil.push(0x01);
        write_varint(&mut evil, 1_000_000);
        evil.push(0xAA);
        assert!(decompress(&evil).is_err());
    }

    #[test]
    fn encryption_is_involutive_and_key_sensitive() {
        let data = b"attack at dawn".to_vec();
        let enc = xor_stream(&data, "key1");
        assert_ne!(enc, data);
        assert_eq!(xor_stream(&enc, "key1"), data);
        assert_ne!(xor_stream(&enc, "key2"), data);
    }

    #[test]
    fn runtime_dispatch() {
        let mut rt = UdfRuntime::new(42);
        assert_eq!(
            rt.call("len", &[Value::Str("abc".into())]).unwrap(),
            Value::U64(3)
        );
        assert_eq!(
            rt.call("concat", &[Value::Str("a".into()), Value::Str("b".into())])
                .unwrap(),
            Value::Str("ab".into())
        );
        assert_eq!(
            rt.call("min", &[Value::U64(3), Value::U64(5)]).unwrap(),
            Value::U64(3)
        );
        assert_eq!(
            rt.call("max", &[Value::F64(3.5), Value::U64(5)]).unwrap(),
            Value::U64(5)
        );
        let h = rt.call("hash", &[Value::Str("x".into())]).unwrap();
        assert_eq!(h, Value::U64(Value::Str("x".into()).stable_hash()));
        assert!(rt.call("len", &[Value::U64(1)]).is_err());
        assert!(rt.call("nope", &[]).is_err());
    }

    #[test]
    fn runtime_randomness_is_seeded() {
        let mut a = UdfRuntime::new(7);
        let mut b = UdfRuntime::new(7);
        for _ in 0..10 {
            assert_eq!(a.random_f64(), b.random_f64());
        }
        let mut c = UdfRuntime::new(8);
        let same: Vec<f64> = (0..10).map(|_| a.random_f64()).collect();
        let diff: Vec<f64> = (0..10).map(|_| c.random_f64()).collect();
        assert_ne!(same, diff);
    }

    #[test]
    fn now_is_monotonic() {
        let mut rt = UdfRuntime::new(0);
        let a = rt.now();
        let b = rt.now();
        assert!(b > a);
    }

    #[test]
    fn compress_udf_roundtrip_through_dispatch() {
        let mut rt = UdfRuntime::new(0);
        let data = Value::Bytes(b"xxxxxxxxyyyyyyyyzzzz".to_vec());
        let c = rt.call("compress", std::slice::from_ref(&data)).unwrap();
        let d = rt.call("decompress", &[c]).unwrap();
        assert_eq!(d, data);
    }
}
