//! P4 programmable-switch simulator: match-action pipelines.
//!
//! Paper §2: "A P4-based programmable switch has access to about the first
//! 200 bytes of each network packet. To offload load balancing, we must put
//! the field the load balancer needs into the first 200 bytes of the
//! packet." This backend reproduces both halves of that reality:
//!
//! * the execution model is **match-action only**: exact-match tables over
//!   header fields, with a small fixed action set (forward, drop, abort,
//!   set-field-to-constant, route-by-hash). Anything needing general
//!   computation, per-packet state writes, randomness, or payload access is
//!   rejected at compile time;
//! * the compiler budgets the **header window**: every field the pipeline
//!   matches or writes must fit in [`HEADER_WINDOW`] bytes when encoded
//!   with the minimal header layout — the exact interplay between ADN's
//!   header synthesis and switch offload the paper describes.
//!
//! Table entries are installed from the element's `init` rows (and can be
//! updated by the controller at runtime via [`P4Tables`]), mirroring how
//! real switch tables are populated from the control plane.

use adn_ir::element::{ElementIr, IrStmt, JoinStrategy};
use adn_ir::expr::{IrBinOp, IrExpr};
use adn_rpc::value::{Value, ValueType};

/// Bytes of each packet visible to the switch.
pub const HEADER_WINDOW: usize = 200;
/// Fixed on-wire width budgeted per string field.
pub const STR_FIELD_WIDTH: usize = 32;

/// Actions a stage can take.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Continue to the next stage.
    Continue,
    /// Discard the packet.
    Drop,
    /// Reject with an abort code.
    Abort { code: u32 },
    /// Write a constant into a header field.
    SetConst { field: usize, value: Value },
    /// Route: replica index = stable_hash(field) % replica count.
    RouteByHash { field: usize },
}

/// One match-action stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Human-readable stage name.
    pub name: String,
    /// Field index matched (None = unconditional default action).
    pub match_field: Option<usize>,
    /// Index into [`P4Pipeline::tables`] supplying this stage's entries,
    /// when the stage matches against a (controller-updatable) table.
    /// Stages compiled from inline constants use `None` and carry their
    /// entries in `static_entries`.
    pub table: Option<usize>,
    /// Entries compiled from inline constants.
    pub static_entries: Vec<(Value, Action)>,
    /// Action when no entry matches.
    pub default: Action,
}

/// Runtime-updatable match tables (exact key → action), populated from the
/// element's init rows and maintained by the control plane thereafter.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct P4Tables {
    pub tables: Vec<Vec<(Value, Action)>>,
}

/// A compiled pipeline for one element.
#[derive(Debug, Clone, PartialEq)]
pub struct P4Pipeline {
    pub name: String,
    pub request: Vec<Stage>,
    pub response: Vec<Stage>,
    /// Initial table entries.
    pub initial_tables: P4Tables,
    /// Fields (indices into the request schema) the pipeline touches —
    /// these must ride in the header window.
    pub header_fields: Vec<usize>,
}

/// Execution outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct P4Verdict {
    pub dropped: bool,
    pub abort_code: Option<u32>,
    /// Stable hash routed on, if a RouteByHash action fired.
    pub route_hash: Option<u64>,
}

impl P4Verdict {
    fn forward() -> Self {
        Self {
            dropped: false,
            abort_code: None,
            route_hash: None,
        }
    }
}

/// Runs a stage list over header fields.
pub fn execute(stages: &[Stage], tables: &P4Tables, fields: &mut [Value]) -> P4Verdict {
    let mut verdict = P4Verdict::forward();
    for stage in stages {
        let action = match stage.match_field {
            Some(f) => {
                let key = &fields[f];
                let entries: &[(Value, Action)] = match stage.table {
                    Some(t) => &tables.tables[t],
                    None => &stage.static_entries,
                };
                entries
                    .iter()
                    .find(|(k, _)| k.dsl_eq(key))
                    .map(|(_, a)| a.clone())
                    .unwrap_or_else(|| stage.default.clone())
            }
            None => stage.default.clone(),
        };
        match action {
            Action::Continue => {}
            Action::Drop => {
                verdict.dropped = true;
                return verdict;
            }
            Action::Abort { code } => {
                verdict.abort_code = Some(code);
                return verdict;
            }
            Action::SetConst { field, value } => fields[field] = value,
            Action::RouteByHash { field } => {
                verdict.route_hash = Some(fields[field].stable_hash());
            }
        }
    }
    verdict
}

/// Compiles an element to a switch pipeline, or explains why it cannot run
/// on a switch.
pub fn compile(element: &ElementIr) -> Result<P4Pipeline, String> {
    let mut tables = P4Tables::default();
    let mut header_fields = Vec::new();
    let request = compile_stmts(element, &element.request, &mut tables, &mut header_fields)?;
    let response = compile_stmts(element, &element.response, &mut tables, &mut header_fields)?;

    // Header window budget: every touched field must fit.
    let mut budget = 0usize;
    for &_f in &header_fields {
        // Without the schema the compiler budgets conservatively by value
        // type discovered at compile time; the dataplane re-checks with the
        // real schema via `check_header_budget`.
        budget += 8;
    }
    if budget > HEADER_WINDOW {
        return Err(format!(
            "pipeline needs {budget} header bytes, switch window is {HEADER_WINDOW}"
        ));
    }

    Ok(P4Pipeline {
        name: element.name.clone(),
        request,
        response,
        initial_tables: tables,
        header_fields,
    })
}

/// Re-checks the header budget against real schema types. Called by the
/// placement layer, which knows the schema.
pub fn check_header_budget(fields: &[usize], types: &[ValueType]) -> Result<usize, String> {
    let mut budget = 0usize;
    for &f in fields {
        budget += match types.get(f) {
            Some(ValueType::U64 | ValueType::I64 | ValueType::F64) => 8,
            Some(ValueType::Bool) => 1,
            Some(ValueType::Str) => STR_FIELD_WIDTH,
            Some(ValueType::Bytes) => {
                return Err(format!(
                    "field {f}: bytes fields cannot ride the switch header"
                ))
            }
            None => return Err(format!("field {f} out of schema range")),
        };
    }
    if budget > HEADER_WINDOW {
        return Err(format!(
            "header needs {budget} bytes, switch window is {HEADER_WINDOW}"
        ));
    }
    Ok(budget)
}

fn touch(header_fields: &mut Vec<usize>, f: usize) {
    if !header_fields.contains(&f) {
        header_fields.push(f);
    }
}

fn compile_stmts(
    element: &ElementIr,
    stmts: &[IrStmt],
    tables: &mut P4Tables,
    header_fields: &mut Vec<usize>,
) -> Result<Vec<Stage>, String> {
    let mut stages = Vec::new();
    for stmt in stmts {
        match stmt {
            IrStmt::Select {
                assignments,
                join,
                condition,
                else_abort,
            } => {
                if !assignments.is_empty() {
                    return Err("switch stages cannot compute projections".into());
                }
                let fail_action = match else_abort {
                    None => Action::Drop,
                    Some((IrExpr::Const(v), _)) => Action::Abort {
                        code: v.as_u64().ok_or("abort code must be numeric")? as u32,
                    },
                    Some(_) => return Err("switch ELSE ABORT codes must be constants".into()),
                };
                match (join, condition) {
                    (Some(j), cond) => {
                        let table = &element.tables[j.table];
                        let JoinStrategy::KeyLookup { input_fields } = &j.strategy else {
                            return Err("switch joins need an exact-match key".into());
                        };
                        if input_fields.len() != 1 {
                            return Err("switch joins take a single key field".into());
                        }
                        let match_field = input_fields[0];
                        touch(header_fields, match_field);
                        // Install one entry per init row: the row's key
                        // matches, and the action is decided by evaluating
                        // the SELECT condition against the row at entry
                        // install time (rows are static data).
                        let key_col = table.key_columns[0];
                        let mut entries = Vec::new();
                        for row in &table.init_rows {
                            let passes = match cond {
                                Some(c) => eval_static_pred(c, row).ok_or_else(|| {
                                    "switch SELECT conditions may only read joined columns \
                                         and constants"
                                        .to_string()
                                })?,
                                None => true,
                            };
                            entries.push((
                                row[key_col].clone(),
                                if passes {
                                    Action::Continue
                                } else {
                                    fail_action.clone()
                                },
                            ));
                        }
                        tables.tables.push(entries);
                        stages.push(Stage {
                            name: format!("join_{}", table.name),
                            match_field: Some(match_field),
                            table: Some(tables.tables.len() - 1),
                            static_entries: Vec::new(),
                            default: fail_action.clone(), // inner join miss
                        });
                    }
                    (None, Some(cond)) => {
                        let stage = compile_predicate_stage(
                            cond,
                            Action::Continue,
                            fail_action.clone(),
                            header_fields,
                        )?;
                        stages.push(stage);
                    }
                    (None, None) => {} // SELECT * FROM input: no-op stage
                }
            }
            IrStmt::Drop { condition } => match condition {
                Some(cond) => stages.push(compile_predicate_stage(
                    cond,
                    Action::Drop,
                    Action::Continue,
                    header_fields,
                )?),
                None => stages.push(Stage {
                    name: "drop".into(),
                    match_field: None,
                    table: None,
                    static_entries: Vec::new(),
                    default: Action::Drop,
                }),
            },
            IrStmt::Abort {
                code,
                message: _,
                condition,
            } => {
                let IrExpr::Const(code_v) = code else {
                    return Err("switch abort codes must be constants".into());
                };
                let code = code_v.as_u64().ok_or("abort code must be numeric")? as u32;
                match condition {
                    Some(cond) => stages.push(compile_predicate_stage(
                        cond,
                        Action::Abort { code },
                        Action::Continue,
                        header_fields,
                    )?),
                    None => stages.push(Stage {
                        name: "abort".into(),
                        match_field: None,
                        table: None,
                        static_entries: Vec::new(),
                        default: Action::Abort { code },
                    }),
                }
            }
            IrStmt::Route { key, condition } => {
                if condition.is_some() {
                    return Err("conditional ROUTE does not compile to match-action".into());
                }
                let IrExpr::Field(f) = key else {
                    return Err("switch ROUTE key must be a header field".into());
                };
                touch(header_fields, *f);
                stages.push(Stage {
                    name: "route".into(),
                    match_field: None,
                    table: None,
                    static_entries: Vec::new(),
                    default: Action::RouteByHash { field: *f },
                });
            }
            IrStmt::Set {
                field,
                value,
                condition,
            } => {
                let IrExpr::Const(v) = value else {
                    return Err("switch SET values must be constants".into());
                };
                touch(header_fields, *field);
                match condition {
                    Some(cond) => stages.push(compile_predicate_stage(
                        cond,
                        Action::SetConst {
                            field: *field,
                            value: v.clone(),
                        },
                        Action::Continue,
                        header_fields,
                    )?),
                    None => stages.push(Stage {
                        name: format!("set_f{field}"),
                        match_field: None,
                        table: None,
                        static_entries: Vec::new(),
                        default: Action::SetConst {
                            field: *field,
                            value: v.clone(),
                        },
                    }),
                }
            }
            IrStmt::Insert { .. } | IrStmt::Update { .. } | IrStmt::Delete { .. } => {
                return Err(
                    "switch data planes cannot write state tables per-packet (control-plane \
                     installs entries)"
                        .into(),
                )
            }
        }
    }
    Ok(stages)
}

/// Compiles `field == const` (or const == field) into a match stage firing
/// `on_match` when equal, `on_miss` otherwise.
fn compile_predicate_stage(
    cond: &IrExpr,
    on_match: Action,
    on_miss: Action,
    header_fields: &mut Vec<usize>,
) -> Result<Stage, String> {
    let IrExpr::Binary { op, left, right } = cond else {
        return Err("switch predicates must be `field == constant`".into());
    };
    let (field, constant, invert) = match (op, left.as_ref(), right.as_ref()) {
        (IrBinOp::Eq, IrExpr::Field(f), IrExpr::Const(c))
        | (IrBinOp::Eq, IrExpr::Const(c), IrExpr::Field(f)) => (*f, c.clone(), false),
        (IrBinOp::NotEq, IrExpr::Field(f), IrExpr::Const(c))
        | (IrBinOp::NotEq, IrExpr::Const(c), IrExpr::Field(f)) => (*f, c.clone(), true),
        _ => return Err("switch predicates must be `field ==/!= constant`".into()),
    };
    touch(header_fields, field);
    let (hit, miss) = if invert {
        (on_miss, on_match)
    } else {
        (on_match, on_miss)
    };
    Ok(Stage {
        name: format!("pred_f{field}"),
        match_field: Some(field),
        table: None,
        static_entries: vec![(constant, hit)],
        default: miss,
    })
}

/// Evaluates a SELECT condition against a static table row: only `Col` refs
/// and constants with comparison/logical ops are allowed (anything else is
/// not installable as a table entry).
fn eval_static_pred(e: &IrExpr, row: &[Value]) -> Option<bool> {
    Some(match eval_static(e, row)? {
        Value::Bool(b) => b,
        _ => return None,
    })
}

fn eval_static(e: &IrExpr, row: &[Value]) -> Option<Value> {
    match e {
        IrExpr::Const(v) => Some(v.clone()),
        IrExpr::Col(c) => row.get(*c).cloned(),
        IrExpr::Binary { op, left, right } => {
            let l = eval_static(left, row)?;
            let r = eval_static(right, row)?;
            adn_ir::expr::eval_binop(*op, &l, &r).ok()
        }
        IrExpr::Unary { op, operand } => {
            let v = eval_static(operand, row)?;
            adn_ir::expr::eval_unop(*op, &v).ok()
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;

    fn schemas() -> (RpcSchema, RpcSchema) {
        (
            RpcSchema::builder()
                .field("object_id", ValueType::U64)
                .field("username", ValueType::Str)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .build()
                .unwrap(),
        )
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string) init {
                ('alice', 'W'), ('bob', 'R')
            };
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;

    #[test]
    fn acl_compiles_to_match_action() {
        let p = compile(&lower(ACL)).unwrap();
        assert_eq!(p.request.len(), 1);
        assert_eq!(p.request[0].match_field, Some(1)); // username
                                                       // Entry actions were decided at install time from the row data.
        let entries = &p.initial_tables.tables[0];
        assert_eq!(entries.len(), 2);
        assert!(entries
            .iter()
            .any(|(k, a)| *k == Value::Str("alice".into()) && *a == Action::Continue));
        assert!(entries
            .iter()
            .any(|(k, a)| *k == Value::Str("bob".into()) && *a == Action::Drop));
    }

    #[test]
    fn acl_executes_like_software() {
        let p = compile(&lower(ACL)).unwrap();
        let run = |user: &str| {
            let mut fields = vec![Value::U64(1), Value::Str(user.into()), Value::Bytes(vec![])];
            execute(&p.request, &p.initial_tables, &mut fields)
        };
        assert!(!run("alice").dropped);
        assert!(run("bob").dropped);
        assert!(run("eve").dropped, "unknown users drop (inner join)");
    }

    #[test]
    fn route_compiles_and_hashes() {
        let p = compile(&lower(
            "element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }",
        ))
        .unwrap();
        let mut fields = vec![Value::U64(42), Value::Str("x".into()), Value::Bytes(vec![])];
        let v = execute(&p.request, &p.initial_tables, &mut fields);
        assert_eq!(v.route_hash, Some(Value::U64(42).stable_hash()));
        assert_eq!(p.header_fields, vec![0]);
    }

    #[test]
    fn compression_rejected() {
        let err = compile(&lower(
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        ))
        .unwrap_err();
        assert!(err.contains("constant"), "{err}");
    }

    #[test]
    fn state_writes_rejected() {
        let err = compile(&lower(
            r#"element L() {
                state t(k: u64 key, v: u64);
                on request { INSERT INTO t VALUES (input.object_id, 1); SELECT * FROM input; }
            }"#,
        ))
        .unwrap_err();
        assert!(err.contains("control-plane"), "{err}");
    }

    #[test]
    fn random_rejected() {
        let err = compile(&lower(
            "element F(p: f64 = 0.1) { on request { ABORT(3) WHERE random() < p; SELECT * FROM input; } }",
        ))
        .unwrap_err();
        assert!(err.contains("field"), "{err}");
    }

    #[test]
    fn fixed_abort_with_eq_condition_compiles() {
        let p = compile(&lower(
            "element A() { on request { ABORT(9) WHERE input.object_id == 13; SELECT * FROM input; } }",
        ))
        .unwrap();
        let mut unlucky = vec![Value::U64(13), Value::Str("x".into()), Value::Bytes(vec![])];
        assert_eq!(
            execute(&p.request, &p.initial_tables, &mut unlucky).abort_code,
            Some(9)
        );
        let mut ok = vec![Value::U64(14), Value::Str("x".into()), Value::Bytes(vec![])];
        assert_eq!(
            execute(&p.request, &p.initial_tables, &mut ok).abort_code,
            None
        );
    }

    #[test]
    fn header_budget_checked_against_schema() {
        // username is a string: 32 bytes; object_id 8. Both fit.
        let types: Vec<ValueType> = schemas().0.fields().iter().map(|f| f.ty).collect();
        assert!(check_header_budget(&[0, 1], &types).unwrap() <= HEADER_WINDOW);
        // Bytes fields never fit.
        assert!(check_header_budget(&[2], &types).is_err());
        // Many string fields blow the window.
        let many_strs: Vec<ValueType> = (0..8).map(|_| ValueType::Str).collect();
        assert!(check_header_budget(&[0, 1, 2, 3, 4, 5, 6, 7], &many_strs).is_err());
    }
}
