//! # adn-backend — ADN compiler back-ends
//!
//! Paper §5.2: "the compiler translates optimized IR into platform-native
//! code". The prototype's one backend emitted Rust mRPC modules; the vision
//! includes eBPF and P4. This crate provides four:
//!
//! * [`native`] — the production path of the prototype: IR compiled into an
//!   in-process engine ([`native::NativeEngine`]) that executes per-RPC with
//!   no marshalling, standing in for the generated-and-compiled Rust module.
//! * [`jit`] — the compiled execution tiers on top of `adn-jit`: element
//!   plans lowered to a linear op IR and run either direct-threaded or as
//!   x86-64 template-JITed machine code ([`jit::JitEngine`]), with the
//!   tree-walker retained as the differential oracle and escape hatch.
//!   [`jit::compile_engine`] is the production entry point.
//! * [`rust_codegen`] — the literal artifact the paper's prototype shipped:
//!   Rust source text for an mRPC engine, generated from the IR (used for
//!   inspection and the lines-of-code comparison, experiment E3).
//! * [`ebpf`] — a kernel-offload simulator: a restricted register bytecode
//!   with a verifier (forward-only jumps, bounded programs, no floats, map
//!   state) and an interpreter. Elements that don't fit the model are
//!   rejected at compile time — exactly the portability gate of paper §2.
//! * [`isa`] — the genuine eBPF instruction encoding underneath it: 64-bit
//!   instruction words, an assembler/lifter with a round-trip guarantee
//!   against the restricted bytecode, a disassembler, and an interpreter
//!   over the real ABI. `adn-verifier`'s abstract interpreter runs on this
//!   encoding, so offload verdicts describe what would actually load.
//! * [`p4`] — a programmable-switch simulator: match-action stages over
//!   header fields only, with the ~200-byte header window constraint.
//!
//! Shared runtime pieces:
//!
//! * [`udf_impl`] — software implementations of the built-in UDFs
//!   (compression, encryption, hashing, …). `random()`/`now()` come from a
//!   seeded, per-engine source so experiments are reproducible.
//! * [`state`] — tabular element state with snapshot/restore and
//!   partition/merge, the substrate for live migration and scale-out.
//! * [`eval`] — the reference IR-expression evaluator.

pub mod adapters;
pub mod ebpf;
pub mod eval;
pub mod isa;
pub mod jit;
pub mod native;
pub mod p4;
pub mod plan;
pub mod rust_codegen;
pub mod state;
pub mod udf_impl;

use adn_ir::ElementIr;

/// Processor classes an element might be placed on (paper §5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Platform {
    /// In the RPC library, a sidecar process, or any general CPU context.
    Software,
    /// In-kernel eBPF.
    Ebpf,
    /// SmartNIC core (runs software engines under a cycle budget).
    SmartNic,
    /// P4 programmable switch.
    Switch,
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Platform::Software => "software",
            Platform::Ebpf => "ebpf",
            Platform::SmartNic => "smartnic",
            Platform::Switch => "switch",
        };
        f.write_str(s)
    }
}

/// Checks whether `element` can execute on `platform`, returning the reason
/// when it cannot. This is the feasibility gate the controller's placement
/// search uses.
pub fn supports(element: &ElementIr, platform: Platform) -> Result<(), String> {
    match platform {
        Platform::Software => Ok(()),
        Platform::SmartNic => {
            // SmartNIC cores run engine code; only UDFs flagged as
            // smartnic-portable are available there.
            for stmt in element.all_stmts() {
                for expr in stmt.expressions() {
                    for udf in expr.udf_names() {
                        let sig = adn_dsl::udf::lookup(&udf)
                            .ok_or_else(|| format!("unknown UDF {udf}"))?;
                        if !sig.portability.smartnic {
                            return Err(format!("UDF {udf} cannot run on a SmartNIC"));
                        }
                    }
                }
            }
            Ok(())
        }
        Platform::Ebpf => ebpf::compile(element).map(|_| ()),
        Platform::Switch => p4::compile(element).map(|_| ()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;
    use adn_rpc::value::ValueType;

    fn lower(src: &str) -> ElementIr {
        let req = RpcSchema::builder()
            .field("object_id", ValueType::U64)
            .field("payload", ValueType::Bytes)
            .build()
            .unwrap();
        let resp = RpcSchema::builder()
            .field("ok", ValueType::Bool)
            .build()
            .unwrap();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    #[test]
    fn software_supports_everything() {
        let e = lower(
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        );
        assert!(supports(&e, Platform::Software).is_ok());
        assert!(supports(&e, Platform::SmartNic).is_ok());
    }

    #[test]
    fn switch_rejects_compression() {
        let e = lower(
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        );
        assert!(supports(&e, Platform::Switch).is_err());
        assert!(supports(&e, Platform::Ebpf).is_err());
    }

    #[test]
    fn numeric_filter_fits_everywhere() {
        // Computed predicates fit eBPF; the switch needs plain
        // field-vs-constant matches.
        let computed = lower(
            "element F() { on request { DROP WHERE input.object_id % 2 == 1; SELECT * FROM input; } }",
        );
        assert!(supports(&computed, Platform::Software).is_ok());
        assert!(
            supports(&computed, Platform::Ebpf).is_ok(),
            "{:?}",
            supports(&computed, Platform::Ebpf)
        );
        assert!(supports(&computed, Platform::Switch).is_err());

        let exact = lower(
            "element F() { on request { DROP WHERE input.object_id == 13; SELECT * FROM input; } }",
        );
        assert!(
            supports(&exact, Platform::Switch).is_ok(),
            "{:?}",
            supports(&exact, Platform::Switch)
        );
    }
}
