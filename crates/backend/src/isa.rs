//! Real eBPF ISA: 64-bit instruction words, assembler, lifter, disassembler.
//!
//! This module gives the eBPF-sim backend a genuine BPF instruction
//! encoding. Every instruction is the kernel's 64-bit `bpf_insn` layout —
//! `opcode` (8 bits), `dst_reg`/`src_reg` (4 bits each), `off` (signed 16)
//! and `imm` (signed 32) — covering the ALU64/ALU32, JMP/JMP32, LDX/STX/ST
//! classes plus `CALL`, `EXIT` and the two-slot `lddw` form (including the
//! `src_reg = BPF_PSEUDO_MAP_FD` map-handle variant real loaders emit).
//!
//! Three translations live here:
//!
//! * [`assemble`] lowers an [`EbpfProgram`] (the restricted [`Insn`]
//!   bytecode the compiler emits) onto the real ISA under the execution
//!   model the kernel actually uses: message fields become `ldx`/`stx`
//!   through a **context pointer** (saved into callee-saved `r9` by the
//!   prologue), helpers become `call`s with arguments in `r1..r5` and the
//!   result in `r0` (caller-saved registers are spilled to the `r10` stack
//!   frame around each call, guided by a liveness analysis), and map
//!   lookups become the canonical `call map_lookup_elem; if r0 == 0 goto
//!   miss; ldx` null-checked pointer pattern.
//! * [`lift`] inverts `assemble`: it pattern-matches the canonical
//!   sequences back into [`Insn`]s. `lift(assemble(p).insns) == p` is the
//!   **round-trip guarantee**, enforced by proptests, for every program in
//!   canonical form (everything `ebpf::compile` emits).
//! * [`disasm`] renders any instruction stream in the familiar
//!   `r0 = r1`, `if r2 > 7 goto +5`, `exit` assembly style.
//!
//! The abstract-interpretation verifier (`adn_verifier::absint`) and the
//! encoded-form interpreter ([`crate::ebpf::execute_encoded`]) both
//! operate on this encoding, not on the legacy enum — so what is verified
//! is what runs.

use crate::ebpf::{
    AluOp, CmpOp, EbpfMaps, EbpfProgram, EbpfVerdict, Insn, RouteDecision, RET_ABORT, RET_DROP,
    RET_FORWARD,
};
use crate::udf_impl::UdfRuntime;
use adn_rpc::value::{Value, ValueType};

// ---------------------------------------------------------------------------
// Opcode encoding (kernel uapi values)
// ---------------------------------------------------------------------------

/// Instruction classes (low 3 opcode bits).
pub const BPF_LD: u8 = 0x00;
pub const BPF_LDX: u8 = 0x01;
pub const BPF_ST: u8 = 0x02;
pub const BPF_STX: u8 = 0x03;
pub const BPF_ALU: u8 = 0x04;
pub const BPF_JMP: u8 = 0x05;
pub const BPF_JMP32: u8 = 0x06;
pub const BPF_ALU64: u8 = 0x07;

/// Access sizes for LD/LDX/ST/STX (opcode bits 3–4).
pub const BPF_W: u8 = 0x00;
pub const BPF_H: u8 = 0x08;
pub const BPF_B: u8 = 0x10;
pub const BPF_DW: u8 = 0x18;

/// Addressing modes (opcode bits 5–7) — only IMM (lddw) and MEM are used.
pub const BPF_IMM: u8 = 0x00;
pub const BPF_MEM: u8 = 0x60;

/// ALU/JMP source operand: immediate (`K`) or register (`X`) — opcode bit 3.
pub const BPF_K: u8 = 0x00;
pub const BPF_X: u8 = 0x08;

/// ALU operations (opcode bits 4–7).
pub const BPF_ADD: u8 = 0x00;
pub const BPF_SUB: u8 = 0x10;
pub const BPF_MUL: u8 = 0x20;
pub const BPF_DIV: u8 = 0x30;
pub const BPF_OR: u8 = 0x40;
pub const BPF_AND: u8 = 0x50;
pub const BPF_LSH: u8 = 0x60;
pub const BPF_RSH: u8 = 0x70;
pub const BPF_NEG: u8 = 0x80;
pub const BPF_MOD: u8 = 0x90;
pub const BPF_XOR: u8 = 0xa0;
pub const BPF_MOV: u8 = 0xb0;
pub const BPF_ARSH: u8 = 0xc0;
pub const BPF_END: u8 = 0xd0;

/// JMP operations (opcode bits 4–7).
pub const BPF_JA: u8 = 0x00;
pub const BPF_JEQ: u8 = 0x10;
pub const BPF_JGT: u8 = 0x20;
pub const BPF_JGE: u8 = 0x30;
pub const BPF_JSET: u8 = 0x40;
pub const BPF_JNE: u8 = 0x50;
pub const BPF_JSGT: u8 = 0x60;
pub const BPF_JSGE: u8 = 0x70;
pub const BPF_CALL: u8 = 0x80;
pub const BPF_EXIT: u8 = 0x90;
pub const BPF_JLT: u8 = 0xa0;
pub const BPF_JLE: u8 = 0xb0;
pub const BPF_JSLT: u8 = 0xc0;
pub const BPF_JSLE: u8 = 0xd0;

/// `src_reg` marker on `lddw`: `imm` is a map handle, not a constant.
pub const BPF_PSEUDO_MAP_FD: u8 = 1;

/// `off` marker on BPF_DIV/BPF_MOD selecting the signed variant (cpu v4
/// `sdiv`/`smod` encoding).
pub const OFF_SDIV: i16 = 1;

// ---------------------------------------------------------------------------
// Helper IDs (this platform's helper set; map/time/random use kernel IDs)
// ---------------------------------------------------------------------------

pub const HELPER_MAP_LOOKUP: i32 = 1; // bpf_map_lookup_elem
pub const HELPER_MAP_UPDATE: i32 = 2; // bpf_map_update_elem
pub const HELPER_MAP_DELETE: i32 = 3; // bpf_map_delete_elem
pub const HELPER_KTIME_GET_NS: i32 = 5; // bpf_ktime_get_ns → logical clock
pub const HELPER_GET_PRANDOM: i32 = 7; // bpf_get_prandom_u32 → uniform u64
/// Platform-specific helpers (message-field access beyond scalar loads).
pub const HELPER_HASH_FIELD: i32 = 0x1001;
pub const HELPER_LEN_FIELD: i32 = 0x1002;
pub const HELPER_ROUTE: i32 = 0x1003;

/// Register the prologue saves the context pointer into (callee-saved, as
/// real programs do: `r9 = r1`).
pub const CTX_REG: u8 = 9;
/// Frame pointer (read-only, points at the top of the 512-byte stack).
pub const FP_REG: u8 = 10;
/// Stack frame size, mirroring the kernel's limit.
pub const STACK_SIZE: u16 = 512;
/// Every message field occupies one 8-byte context slot.
pub const CTX_SLOT_BYTES: i32 = 8;

/// Stack slot (offset from `r10`) a caller-saved register spills to.
pub const fn spill_slot(reg: u8) -> i16 {
    -8 * (reg as i16 + 1)
}
/// Scratch slot holding a map key passed by pointer.
pub const KEY_SLOT: i16 = -56;
/// Scratch slot holding a map value passed by pointer.
pub const VAL_SLOT: i16 = -64;

// ---------------------------------------------------------------------------
// Instruction words
// ---------------------------------------------------------------------------

/// One 64-bit eBPF instruction slot (`lddw` uses two).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpfInsn {
    pub opcode: u8,
    pub dst: u8,
    pub src: u8,
    pub off: i16,
    pub imm: i32,
}

impl BpfInsn {
    /// Packs into the kernel's little-endian 64-bit word layout.
    pub fn encode(self) -> u64 {
        (self.opcode as u64)
            | (((self.dst & 0x0f) as u64 | (((self.src & 0x0f) as u64) << 4)) << 8)
            | ((self.off as u16 as u64) << 16)
            | ((self.imm as u32 as u64) << 32)
    }

    /// Unpacks a 64-bit word.
    pub fn decode(word: u64) -> Self {
        BpfInsn {
            opcode: (word & 0xff) as u8,
            dst: ((word >> 8) & 0x0f) as u8,
            src: ((word >> 12) & 0x0f) as u8,
            off: ((word >> 16) & 0xffff) as u16 as i16,
            imm: ((word >> 32) & 0xffff_ffff) as u32 as i32,
        }
    }

    pub fn class(self) -> u8 {
        self.opcode & 0x07
    }

    /// For ALU/JMP classes: the operation bits.
    pub fn op(self) -> u8 {
        self.opcode & 0xf0
    }

    /// For ALU/JMP classes: true when the source operand is a register.
    pub fn is_reg_src(self) -> bool {
        self.opcode & 0x08 != 0
    }

    /// For LD/LDX/ST/STX classes: access size in bytes.
    pub fn size_bytes(self) -> u8 {
        match self.opcode & 0x18 {
            BPF_W => 4,
            BPF_H => 2,
            BPF_B => 1,
            _ => 8,
        }
    }

    /// Whether this slot begins a two-slot `lddw`.
    pub fn is_lddw(self) -> bool {
        self.opcode == BPF_LD | BPF_IMM | BPF_DW
    }
}

/// Encodes a stream to raw 64-bit words.
pub fn encode_words(insns: &[BpfInsn]) -> Vec<u64> {
    insns.iter().map(|i| i.encode()).collect()
}

/// Decodes raw 64-bit words back to instruction slots.
pub fn decode_words(words: &[u64]) -> Vec<BpfInsn> {
    words.iter().map(|w| BpfInsn::decode(*w)).collect()
}

// --- constructors ----------------------------------------------------------

pub fn alu64_reg(op: u8, dst: u8, src: u8) -> BpfInsn {
    BpfInsn {
        opcode: BPF_ALU64 | BPF_X | op,
        dst,
        src,
        off: 0,
        imm: 0,
    }
}

pub fn alu64_imm(op: u8, dst: u8, imm: i32) -> BpfInsn {
    BpfInsn {
        opcode: BPF_ALU64 | BPF_K | op,
        dst,
        src: 0,
        off: 0,
        imm,
    }
}

pub fn alu32_reg(op: u8, dst: u8, src: u8) -> BpfInsn {
    BpfInsn {
        opcode: BPF_ALU | BPF_X | op,
        dst,
        src,
        off: 0,
        imm: 0,
    }
}

pub fn alu32_imm(op: u8, dst: u8, imm: i32) -> BpfInsn {
    BpfInsn {
        opcode: BPF_ALU | BPF_K | op,
        dst,
        src: 0,
        off: 0,
        imm,
    }
}

pub fn mov64_reg(dst: u8, src: u8) -> BpfInsn {
    alu64_reg(BPF_MOV, dst, src)
}

pub fn mov64_imm(dst: u8, imm: i32) -> BpfInsn {
    alu64_imm(BPF_MOV, dst, imm)
}

pub fn jmp_reg(op: u8, dst: u8, src: u8, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: BPF_JMP | BPF_X | op,
        dst,
        src,
        off,
        imm: 0,
    }
}

pub fn jmp_imm(op: u8, dst: u8, imm: i32, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: BPF_JMP | BPF_K | op,
        dst,
        src: 0,
        off,
        imm,
    }
}

pub fn ja(off: i16) -> BpfInsn {
    BpfInsn {
        opcode: BPF_JMP | BPF_JA,
        dst: 0,
        src: 0,
        off,
        imm: 0,
    }
}

pub fn ldx(size: u8, dst: u8, src: u8, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: BPF_LDX | BPF_MEM | size,
        dst,
        src,
        off,
        imm: 0,
    }
}

pub fn stx(size: u8, dst: u8, src: u8, off: i16) -> BpfInsn {
    BpfInsn {
        opcode: BPF_STX | BPF_MEM | size,
        dst,
        src,
        off,
        imm: 0,
    }
}

pub fn st(size: u8, dst: u8, off: i16, imm: i32) -> BpfInsn {
    BpfInsn {
        opcode: BPF_ST | BPF_MEM | size,
        dst,
        src: 0,
        off,
        imm,
    }
}

pub fn call(helper: i32) -> BpfInsn {
    BpfInsn {
        opcode: BPF_JMP | BPF_CALL,
        dst: 0,
        src: 0,
        off: 0,
        imm: helper,
    }
}

pub fn exit() -> BpfInsn {
    BpfInsn {
        opcode: BPF_JMP | BPF_EXIT,
        dst: 0,
        src: 0,
        off: 0,
        imm: 0,
    }
}

/// Two-slot 64-bit immediate load.
pub fn lddw(dst: u8, imm: u64) -> [BpfInsn; 2] {
    lddw_with_src(dst, 0, imm)
}

/// Two-slot map-handle load (`src_reg = BPF_PSEUDO_MAP_FD`).
pub fn lddw_map(dst: u8, map: u32) -> [BpfInsn; 2] {
    lddw_with_src(dst, BPF_PSEUDO_MAP_FD, map as u64)
}

fn lddw_with_src(dst: u8, src: u8, imm: u64) -> [BpfInsn; 2] {
    [
        BpfInsn {
            opcode: BPF_LD | BPF_IMM | BPF_DW,
            dst,
            src,
            off: 0,
            imm: imm as u32 as i32,
        },
        BpfInsn {
            opcode: 0,
            dst: 0,
            src: 0,
            off: 0,
            imm: (imm >> 32) as u32 as i32,
        },
    ]
}

/// Reads the 64-bit immediate of an `lddw` pair.
pub fn lddw_imm(lo: BpfInsn, hi: BpfInsn) -> u64 {
    (lo.imm as u32 as u64) | ((hi.imm as u32 as u64) << 32)
}

// ---------------------------------------------------------------------------
// Disassembler
// ---------------------------------------------------------------------------

fn alu_op_str(op: u8) -> &'static str {
    match op {
        BPF_ADD => "+=",
        BPF_SUB => "-=",
        BPF_MUL => "*=",
        BPF_DIV => "/=",
        BPF_OR => "|=",
        BPF_AND => "&=",
        BPF_LSH => "<<=",
        BPF_RSH => ">>=",
        BPF_MOD => "%=",
        BPF_XOR => "^=",
        BPF_MOV => "=",
        BPF_ARSH => "s>>=",
        _ => "?=",
    }
}

fn jmp_op_str(op: u8) -> &'static str {
    match op {
        BPF_JEQ => "==",
        BPF_JGT => ">",
        BPF_JGE => ">=",
        BPF_JSET => "&",
        BPF_JNE => "!=",
        BPF_JSGT => "s>",
        BPF_JSGE => "s>=",
        BPF_JLT => "<",
        BPF_JLE => "<=",
        BPF_JSLT => "s<",
        BPF_JSLE => "s<=",
        _ => "?",
    }
}

fn helper_name(id: i32) -> &'static str {
    match id {
        HELPER_MAP_LOOKUP => "map_lookup_elem",
        HELPER_MAP_UPDATE => "map_update_elem",
        HELPER_MAP_DELETE => "map_delete_elem",
        HELPER_KTIME_GET_NS => "ktime_get_ns",
        HELPER_GET_PRANDOM => "get_prandom_u64",
        HELPER_HASH_FIELD => "adn_hash_field",
        HELPER_LEN_FIELD => "adn_len_field",
        HELPER_ROUTE => "adn_route",
        _ => "unknown_helper",
    }
}

/// Disassembles one slot (given the next slot for `lddw`), returning the
/// text and how many slots it consumed.
pub fn disasm_one(insn: BpfInsn, next: Option<BpfInsn>) -> (String, usize) {
    if insn.is_lddw() {
        if let Some(hi) = next {
            let imm = lddw_imm(insn, hi);
            let text = if insn.src == BPF_PSEUDO_MAP_FD {
                format!("r{} = map[{}] ll", insn.dst, imm)
            } else {
                format!("r{} = {:#x} ll", insn.dst, imm)
            };
            return (text, 2);
        }
        return ("<truncated lddw>".into(), 1);
    }
    let text = match insn.class() {
        BPF_ALU64 | BPF_ALU => {
            let w = if insn.class() == BPF_ALU { "w" } else { "r" };
            match insn.op() {
                BPF_NEG => format!("{w}{} = -{w}{}", insn.dst, insn.dst),
                BPF_END => format!("{w}{} = bswap{}", insn.dst, insn.imm),
                op => {
                    let signed = (op == BPF_DIV || op == BPF_MOD) && insn.off == OFF_SDIV;
                    let sym = if signed {
                        if op == BPF_DIV {
                            "s/="
                        } else {
                            "s%="
                        }
                    } else {
                        alu_op_str(op)
                    };
                    if insn.is_reg_src() {
                        format!("{w}{} {sym} {w}{}", insn.dst, insn.src)
                    } else {
                        format!("{w}{} {sym} {}", insn.dst, insn.imm)
                    }
                }
            }
        }
        BPF_JMP | BPF_JMP32 => match insn.op() {
            BPF_JA => format!("goto {:+}", insn.off),
            BPF_CALL => format!("call {}", helper_name(insn.imm)),
            BPF_EXIT => "exit".into(),
            op => {
                let w = if insn.class() == BPF_JMP32 { "w" } else { "r" };
                if insn.is_reg_src() {
                    format!(
                        "if {w}{} {} {w}{} goto {:+}",
                        insn.dst,
                        jmp_op_str(op),
                        insn.src,
                        insn.off
                    )
                } else {
                    format!(
                        "if {w}{} {} {} goto {:+}",
                        insn.dst,
                        jmp_op_str(op),
                        insn.imm,
                        insn.off
                    )
                }
            }
        },
        BPF_LDX => format!(
            "r{} = *(u{} *)(r{} {:+})",
            insn.dst,
            insn.size_bytes() as u16 * 8,
            insn.src,
            insn.off
        ),
        BPF_STX => format!(
            "*(u{} *)(r{} {:+}) = r{}",
            insn.size_bytes() as u16 * 8,
            insn.dst,
            insn.off,
            insn.src
        ),
        BPF_ST => format!(
            "*(u{} *)(r{} {:+}) = {}",
            insn.size_bytes() as u16 * 8,
            insn.dst,
            insn.off,
            insn.imm
        ),
        _ => format!("<invalid opcode {:#04x}>", insn.opcode),
    };
    (text, 1)
}

/// Disassembles a stream, one numbered line per instruction.
pub fn disasm(insns: &[BpfInsn]) -> String {
    let mut out = String::new();
    let mut pc = 0;
    while pc < insns.len() {
        let (text, used) = disasm_one(insns[pc], insns.get(pc + 1).copied());
        out.push_str(&format!("{pc:4}: {text}\n"));
        pc += used;
    }
    out
}

// ---------------------------------------------------------------------------
// Assembler: legacy Insn program → real ISA
// ---------------------------------------------------------------------------

/// Result of assembling: the encoded stream plus the slot each legacy
/// instruction starts at (with one trailing end sentinel).
#[derive(Debug, Clone)]
pub struct Assembled {
    pub insns: Vec<BpfInsn>,
    pub legacy_starts: Vec<usize>,
}

/// Registers a legacy instruction reads (`use` set, per successor edge:
/// uses are identical on both edges).
fn legacy_uses(insn: &Insn) -> Vec<u8> {
    match insn {
        Insn::LdImm { .. }
        | Insn::LdField { .. }
        | Insn::HashField { .. }
        | Insn::LenField { .. }
        | Insn::Rand { .. }
        | Insn::Now { .. }
        | Insn::Jmp { .. } => vec![],
        Insn::StField { src, .. } => vec![*src],
        Insn::Mov { src, .. } => vec![*src],
        Insn::Alu { dst, src, .. } => vec![*dst, *src],
        Insn::Neg { dst } | Insn::LogicalNot { dst } => vec![*dst],
        Insn::JmpIf { a, b, .. } => vec![*a, *b],
        Insn::MapLookup { key, .. } => vec![*key],
        Insn::MapUpdate { key, value, .. } => vec![*key, *value],
        Insn::MapDelete { key, .. } => vec![*key],
        Insn::Route { key_hash } => vec![*key_hash],
        Insn::Ret { verdict } => {
            if *verdict == RET_ABORT {
                vec![0]
            } else {
                vec![]
            }
        }
    }
}

/// Register a legacy instruction defines, if any (for `MapLookup` the def
/// happens only on the hit/fallthrough edge).
fn legacy_def(insn: &Insn) -> Option<u8> {
    match insn {
        Insn::LdImm { dst, .. }
        | Insn::LdField { dst, .. }
        | Insn::Mov { dst, .. }
        | Insn::HashField { dst, .. }
        | Insn::LenField { dst, .. }
        | Insn::Rand { dst }
        | Insn::Now { dst }
        | Insn::MapLookup { dst, .. } => Some(*dst),
        _ => None,
    }
}

/// Live-register sets before each legacy instruction. Forward-only jumps
/// make one reverse pass exact (every successor index is greater).
fn liveness(prog: &EbpfProgram) -> Vec<u16> {
    let n = prog.insns.len();
    let mut live = vec![0u16; n + 1];
    for i in (0..n).rev() {
        let insn = &prog.insns[i];
        let def_mask = legacy_def(insn).map(|r| 1u16 << r).unwrap_or(0);
        let mut out: u16 = 0;
        match insn {
            Insn::Ret { .. } => {}
            Insn::Jmp { off } => out = live[(i + 1 + *off as usize).min(n)],
            Insn::JmpIf { off, .. } => {
                out = live[i + 1] | live[(i + 1 + *off as usize).min(n)];
            }
            Insn::MapLookup { miss_off, .. } => {
                // dst is defined on the fallthrough (hit) edge only.
                out = (live[i + 1] & !def_mask) | live[(i + 1 + *miss_off as usize).min(n)];
                live[i] = out;
                for r in legacy_uses(insn) {
                    live[i] |= 1 << r;
                }
                continue;
            }
            _ => out = live[i + 1],
        }
        live[i] = out & !def_mask;
        for r in legacy_uses(insn) {
            live[i] |= 1 << r;
        }
    }
    live
}

/// Caller-saved registers (`r0..r5`) that must survive a helper call at
/// legacy index `i`: live on some successor edge and not defined by the
/// call itself.
fn spill_set(prog: &EbpfProgram, live: &[u16], i: usize) -> Vec<u8> {
    let insn = &prog.insns[i];
    let n = prog.insns.len();
    let mut out_live: u16 = match insn {
        Insn::MapLookup { miss_off, .. } => {
            live.get(i + 1).copied().unwrap_or(0)
                | live
                    .get((i + 1 + *miss_off as usize).min(n))
                    .copied()
                    .unwrap_or(0)
        }
        _ => live.get(i + 1).copied().unwrap_or(0),
    };
    if let Some(d) = legacy_def(insn) {
        out_live &= !(1 << d);
    }
    (0u8..6).filter(|r| out_live & (1 << r) != 0).collect()
}

fn alu_opcode(op: AluOp) -> (u8, i16) {
    match op {
        AluOp::Add => (BPF_ADD, 0),
        AluOp::Sub => (BPF_SUB, 0),
        AluOp::Mul => (BPF_MUL, 0),
        AluOp::DivU => (BPF_DIV, 0),
        AluOp::ModU => (BPF_MOD, 0),
        AluOp::DivS => (BPF_DIV, OFF_SDIV),
        AluOp::ModS => (BPF_MOD, OFF_SDIV),
        AluOp::And => (BPF_AND, 0),
        AluOp::Or => (BPF_OR, 0),
        AluOp::Xor => (BPF_XOR, 0),
    }
}

fn cmp_opcode(cmp: CmpOp, signed: bool) -> u8 {
    match (cmp, signed) {
        (CmpOp::Eq, _) => BPF_JEQ,
        (CmpOp::Ne, _) => BPF_JNE,
        (CmpOp::Lt, false) => BPF_JLT,
        (CmpOp::Lt, true) => BPF_JSLT,
        (CmpOp::Le, false) => BPF_JLE,
        (CmpOp::Le, true) => BPF_JSLE,
        (CmpOp::Gt, false) => BPF_JGT,
        (CmpOp::Gt, true) => BPF_JSGT,
        (CmpOp::Ge, false) => BPF_JGE,
        (CmpOp::Ge, true) => BPF_JSGE,
    }
}

/// Encoded slot count for one legacy instruction given its spill count.
fn seq_len(insn: &Insn, spills: usize) -> usize {
    let s = spills;
    match insn {
        Insn::LdImm { .. } => 2,
        Insn::LdField { .. }
        | Insn::StField { .. }
        | Insn::Mov { .. }
        | Insn::Alu { .. }
        | Insn::Neg { .. }
        | Insn::Jmp { .. }
        | Insn::JmpIf { .. } => 1,
        Insn::LogicalNot { .. } => 4,
        Insn::HashField { .. } | Insn::LenField { .. } => 2 * s + 3,
        Insn::Rand { .. } | Insn::Now { .. } => 2 * s + 2,
        Insn::Route { .. } => 2 * s + 2,
        Insn::MapLookup { .. } => 3 * s + 10,
        Insn::MapUpdate { .. } => 2 * s + 9,
        Insn::MapDelete { .. } => 2 * s + 6,
        Insn::Ret { verdict } => {
            if *verdict == RET_ABORT {
                3
            } else {
                2
            }
        }
    }
}

/// Assembles a legacy program onto the real ISA. Fails when the program
/// uses registers the real encoding reserves (`r9` context, `r10` frame).
pub fn assemble(prog: &EbpfProgram) -> Result<Assembled, String> {
    let n = prog.insns.len();
    for (i, insn) in prog.insns.iter().enumerate() {
        let mut regs = legacy_uses(insn);
        regs.extend(legacy_def(insn));
        if let Some(r) = regs.iter().find(|r| **r >= CTX_REG) {
            return Err(format!(
                "insn {i}: register r{r} is reserved in the real ISA encoding"
            ));
        }
    }

    let live = liveness(prog);
    let spills: Vec<Vec<u8>> = (0..n)
        .map(|i| match prog.insns[i] {
            Insn::HashField { .. }
            | Insn::LenField { .. }
            | Insn::Rand { .. }
            | Insn::Now { .. }
            | Insn::Route { .. }
            | Insn::MapLookup { .. }
            | Insn::MapUpdate { .. }
            | Insn::MapDelete { .. } => spill_set(prog, &live, i),
            _ => vec![],
        })
        .collect();

    // Layout pass: slot each legacy instruction starts at (prologue = 1).
    let mut starts = Vec::with_capacity(n + 1);
    let mut at = 1usize;
    for (i, insn) in prog.insns.iter().enumerate() {
        starts.push(at);
        at += seq_len(insn, spills[i].len());
    }
    starts.push(at);

    // Encoded branch offset from the slot holding the jump to the start of
    // legacy instruction `target`.
    let enc_off = |jump_slot: usize, target: usize| -> Result<i16, String> {
        let t = starts[target.min(n)];
        let delta = t as i64 - (jump_slot as i64 + 1);
        i16::try_from(delta).map_err(|_| format!("branch offset {delta} exceeds i16"))
    };

    let mut out: Vec<BpfInsn> = Vec::with_capacity(at);
    out.push(mov64_reg(CTX_REG, 1)); // prologue: save ctx pointer

    for (i, insn) in prog.insns.iter().enumerate() {
        debug_assert_eq!(out.len(), starts[i], "layout drift at legacy insn {i}");
        let sp = &spills[i];
        let emit_spills = |out: &mut Vec<BpfInsn>| {
            for &r in sp {
                out.push(stx(BPF_DW, FP_REG, r, spill_slot(r)));
            }
        };
        let emit_restores = |out: &mut Vec<BpfInsn>| {
            for &r in sp {
                out.push(ldx(BPF_DW, r, FP_REG, spill_slot(r)));
            }
        };
        match insn {
            Insn::LdImm { dst, imm } => out.extend(lddw(*dst, *imm)),
            Insn::LdField { dst, field } => out.push(ldx(BPF_DW, *dst, CTX_REG, *field as i16 * 8)),
            Insn::StField { field, src } => out.push(stx(BPF_DW, CTX_REG, *src, *field as i16 * 8)),
            Insn::Mov { dst, src } => out.push(mov64_reg(*dst, *src)),
            Insn::Alu { op, dst, src } => {
                let (opc, off) = alu_opcode(*op);
                let mut i = alu64_reg(opc, *dst, *src);
                i.off = off;
                out.push(i);
            }
            Insn::Neg { dst } => out.push(BpfInsn {
                opcode: BPF_ALU64 | BPF_NEG,
                dst: *dst,
                src: 0,
                off: 0,
                imm: 0,
            }),
            Insn::LogicalNot { dst } => {
                out.push(jmp_imm(BPF_JEQ, *dst, 0, 2));
                out.push(mov64_imm(*dst, 0));
                out.push(ja(1));
                out.push(mov64_imm(*dst, 1));
            }
            Insn::Jmp { off } => {
                let o = enc_off(out.len(), i + 1 + *off as usize)?;
                out.push(ja(o));
            }
            Insn::JmpIf {
                cmp,
                signed,
                a,
                b,
                off,
            } => {
                let o = enc_off(out.len(), i + 1 + *off as usize)?;
                out.push(jmp_reg(cmp_opcode(*cmp, *signed), *a, *b, o));
            }
            Insn::HashField { dst, field } | Insn::LenField { dst, field } => {
                let helper = if matches!(insn, Insn::HashField { .. }) {
                    HELPER_HASH_FIELD
                } else {
                    HELPER_LEN_FIELD
                };
                emit_spills(&mut out);
                out.push(mov64_imm(1, *field as i32));
                out.push(call(helper));
                out.push(mov64_reg(*dst, 0));
                emit_restores(&mut out);
            }
            Insn::Rand { dst } | Insn::Now { dst } => {
                let helper = if matches!(insn, Insn::Rand { .. }) {
                    HELPER_GET_PRANDOM
                } else {
                    HELPER_KTIME_GET_NS
                };
                emit_spills(&mut out);
                out.push(call(helper));
                out.push(mov64_reg(*dst, 0));
                emit_restores(&mut out);
            }
            Insn::Route { key_hash } => {
                emit_spills(&mut out);
                out.push(mov64_reg(1, *key_hash));
                out.push(call(HELPER_ROUTE));
                emit_restores(&mut out);
            }
            Insn::MapLookup {
                map,
                key,
                dst,
                miss_off,
            } => {
                let s = sp.len() as i16;
                emit_spills(&mut out);
                out.push(stx(BPF_DW, FP_REG, *key, KEY_SLOT));
                out.extend(lddw_map(1, *map as u32));
                out.push(mov64_reg(2, FP_REG));
                out.push(alu64_imm(BPF_ADD, 2, KEY_SLOT as i32));
                out.push(call(HELPER_MAP_LOOKUP));
                // miss: skip ldx + restores + hit-ja
                out.push(jmp_imm(BPF_JEQ, 0, 0, s + 2));
                out.push(ldx(BPF_DW, *dst, 0, 0));
                emit_restores(&mut out);
                out.push(ja(s + 1)); // over the miss trampoline
                emit_restores(&mut out);
                let o = enc_off(out.len(), i + 1 + *miss_off as usize)?;
                out.push(ja(o));
            }
            Insn::MapUpdate { map, key, value } => {
                emit_spills(&mut out);
                out.push(stx(BPF_DW, FP_REG, *key, KEY_SLOT));
                out.push(stx(BPF_DW, FP_REG, *value, VAL_SLOT));
                out.extend(lddw_map(1, *map as u32));
                out.push(mov64_reg(2, FP_REG));
                out.push(alu64_imm(BPF_ADD, 2, KEY_SLOT as i32));
                out.push(mov64_reg(3, FP_REG));
                out.push(alu64_imm(BPF_ADD, 3, VAL_SLOT as i32));
                out.push(call(HELPER_MAP_UPDATE));
                emit_restores(&mut out);
            }
            Insn::MapDelete { map, key } => {
                emit_spills(&mut out);
                out.push(stx(BPF_DW, FP_REG, *key, KEY_SLOT));
                out.extend(lddw_map(1, *map as u32));
                out.push(mov64_reg(2, FP_REG));
                out.push(alu64_imm(BPF_ADD, 2, KEY_SLOT as i32));
                out.push(call(HELPER_MAP_DELETE));
                emit_restores(&mut out);
            }
            Insn::Ret { verdict } => match *verdict {
                RET_FORWARD => {
                    out.push(mov64_imm(0, 0));
                    out.push(exit());
                }
                RET_DROP => {
                    out.push(mov64_imm(0, 1));
                    out.push(exit());
                }
                _ => {
                    out.push(alu64_imm(BPF_LSH, 0, 8));
                    out.push(alu64_imm(BPF_OR, 0, RET_ABORT as i32));
                    out.push(exit());
                }
            },
        }
    }
    debug_assert_eq!(out.len(), at, "layout drift at program end");
    Ok(Assembled {
        insns: out,
        legacy_starts: starts,
    })
}

// ---------------------------------------------------------------------------
// Lifter: canonical real-ISA stream → legacy Insn program
// ---------------------------------------------------------------------------

struct Lifter<'a> {
    insns: &'a [BpfInsn],
    pc: usize,
    out: Vec<Insn>,
    /// Slot each lifted legacy instruction started at.
    starts: Vec<usize>,
    /// (legacy index, encoded target slot) pairs to re-point after lifting.
    fixups: Vec<(usize, usize)>,
}

impl<'a> Lifter<'a> {
    fn peek(&self, ahead: usize) -> Option<BpfInsn> {
        self.insns.get(self.pc + ahead).copied()
    }

    fn err(&self, what: &str) -> String {
        format!("slot {}: not a canonical sequence: {what}", self.pc)
    }

    /// Matches `count` consecutive spill stores, returning the registers.
    fn match_spills(&self) -> Vec<u8> {
        let mut regs = Vec::new();
        let mut at = 0;
        while let Some(i) = self.peek(at) {
            if i.opcode == BPF_STX | BPF_MEM | BPF_DW
                && i.dst == FP_REG
                && i.src < 6
                && i.off == spill_slot(i.src)
            {
                regs.push(i.src);
                at += 1;
            } else {
                break;
            }
        }
        regs
    }

    /// Consumes `regs.len()` restore loads matching `regs`.
    fn expect_restores(&mut self, regs: &[u8]) -> Result<(), String> {
        for &r in regs {
            let i = self.peek(0).ok_or_else(|| self.err("truncated restores"))?;
            if i.opcode != BPF_LDX | BPF_MEM | BPF_DW
                || i.dst != r
                || i.src != FP_REG
                || i.off != spill_slot(r)
            {
                return Err(self.err("restore sequence mismatch"));
            }
            self.pc += 1;
        }
        Ok(())
    }

    fn expect(&mut self, want: BpfInsn, what: &str) -> Result<(), String> {
        if self.peek(0) != Some(want) {
            return Err(self.err(what));
        }
        self.pc += 1;
        Ok(())
    }

    fn lift_all(mut self) -> Result<(EbpfProgram, Vec<usize>), String> {
        // Prologue.
        if self.peek(0) != Some(mov64_reg(CTX_REG, 1)) {
            return Err("missing `r9 = r1` prologue".into());
        }
        self.pc = 1;
        while self.pc < self.insns.len() {
            self.starts.push(self.pc);
            self.lift_one()?;
        }
        self.starts.push(self.pc);
        // Re-point branch targets from encoded slots to legacy indices.
        let starts = self.starts.clone();
        let legacy_index = |slot: usize| -> Result<usize, String> {
            starts
                .binary_search(&slot)
                .map_err(|_| format!("branch target slot {slot} is mid-sequence"))
        };
        for (li, slot) in self.fixups {
            let target = legacy_index(slot)?;
            let off = target
                .checked_sub(li + 1)
                .ok_or_else(|| format!("backward branch to legacy insn {target}"))?
                as u16;
            match &mut self.out[li] {
                Insn::Jmp { off: o } => *o = off,
                Insn::JmpIf { off: o, .. } => *o = off,
                Insn::MapLookup { miss_off, .. } => *miss_off = off,
                other => unreachable!("fixup on non-jump {other:?}"),
            }
        }
        Ok((EbpfProgram { insns: self.out }, starts))
    }

    fn lift_one(&mut self) -> Result<(), String> {
        let insn = self.peek(0).expect("in range");
        let li = self.out.len();

        // Helper sequences: spill prefix then a discriminating body.
        let sp = self.match_spills();
        if !sp.is_empty() || self.is_helper_body(sp.len()) {
            self.pc += sp.len();
            return self.lift_helper(sp);
        }

        match insn.class() {
            BPF_LD if insn.is_lddw() => {
                let hi = self.peek(1).ok_or_else(|| self.err("truncated lddw"))?;
                if insn.src != 0 || hi != lddw(insn.dst, lddw_imm(insn, hi))[1] {
                    return Err(self.err("unexpected lddw form"));
                }
                self.out.push(Insn::LdImm {
                    dst: insn.dst,
                    imm: lddw_imm(insn, hi),
                });
                self.pc += 2;
            }
            BPF_LDX => {
                if insn.opcode != BPF_LDX | BPF_MEM | BPF_DW
                    || insn.src != CTX_REG
                    || insn.off < 0
                    || insn.off % 8 != 0
                {
                    return Err(self.err("non-context load"));
                }
                self.out.push(Insn::LdField {
                    dst: insn.dst,
                    field: (insn.off / 8) as u16,
                });
                self.pc += 1;
            }
            BPF_STX => {
                if insn.opcode != BPF_STX | BPF_MEM | BPF_DW
                    || insn.dst != CTX_REG
                    || insn.off < 0
                    || insn.off % 8 != 0
                {
                    return Err(self.err("non-context store"));
                }
                self.out.push(Insn::StField {
                    field: (insn.off / 8) as u16,
                    src: insn.src,
                });
                self.pc += 1;
            }
            BPF_ALU64 => self.lift_alu64(insn)?,
            BPF_JMP => match insn.op() {
                BPF_JA => {
                    let target = (self.pc as i64 + 1 + insn.off as i64) as usize;
                    self.out.push(Insn::Jmp { off: 0 });
                    self.fixups.push((li, target));
                    self.pc += 1;
                }
                BPF_EXIT => return Err(self.err("bare exit outside a Ret sequence")),
                BPF_CALL => return Err(self.err("call without canonical spill frame")),
                op => {
                    if !insn.is_reg_src() {
                        // Only LogicalNot emits K-source jumps, handled below.
                        return self.lift_logical_not(insn);
                    }
                    let (cmp, signed) = match op {
                        BPF_JEQ => (CmpOp::Eq, false),
                        BPF_JNE => (CmpOp::Ne, false),
                        BPF_JLT => (CmpOp::Lt, false),
                        BPF_JLE => (CmpOp::Le, false),
                        BPF_JGT => (CmpOp::Gt, false),
                        BPF_JGE => (CmpOp::Ge, false),
                        BPF_JSLT => (CmpOp::Lt, true),
                        BPF_JSLE => (CmpOp::Le, true),
                        BPF_JSGT => (CmpOp::Gt, true),
                        BPF_JSGE => (CmpOp::Ge, true),
                        _ => return Err(self.err("unsupported jump op")),
                    };
                    let target = (self.pc as i64 + 1 + insn.off as i64) as usize;
                    self.out.push(Insn::JmpIf {
                        cmp,
                        signed,
                        a: insn.dst,
                        b: insn.src,
                        off: 0,
                    });
                    self.fixups.push((li, target));
                    self.pc += 1;
                }
            },
            _ => return Err(self.err("unsupported instruction class")),
        }
        Ok(())
    }

    fn lift_alu64(&mut self, insn: BpfInsn) -> Result<(), String> {
        if insn.op() == BPF_NEG {
            self.out.push(Insn::Neg { dst: insn.dst });
            self.pc += 1;
            return Ok(());
        }
        // Ret sequences are the only K-source ALU64 uses.
        if !insn.is_reg_src() {
            if insn.op() == BPF_MOV
                && insn.dst == 0
                && (insn.imm == 0 || insn.imm == 1)
                && self.peek(1) == Some(exit())
            {
                self.out.push(Insn::Ret {
                    verdict: insn.imm as u8,
                });
                self.pc += 2;
                return Ok(());
            }
            if insn == alu64_imm(BPF_LSH, 0, 8)
                && self.peek(1) == Some(alu64_imm(BPF_OR, 0, RET_ABORT as i32))
                && self.peek(2) == Some(exit())
            {
                self.out.push(Insn::Ret { verdict: RET_ABORT });
                self.pc += 3;
                return Ok(());
            }
            return Err(self.err("unexpected immediate ALU"));
        }
        if insn.op() == BPF_MOV {
            self.out.push(Insn::Mov {
                dst: insn.dst,
                src: insn.src,
            });
            self.pc += 1;
            return Ok(());
        }
        let op = match (insn.op(), insn.off) {
            (BPF_ADD, 0) => AluOp::Add,
            (BPF_SUB, 0) => AluOp::Sub,
            (BPF_MUL, 0) => AluOp::Mul,
            (BPF_DIV, 0) => AluOp::DivU,
            (BPF_MOD, 0) => AluOp::ModU,
            (BPF_DIV, OFF_SDIV) => AluOp::DivS,
            (BPF_MOD, OFF_SDIV) => AluOp::ModS,
            (BPF_AND, 0) => AluOp::And,
            (BPF_OR, 0) => AluOp::Or,
            (BPF_XOR, 0) => AluOp::Xor,
            _ => return Err(self.err("unsupported ALU op")),
        };
        self.out.push(Insn::Alu {
            op,
            dst: insn.dst,
            src: insn.src,
        });
        self.pc += 1;
        Ok(())
    }

    /// `jeq dst, 0, +2; dst = 0; goto +1; dst = 1` — LogicalNot.
    fn lift_logical_not(&mut self, insn: BpfInsn) -> Result<(), String> {
        let dst = insn.dst;
        if insn == jmp_imm(BPF_JEQ, dst, 0, 2)
            && self.peek(1) == Some(mov64_imm(dst, 0))
            && self.peek(2) == Some(ja(1))
            && self.peek(3) == Some(mov64_imm(dst, 1))
        {
            self.out.push(Insn::LogicalNot { dst });
            self.pc += 4;
            return Ok(());
        }
        Err(self.err("immediate jump outside a LogicalNot sequence"))
    }

    /// Whether the slots at `pc + spills` look like a helper body.
    fn is_helper_body(&self, spills: usize) -> bool {
        let at = |k: usize| self.peek(spills + k);
        match at(0) {
            Some(i) if i.opcode == BPF_JMP | BPF_CALL => true, // rand/now
            Some(i) if i == mov64_reg(1, i.src) && i.op() == BPF_MOV && i.is_reg_src() => {
                matches!(at(1), Some(c) if c.opcode == BPF_JMP | BPF_CALL && c.imm == HELPER_ROUTE)
            }
            Some(i)
                if i.op() == BPF_MOV && !i.is_reg_src() && i.dst == 1 && i.class() == BPF_ALU64 =>
            {
                matches!(at(1), Some(c) if c.opcode == BPF_JMP | BPF_CALL
                    && (c.imm == HELPER_HASH_FIELD || c.imm == HELPER_LEN_FIELD))
            }
            Some(i)
                if i.opcode == BPF_STX | BPF_MEM | BPF_DW
                    && i.dst == FP_REG
                    && (i.off == KEY_SLOT || i.off == VAL_SLOT) =>
            {
                true // map helper
            }
            _ => false,
        }
    }

    fn lift_helper(&mut self, sp: Vec<u8>) -> Result<(), String> {
        let li = self.out.len();
        let body = self.peek(0).ok_or_else(|| self.err("truncated helper"))?;

        // rand/now: `call id; dst = r0`.
        if body.opcode == BPF_JMP | BPF_CALL
            && (body.imm == HELPER_GET_PRANDOM || body.imm == HELPER_KTIME_GET_NS)
        {
            self.pc += 1;
            let mv = self.peek(0).ok_or_else(|| self.err("truncated helper"))?;
            if mv.op() != BPF_MOV || !mv.is_reg_src() || mv.src != 0 || mv.class() != BPF_ALU64 {
                return Err(self.err("helper result move missing"));
            }
            self.pc += 1;
            self.expect_restores(&sp)?;
            self.out.push(if body.imm == HELPER_GET_PRANDOM {
                Insn::Rand { dst: mv.dst }
            } else {
                Insn::Now { dst: mv.dst }
            });
            return Ok(());
        }

        // hash/len: `r1 = field; call id; dst = r0`.
        if body.op() == BPF_MOV && !body.is_reg_src() && body.dst == 1 && body.class() == BPF_ALU64
        {
            let field = body.imm as u16;
            let c = self.peek(1).ok_or_else(|| self.err("truncated helper"))?;
            if c.opcode != BPF_JMP | BPF_CALL
                || (c.imm != HELPER_HASH_FIELD && c.imm != HELPER_LEN_FIELD)
            {
                return Err(self.err("expected hash/len call"));
            }
            let mv = self.peek(2).ok_or_else(|| self.err("truncated helper"))?;
            if mv.op() != BPF_MOV || !mv.is_reg_src() || mv.src != 0 || mv.class() != BPF_ALU64 {
                return Err(self.err("helper result move missing"));
            }
            self.pc += 3;
            self.expect_restores(&sp)?;
            self.out.push(if c.imm == HELPER_HASH_FIELD {
                Insn::HashField { dst: mv.dst, field }
            } else {
                Insn::LenField { dst: mv.dst, field }
            });
            return Ok(());
        }

        // route: `r1 = key; call route`.
        if body.op() == BPF_MOV && body.is_reg_src() && body.dst == 1 && body.class() == BPF_ALU64 {
            let c = self.peek(1).ok_or_else(|| self.err("truncated helper"))?;
            if c.opcode != BPF_JMP | BPF_CALL || c.imm != HELPER_ROUTE {
                return Err(self.err("expected route call"));
            }
            self.pc += 2;
            self.expect_restores(&sp)?;
            self.out.push(Insn::Route { key_hash: body.src });
            return Ok(());
        }

        // map helpers: key (and maybe value) stashed to scratch slots.
        if body.opcode == BPF_STX | BPF_MEM | BPF_DW && body.dst == FP_REG && body.off == KEY_SLOT {
            let key = body.src;
            self.pc += 1;
            let next = self
                .peek(0)
                .ok_or_else(|| self.err("truncated map helper"))?;
            let value = if next.opcode == BPF_STX | BPF_MEM | BPF_DW
                && next.dst == FP_REG
                && next.off == VAL_SLOT
            {
                self.pc += 1;
                Some(next.src)
            } else {
                None
            };
            // `lddw r1, map` (pseudo), `r2 = r10; r2 += KEY_SLOT`.
            let lo = self
                .peek(0)
                .ok_or_else(|| self.err("truncated map helper"))?;
            let hi = self
                .peek(1)
                .ok_or_else(|| self.err("truncated map helper"))?;
            if !lo.is_lddw() || lo.src != BPF_PSEUDO_MAP_FD || lo.dst != 1 {
                return Err(self.err("expected map-handle lddw"));
            }
            let map = lddw_imm(lo, hi) as u8;
            self.pc += 2;
            self.expect(mov64_reg(2, FP_REG), "expected `r2 = r10`")?;
            self.expect(
                alu64_imm(BPF_ADD, 2, KEY_SLOT as i32),
                "expected key offset",
            )?;
            if let Some(value) = value {
                self.expect(mov64_reg(3, FP_REG), "expected `r3 = r10`")?;
                self.expect(
                    alu64_imm(BPF_ADD, 3, VAL_SLOT as i32),
                    "expected val offset",
                )?;
                self.expect(call(HELPER_MAP_UPDATE), "expected map_update call")?;
                self.expect_restores(&sp)?;
                self.out.push(Insn::MapUpdate { map, key, value });
                return Ok(());
            }
            let c = self
                .peek(0)
                .ok_or_else(|| self.err("truncated map helper"))?;
            self.pc += 1;
            match c.imm {
                HELPER_MAP_DELETE if c.opcode == BPF_JMP | BPF_CALL => {
                    self.expect_restores(&sp)?;
                    self.out.push(Insn::MapDelete { map, key });
                    Ok(())
                }
                HELPER_MAP_LOOKUP if c.opcode == BPF_JMP | BPF_CALL => {
                    let s = sp.len() as i16;
                    self.expect(jmp_imm(BPF_JEQ, 0, 0, s + 2), "expected null check")?;
                    let ld = self.peek(0).ok_or_else(|| self.err("truncated lookup"))?;
                    if ld.opcode != BPF_LDX | BPF_MEM | BPF_DW || ld.src != 0 || ld.off != 0 {
                        return Err(self.err("expected value load through r0"));
                    }
                    self.pc += 1;
                    self.expect_restores(&sp)?;
                    self.expect(ja(s + 1), "expected hit-path jump")?;
                    self.expect_restores(&sp)?;
                    let miss = self.peek(0).ok_or_else(|| self.err("truncated lookup"))?;
                    if miss.opcode != BPF_JMP | BPF_JA {
                        return Err(self.err("expected miss-path jump"));
                    }
                    let target = (self.pc as i64 + 1 + miss.off as i64) as usize;
                    self.pc += 1;
                    self.out.push(Insn::MapLookup {
                        map,
                        key,
                        dst: ld.dst,
                        miss_off: 0,
                    });
                    self.fixups.push((li, target));
                    Ok(())
                }
                _ => Err(self.err("unexpected map helper call")),
            }
        } else {
            Err(self.err("unrecognized helper body"))
        }
    }
}

/// Lifts a canonical encoded stream back to the legacy program. This is
/// the inverse of [`assemble`] for canonical form; arbitrary streams that
/// do not follow the canonical sequences are rejected.
pub fn lift(insns: &[BpfInsn]) -> Result<EbpfProgram, String> {
    Lifter {
        insns,
        pc: 0,
        out: Vec::new(),
        starts: Vec::new(),
        fixups: Vec::new(),
    }
    .lift_all()
    .map(|(prog, _)| prog)
}

// ---------------------------------------------------------------------------
// Interpreter over the real encoding
// ---------------------------------------------------------------------------

/// Base virtual addresses for the interpreter's (and verifier's) memory
/// regions. Pointers are ordinary 64-bit register values tagged by region.
pub const STACK_BASE: u64 = 0x1000_0000_0000;
pub const CTX_BASE: u64 = 0x2000_0000_0000;
pub const MAPVAL_BASE: u64 = 0x3000_0000_0000;
pub const MAP_BASE: u64 = 0x4000_0000_0000;

/// Deterministic junk a helper call writes into the caller-saved argument
/// registers `r1..r5`, so programs that wrongly rely on them surviving a
/// call fail loudly (and differ visibly from the legacy interpreter).
pub const CLOBBER: u64 = 0xdead_beef_0000_0000;

/// Execution budget: the encoding permits backward jumps, so interpretation
/// of unverified streams is fuel-limited rather than structurally bounded.
const FUEL: usize = 1 << 20;

struct Mem<'a> {
    stack: [u8; STACK_SIZE as usize],
    fields: &'a mut [Value],
    maps: &'a mut EbpfMaps,
    /// `(map, key)` the live map-value pointer refers to, if any.
    mapval: Option<(usize, u64)>,
}

impl Mem<'_> {
    fn read(&self, addr: u64, size: u8) -> Result<u64, String> {
        let size = size as u64;
        if (STACK_BASE..STACK_BASE + STACK_SIZE as u64).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            if off + size as usize > STACK_SIZE as usize {
                return Err(format!("stack read of {size} bytes at {off} out of bounds"));
            }
            let mut v = 0u64;
            for (k, b) in self.stack[off..off + size as usize].iter().enumerate() {
                v |= (*b as u64) << (8 * k);
            }
            return Ok(v);
        }
        if (CTX_BASE..CTX_BASE + 8 * self.fields.len() as u64).contains(&addr) {
            let off = addr - CTX_BASE;
            if size != 8 || !off.is_multiple_of(8) {
                return Err("context loads must be 8-byte aligned doublewords".into());
            }
            return Ok(match &self.fields[(off / 8) as usize] {
                Value::U64(v) => *v,
                Value::I64(v) => *v as u64,
                Value::Bool(b) => *b as u64,
                _ => 0,
            });
        }
        if (MAPVAL_BASE..MAPVAL_BASE + 8).contains(&addr) {
            let (m, key) = self
                .mapval
                .ok_or("load through a stale map-value pointer")?;
            let off = (addr - MAPVAL_BASE) as usize;
            if off + size as usize > 8 {
                return Err("map-value read out of bounds".into());
            }
            let bytes = self.maps.maps[m]
                .get(&key)
                .copied()
                .unwrap_or(0)
                .to_le_bytes();
            let mut v = 0u64;
            for (k, b) in bytes[off..off + size as usize].iter().enumerate() {
                v |= (*b as u64) << (8 * k);
            }
            return Ok(v);
        }
        Err(format!("invalid memory read at {addr:#x}"))
    }

    fn write(&mut self, addr: u64, val: u64, size: u8) -> Result<(), String> {
        let size = size as usize;
        if (STACK_BASE..STACK_BASE + STACK_SIZE as u64).contains(&addr) {
            let off = (addr - STACK_BASE) as usize;
            if off + size > STACK_SIZE as usize {
                return Err(format!(
                    "stack write of {size} bytes at {off} out of bounds"
                ));
            }
            for k in 0..size {
                self.stack[off + k] = (val >> (8 * k)) as u8;
            }
            return Ok(());
        }
        if (CTX_BASE..CTX_BASE + 8 * self.fields.len() as u64).contains(&addr) {
            let off = addr - CTX_BASE;
            if size != 8 || !off.is_multiple_of(8) {
                return Err("context stores must be 8-byte aligned doublewords".into());
            }
            let slot = &mut self.fields[(off / 8) as usize];
            *slot = match slot.value_type() {
                ValueType::U64 => Value::U64(val),
                ValueType::I64 => Value::I64(val as i64),
                ValueType::Bool => Value::Bool(val != 0),
                _ => slot.clone(),
            };
            return Ok(());
        }
        if (MAPVAL_BASE..MAPVAL_BASE + 8).contains(&addr) {
            let (m, key) = self
                .mapval
                .ok_or("store through a stale map-value pointer")?;
            let off = (addr - MAPVAL_BASE) as usize;
            if off + size > 8 {
                return Err("map-value write out of bounds".into());
            }
            let mut bytes = self.maps.maps[m]
                .get(&key)
                .copied()
                .unwrap_or(0)
                .to_le_bytes();
            for k in 0..size {
                bytes[off + k] = (val >> (8 * k)) as u8;
            }
            self.maps.maps[m].insert(key, u64::from_le_bytes(bytes));
            return Ok(());
        }
        Err(format!("invalid memory write at {addr:#x}"))
    }
}

/// Executes an encoded stream under the real ABI: `r1` = context pointer,
/// `r10` = frame pointer, helpers via `call`, verdict in `r0`'s low byte
/// with the abort code in bits 8..40. The legacy [`crate::ebpf::execute`]
/// and this interpreter agree on every assembled program — the conformance
/// suite enforces it. Unverified streams get fuel-limited, error-checked
/// execution instead of undefined behavior.
pub fn execute_encoded(
    insns: &[BpfInsn],
    fields: &mut [Value],
    maps: &mut EbpfMaps,
    udf: &mut UdfRuntime,
    route: &mut RouteDecision,
) -> Result<EbpfVerdict, String> {
    let mut regs = [0u64; 11];
    regs[1] = CTX_BASE;
    regs[FP_REG as usize] = STACK_BASE + STACK_SIZE as u64;
    let mut mem = Mem {
        stack: [0; STACK_SIZE as usize],
        fields,
        maps,
        mapval: None,
    };
    let mut pc = 0usize;
    let mut fuel = FUEL;

    while pc < insns.len() {
        fuel -= 1;
        if fuel == 0 {
            return Err("execution fuel exhausted (runaway loop?)".into());
        }
        let insn = insns[pc];
        let dst = insn.dst as usize;
        let src = insn.src as usize;
        if dst >= 11 || src >= 11 {
            return Err(format!("pc {pc}: register out of range"));
        }
        match insn.class() {
            BPF_LD => {
                if !insn.is_lddw() {
                    return Err(format!("pc {pc}: unsupported LD form"));
                }
                let hi = *insns
                    .get(pc + 1)
                    .ok_or_else(|| format!("pc {pc}: truncated lddw"))?;
                let imm = lddw_imm(insn, hi);
                regs[dst] = if insn.src == BPF_PSEUDO_MAP_FD {
                    if imm as usize >= mem.maps.maps.len() {
                        return Err(format!("pc {pc}: map {imm} out of range"));
                    }
                    MAP_BASE + imm
                } else {
                    imm
                };
                pc += 2;
                continue;
            }
            BPF_LDX => {
                let addr = regs[src].wrapping_add(insn.off as i64 as u64);
                regs[dst] = mem.read(addr, insn.size_bytes())?;
            }
            BPF_ST | BPF_STX => {
                let addr = regs[dst].wrapping_add(insn.off as i64 as u64);
                let val = if insn.class() == BPF_STX {
                    regs[src]
                } else {
                    insn.imm as i64 as u64
                };
                mem.write(addr, val, insn.size_bytes())?;
            }
            BPF_ALU64 | BPF_ALU => {
                if dst == FP_REG as usize {
                    return Err(format!("pc {pc}: r10 is read-only"));
                }
                let is64 = insn.class() == BPF_ALU64;
                let a = regs[dst];
                let b = if insn.is_reg_src() {
                    regs[src]
                } else {
                    insn.imm as i64 as u64
                };
                let signed = insn.off == OFF_SDIV;
                let r64 = |a: u64, b: u64| -> Result<u64, String> {
                    Ok(match insn.op() {
                        BPF_ADD => a.wrapping_add(b),
                        BPF_SUB => a.wrapping_sub(b),
                        BPF_MUL => a.wrapping_mul(b),
                        BPF_DIV if signed => {
                            let (x, y) = (a as i64, b as i64);
                            if y == 0 {
                                0
                            } else {
                                x.wrapping_div(y) as u64
                            }
                        }
                        BPF_DIV => a.checked_div(b).unwrap_or(0),
                        BPF_MOD if signed => {
                            let (x, y) = (a as i64, b as i64);
                            if y == 0 {
                                a
                            } else {
                                x.wrapping_rem(y) as u64
                            }
                        }
                        BPF_MOD => {
                            if b == 0 {
                                a
                            } else {
                                a % b
                            }
                        }
                        BPF_AND => a & b,
                        BPF_OR => a | b,
                        BPF_XOR => a ^ b,
                        BPF_LSH => a.wrapping_shl(b as u32 & 63),
                        BPF_RSH => a.wrapping_shr(b as u32 & 63),
                        BPF_ARSH => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                        BPF_MOV => b,
                        BPF_NEG => (a as i64).wrapping_neg() as u64,
                        op => return Err(format!("pc {pc}: unsupported ALU op {op:#04x}")),
                    })
                };
                regs[dst] = if is64 {
                    r64(a, b)?
                } else {
                    // ALU32: operate on the low halves, zero-extend.
                    let (a, b) = (a as u32 as u64, b as u32 as u64);
                    match insn.op() {
                        BPF_LSH => (a as u32).wrapping_shl(b as u32 & 31) as u64,
                        BPF_RSH => (a as u32).wrapping_shr(b as u32 & 31) as u64,
                        BPF_ARSH => ((a as u32 as i32).wrapping_shr(b as u32 & 31)) as u32 as u64,
                        BPF_NEG => (a as u32 as i32).wrapping_neg() as u32 as u64,
                        _ => r64(a, b)? as u32 as u64,
                    }
                };
            }
            BPF_JMP | BPF_JMP32 => match insn.op() {
                BPF_JA => {
                    pc = (pc as i64 + 1 + insn.off as i64) as usize;
                    continue;
                }
                BPF_EXIT => {
                    return Ok(match (regs[0] & 0xff) as u8 {
                        RET_FORWARD => EbpfVerdict::Forward,
                        RET_DROP => EbpfVerdict::Drop,
                        RET_ABORT => EbpfVerdict::Abort {
                            code: (regs[0] >> 8) as u32,
                        },
                        v => return Err(format!("pc {pc}: invalid verdict {v}")),
                    });
                }
                BPF_CALL => {
                    call_helper(pc, insn.imm, &mut regs, &mut mem, udf, route)?;
                    for (r, slot) in regs.iter_mut().enumerate().take(6).skip(1) {
                        *slot = CLOBBER | r as u64;
                    }
                }
                op => {
                    let (mut a, mut b) = (
                        regs[dst],
                        if insn.is_reg_src() {
                            regs[src]
                        } else {
                            insn.imm as i64 as u64
                        },
                    );
                    if insn.class() == BPF_JMP32 {
                        a = a as u32 as u64;
                        b = b as u32 as u64;
                    }
                    let (sa, sb) = if insn.class() == BPF_JMP32 {
                        (a as u32 as i32 as i64, b as u32 as i32 as i64)
                    } else {
                        (a as i64, b as i64)
                    };
                    let taken = match op {
                        BPF_JEQ => a == b,
                        BPF_JNE => a != b,
                        BPF_JGT => a > b,
                        BPF_JGE => a >= b,
                        BPF_JLT => a < b,
                        BPF_JLE => a <= b,
                        BPF_JSET => a & b != 0,
                        BPF_JSGT => sa > sb,
                        BPF_JSGE => sa >= sb,
                        BPF_JSLT => sa < sb,
                        BPF_JSLE => sa <= sb,
                        op => return Err(format!("pc {pc}: unsupported jump op {op:#04x}")),
                    };
                    if taken {
                        pc = (pc as i64 + 1 + insn.off as i64) as usize;
                        continue;
                    }
                }
            },
            c => return Err(format!("pc {pc}: unsupported class {c:#04x}")),
        }
        pc += 1;
    }
    Err("program fell off the end without exit".into())
}

fn call_helper(
    pc: usize,
    id: i32,
    regs: &mut [u64; 11],
    mem: &mut Mem<'_>,
    udf: &mut UdfRuntime,
    route: &mut RouteDecision,
) -> Result<(), String> {
    let map_of = |ptr: u64| -> Result<usize, String> {
        let idx = ptr.wrapping_sub(MAP_BASE) as usize;
        if ptr < MAP_BASE || idx >= mem.maps.maps.len() {
            return Err(format!("pc {pc}: r1 is not a map pointer"));
        }
        Ok(idx)
    };
    let field_of = |idx: u64, n: usize| -> Result<usize, String> {
        if idx as usize >= n {
            return Err(format!("pc {pc}: field index {idx} out of range"));
        }
        Ok(idx as usize)
    };
    regs[0] = match id {
        HELPER_MAP_LOOKUP => {
            let m = map_of(regs[1])?;
            let key = mem.read(regs[2], 8)?;
            if mem.maps.maps[m].contains_key(&key) {
                mem.mapval = Some((m, key));
                MAPVAL_BASE
            } else {
                0
            }
        }
        HELPER_MAP_UPDATE => {
            let m = map_of(regs[1])?;
            let key = mem.read(regs[2], 8)?;
            let val = mem.read(regs[3], 8)?;
            mem.maps.maps[m].insert(key, val);
            0
        }
        HELPER_MAP_DELETE => {
            let m = map_of(regs[1])?;
            let key = mem.read(regs[2], 8)?;
            mem.maps.maps[m].remove(&key);
            0
        }
        HELPER_KTIME_GET_NS => udf.now(),
        HELPER_GET_PRANDOM => udf.random_u64(),
        HELPER_HASH_FIELD => {
            let f = field_of(regs[1], mem.fields.len())?;
            mem.fields[f].stable_hash()
        }
        HELPER_LEN_FIELD => {
            let f = field_of(regs[1], mem.fields.len())?;
            match &mem.fields[f] {
                Value::Str(s) => s.len() as u64,
                Value::Bytes(b) => b.len() as u64,
                _ => 0,
            }
        }
        HELPER_ROUTE => {
            route.key_hash = Some(regs[1]);
            0
        }
        other => return Err(format!("pc {pc}: unknown helper {other}")),
    };
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip_exhaustive_fields() {
        let samples = [
            BpfInsn {
                opcode: BPF_ALU64 | BPF_X | BPF_ADD,
                dst: 3,
                src: 7,
                off: -2,
                imm: -1,
            },
            mov64_imm(0, i32::MIN),
            ja(i16::MIN),
            call(HELPER_HASH_FIELD),
            exit(),
            ldx(BPF_W, 5, 9, 4096),
            st(BPF_B, 10, -511, 255),
        ];
        for insn in samples {
            assert_eq!(BpfInsn::decode(insn.encode()), insn);
        }
    }

    #[test]
    fn lddw_two_slot_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0xdead_beef_cafe_babe] {
            let [lo, hi] = lddw(4, v);
            assert!(lo.is_lddw());
            assert_eq!(lddw_imm(lo, hi), v);
        }
        let [lo, hi] = lddw_map(1, 3);
        assert_eq!(lo.src, BPF_PSEUDO_MAP_FD);
        assert_eq!(lddw_imm(lo, hi), 3);
    }

    #[test]
    fn assemble_lift_roundtrip_simple() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdImm { dst: 1, imm: 42 },
                Insn::LdField { dst: 2, field: 0 },
                Insn::Alu {
                    op: AluOp::Add,
                    dst: 2,
                    src: 1,
                },
                Insn::StField { field: 1, src: 2 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        let asm = assemble(&prog).unwrap();
        assert_eq!(lift(&asm.insns).unwrap(), prog);
    }

    #[test]
    fn assemble_lift_roundtrip_jumps_and_helpers() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::Rand { dst: 1 },
                Insn::LdImm { dst: 2, imm: 10 },
                Insn::JmpIf {
                    cmp: CmpOp::Lt,
                    signed: false,
                    a: 1,
                    b: 2,
                    off: 2,
                },
                Insn::HashField { dst: 3, field: 1 },
                Insn::Route { key_hash: 3 },
                Insn::Ret { verdict: RET_DROP },
            ],
        };
        let asm = assemble(&prog).unwrap();
        assert_eq!(lift(&asm.insns).unwrap(), prog);
    }

    #[test]
    fn assemble_lift_roundtrip_maps() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdField { dst: 1, field: 0 },
                Insn::MapLookup {
                    map: 0,
                    key: 1,
                    dst: 2,
                    miss_off: 2,
                },
                Insn::MapUpdate {
                    map: 0,
                    key: 1,
                    value: 2,
                },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
                Insn::MapDelete { map: 0, key: 1 },
                Insn::Ret { verdict: RET_DROP },
            ],
        };
        let asm = assemble(&prog).unwrap();
        assert_eq!(lift(&asm.insns).unwrap(), prog);
    }

    #[test]
    fn lookup_emits_null_checked_pointer_pattern() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdField { dst: 1, field: 0 },
                Insn::MapLookup {
                    map: 0,
                    key: 1,
                    dst: 2,
                    miss_off: 0,
                },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        let asm = assemble(&prog).unwrap();
        let text = disasm(&asm.insns);
        assert!(text.contains("call map_lookup_elem"), "{text}");
        assert!(text.contains("if r0 == 0 goto"), "{text}");
        assert!(text.contains("*(u64 *)(r0 +0)"), "{text}");
    }

    #[test]
    fn abort_encodes_verdict_in_low_byte() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdImm { dst: 0, imm: 7 },
                Insn::Ret { verdict: RET_ABORT },
            ],
        };
        let asm = assemble(&prog).unwrap();
        let text = disasm(&asm.insns);
        assert!(text.contains("r0 <<= 8"), "{text}");
        assert!(text.contains("r0 |= 2"), "{text}");
        assert_eq!(lift(&asm.insns).unwrap(), prog);
    }

    fn run_both(prog: &EbpfProgram, fields: Vec<Value>, seed: u64) {
        let mut maps_a = EbpfMaps {
            maps: vec![Default::default()],
        };
        let mut maps_b = maps_a.clone();
        let mut fields_a = fields.clone();
        let mut fields_b = fields;
        let mut udf_a = UdfRuntime::new(seed);
        let mut udf_b = UdfRuntime::new(seed);
        let mut route_a = RouteDecision::default();
        let mut route_b = RouteDecision::default();
        let legacy =
            crate::ebpf::execute(prog, &mut fields_a, &mut maps_a, &mut udf_a, &mut route_a);
        let asm = assemble(prog).unwrap();
        let encoded = execute_encoded(
            &asm.insns,
            &mut fields_b,
            &mut maps_b,
            &mut udf_b,
            &mut route_b,
        )
        .unwrap();
        assert_eq!(legacy, encoded);
        assert_eq!(fields_a, fields_b);
        assert_eq!(maps_a.maps, maps_b.maps);
        assert_eq!(route_a, route_b);
    }

    #[test]
    fn encoded_execution_matches_legacy_on_stateful_program() {
        // Keyed counter: lookup-or-drop, bump, write back, store to ctx.
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdField { dst: 1, field: 0 },
                Insn::MapLookup {
                    map: 0,
                    key: 1,
                    dst: 2,
                    miss_off: 4,
                },
                Insn::LdImm { dst: 3, imm: 1 },
                Insn::Alu {
                    op: AluOp::Add,
                    dst: 2,
                    src: 3,
                },
                Insn::MapUpdate {
                    map: 0,
                    key: 1,
                    value: 2,
                },
                Insn::StField { field: 1, src: 1 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        crate::ebpf::verify(&prog, 1).unwrap();
        // Both a map miss (key 5 absent) and, after seeding, a hit.
        run_both(&prog, vec![Value::U64(5), Value::U64(0)], 7);
        let seeded = EbpfProgram {
            insns: {
                let mut v = vec![
                    Insn::LdField { dst: 1, field: 0 },
                    Insn::LdImm { dst: 2, imm: 9 },
                    Insn::MapUpdate {
                        map: 0,
                        key: 1,
                        value: 2,
                    },
                ];
                v.extend(prog.insns.clone());
                v
            },
        };
        run_both(&seeded, vec![Value::U64(5), Value::U64(0)], 7);
    }

    #[test]
    fn encoded_execution_matches_legacy_on_helpers_and_aborts() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::Rand { dst: 1 },
                Insn::Now { dst: 2 },
                Insn::Alu {
                    op: AluOp::Xor,
                    dst: 1,
                    src: 2,
                },
                Insn::HashField { dst: 3, field: 1 },
                Insn::Route { key_hash: 3 },
                Insn::LdImm { dst: 4, imm: 3 },
                Insn::JmpIf {
                    cmp: CmpOp::Lt,
                    signed: false,
                    a: 1,
                    b: 4,
                    off: 1,
                },
                Insn::Ret { verdict: RET_DROP },
                Insn::LdImm { dst: 0, imm: 42 },
                Insn::Ret { verdict: RET_ABORT },
            ],
        };
        crate::ebpf::verify(&prog, 0).unwrap();
        for seed in 0..8 {
            run_both(
                &prog,
                vec![Value::U64(1), Value::Bytes(vec![1, 2, 3])],
                seed,
            );
        }
    }

    #[test]
    fn encoded_mod_by_zero_leaves_dst_unchanged() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdImm { dst: 1, imm: 41 },
                Insn::LdImm { dst: 2, imm: 0 },
                Insn::Alu {
                    op: AluOp::ModU,
                    dst: 1,
                    src: 2,
                },
                Insn::StField { field: 0, src: 1 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        let mut fields = vec![Value::U64(0)];
        let asm = assemble(&prog).unwrap();
        let mut maps = EbpfMaps::default();
        let mut udf = UdfRuntime::new(0);
        let mut route = RouteDecision::default();
        execute_encoded(&asm.insns, &mut fields, &mut maps, &mut udf, &mut route).unwrap();
        assert_eq!(fields[0], Value::U64(41));
    }

    #[test]
    fn encoded_interpreter_is_fuel_limited_on_backward_jumps() {
        // `goto -1` spins forever; the interpreter must bail, not hang.
        let insns = vec![mov64_reg(CTX_REG, 1), ja(-1)];
        let mut fields = vec![Value::U64(0)];
        let mut maps = EbpfMaps::default();
        let mut udf = UdfRuntime::new(0);
        let mut route = RouteDecision::default();
        let err =
            execute_encoded(&insns, &mut fields, &mut maps, &mut udf, &mut route).unwrap_err();
        assert!(err.contains("fuel"), "{err}");
    }

    #[test]
    fn lifter_rejects_non_canonical_stream() {
        // A bare call with no spill frame is not canonical.
        let insns = vec![mov64_reg(CTX_REG, 1), call(999), exit()];
        assert!(lift(&insns).is_err());
    }

    #[test]
    fn disasm_is_stable() {
        let insns = vec![
            mov64_reg(9, 1),
            ldx(BPF_DW, 2, 9, 8),
            alu64_imm(BPF_ADD, 2, 5),
            jmp_reg(BPF_JGT, 2, 3, 1),
            exit(),
        ];
        let text = disasm(&insns);
        assert_eq!(
            text,
            "   0: r9 = r1\n   1: r2 = *(u64 *)(r9 +8)\n   2: r2 += 5\n   3: if r2 > r3 goto +1\n   4: exit\n"
        );
    }
}
