//! eBPF-offload simulator: bytecode, verifier, compiler, interpreter.
//!
//! Paper §3 places RPC processing "in-kernel (e.g., using eBPF)" when the
//! element fits the kernel's execution model, and §2 explains why much of a
//! service mesh *cannot* be offloaded. This module reproduces that boundary
//! faithfully by compiling IR elements to a bytecode with real eBPF-style
//! restrictions:
//!
//! * registers hold 64-bit scalars only — **no floats, no strings**;
//! * **no backward jumps** (and hence no loops): scan joins and whole-table
//!   updates do not compile;
//! * state lives in **maps** with a single `u64` key and a single `u64`
//!   value — a string-keyed ACL does not compile, a u64-keyed one does;
//! * helper calls (`hash`, `len`, `rand`, `now`) mirror BPF helpers;
//! * integer arithmetic **wraps** (two's complement); division by zero
//!   yields 0 and modulo by zero leaves `dst` unchanged, matching the BPF
//!   ALU semantics standardized in RFC 9669 — a documented semantic
//!   difference from the software backend, which aborts on overflow;
//! * a [`verify`] pass — bounded program size, forward-only jumps,
//!   registers initialized before use, all paths ending in `Ret` — gates
//!   every program before it can run, like the kernel verifier.
//!
//! `random() < p` predicates (fault injection) compile by scaling `p` into
//! a 64-bit threshold compared against a uniform `u64`, the standard trick
//! for probabilistic drops in kernels without floating point.

use std::collections::HashMap;

use adn_ir::element::{ElementIr, IrStmt, JoinStrategy};
use adn_ir::expr::{IrBinOp, IrExpr, IrUnOp};
use adn_rpc::value::{Value, ValueType};

use crate::udf_impl::UdfRuntime;

/// Number of registers the restricted bytecode may use as general-purpose
/// scalars (`r0..r8`). The real ISA encoding ([`crate::isa`]) reserves `r9`
/// for the saved context pointer and `r10` for the read-only frame pointer,
/// so legacy programs confined to `r0..=r8` assemble onto real registers 1:1.
pub const NUM_REGS: u8 = 9;
/// Maximum program length, mirroring kernel limits.
pub const MAX_INSNS: usize = 4096;

/// ALU operations (register-register, `dst = dst op src`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    Add,
    Sub,
    Mul,
    DivU,
    ModU,
    DivS,
    ModS,
    And,
    Or,
    Xor,
}

/// Comparison conditions for conditional jumps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Bytecode instructions.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// `dst = imm` (bit pattern).
    LdImm { dst: u8, imm: u64 },
    /// `dst = message.fields[field]` — numeric/bool fields only.
    LdField { dst: u8, field: u16 },
    /// `message.fields[field] = src` — numeric/bool fields only.
    StField { field: u16, src: u8 },
    /// `dst = src`.
    Mov { dst: u8, src: u8 },
    /// `dst = dst op src` (wrapping; division by zero yields 0).
    Alu { op: AluOp, dst: u8, src: u8 },
    /// `dst = -dst` (two's complement).
    Neg { dst: u8 },
    /// `dst = (dst == 0) ? 1 : 0`.
    LogicalNot { dst: u8 },
    /// Unconditional forward jump by `off` instructions (beyond the next).
    Jmp { off: u16 },
    /// Forward jump if `cmp(a, b)`; `signed` selects signed comparison.
    JmpIf {
        cmp: CmpOp,
        signed: bool,
        a: u8,
        b: u8,
        off: u16,
    },
    /// Helper: `dst = stable_hash(message.fields[field])` (any field type).
    HashField { dst: u8, field: u16 },
    /// Helper: `dst = len(message.fields[field])` (str/bytes fields).
    LenField { dst: u8, field: u16 },
    /// Helper: `dst = uniform u64`.
    Rand { dst: u8 },
    /// Helper: `dst = logical clock`.
    Now { dst: u8 },
    /// `dst = map[key]`, or jump forward `miss_off` if absent.
    MapLookup {
        map: u8,
        key: u8,
        dst: u8,
        miss_off: u16,
    },
    /// `map[key] = value`.
    MapUpdate { map: u8, key: u8, value: u8 },
    /// Remove `map[key]` (no-op if absent).
    MapDelete { map: u8, key: u8 },
    /// Record a routing decision: replica index = `key_hash % replica_count`.
    Route { key_hash: u8 },
    /// Terminate: 0 = forward, 1 = drop, 2 = abort with code in r0.
    Ret { verdict: u8 },
}

/// Verdict codes for [`Insn::Ret`].
pub const RET_FORWARD: u8 = 0;
pub const RET_DROP: u8 = 1;
pub const RET_ABORT: u8 = 2;

/// A compiled, not-yet-verified program for one direction.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EbpfProgram {
    pub insns: Vec<Insn>,
}

/// A verified element: programs for both directions plus map layouts.
#[derive(Debug, Clone, PartialEq)]
pub struct EbpfElement {
    pub name: String,
    pub request: EbpfProgram,
    pub response: EbpfProgram,
    /// Initial map contents (key → value), one per element table.
    pub map_inits: Vec<Vec<(u64, u64)>>,
}

/// Execution outcome.
#[derive(Debug, Clone, PartialEq)]
pub enum EbpfVerdict {
    Forward,
    Drop,
    Abort { code: u32 },
}

/// Mutable per-deployment state: the maps.
#[derive(Debug, Clone, Default)]
pub struct EbpfMaps {
    pub maps: Vec<HashMap<u64, u64>>,
}

impl EbpfMaps {
    /// Instantiates maps from an element's initial contents.
    pub fn for_element(element: &EbpfElement) -> Self {
        Self {
            maps: element
                .map_inits
                .iter()
                .map(|init| init.iter().copied().collect())
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------------
// Verifier
// ---------------------------------------------------------------------------

/// Static verification: bounded size, in-range registers and maps,
/// forward-only jumps with in-range targets, registers initialized before
/// use on every path, and all paths terminating in `Ret`.
pub fn verify(prog: &EbpfProgram, num_maps: usize) -> Result<(), String> {
    let n = prog.insns.len();
    if n == 0 {
        return Err("empty program".into());
    }
    if n > MAX_INSNS {
        return Err(format!("program has {n} insns, limit is {MAX_INSNS}"));
    }

    let reg_ok = |r: u8| r < NUM_REGS;
    // init[i] = registers guaranteed initialized when insn i executes.
    // Forward-only jumps mean a single in-order pass computes the meet.
    let mut init: Vec<Option<u16>> = vec![None; n + 1];
    init[0] = Some(0);

    let meet = |slot: &mut Option<u16>, incoming: u16| {
        *slot = Some(match *slot {
            Some(prev) => prev & incoming,
            None => incoming,
        });
    };

    for (i, insn) in prog.insns.iter().enumerate() {
        let Some(in_set) = init[i] else {
            // Unreachable instruction: harmless, skip.
            continue;
        };
        let mut out = in_set;
        let use_reg = |set: u16, r: u8, what: &str| -> Result<(), String> {
            if !reg_ok(r) {
                return Err(format!("insn {i}: register r{r} out of range"));
            }
            if set & (1 << r) == 0 {
                return Err(format!("insn {i}: {what} reads uninitialized r{r}"));
            }
            Ok(())
        };
        let def_reg = |out: &mut u16, r: u8| -> Result<(), String> {
            if !reg_ok(r) {
                return Err(format!("insn {i}: register r{r} out of range"));
            }
            *out |= 1 << r;
            Ok(())
        };
        let check_jump = |off: u16| -> Result<usize, String> {
            let target = i + 1 + off as usize;
            if target > n {
                return Err(format!("insn {i}: jump target {target} out of range"));
            }
            Ok(target)
        };

        let mut falls_through = true;
        let mut jump_target: Option<usize> = None;

        match insn {
            Insn::LdImm { dst, .. }
            | Insn::Rand { dst }
            | Insn::Now { dst }
            | Insn::HashField { dst, .. }
            | Insn::LenField { dst, .. }
            | Insn::LdField { dst, .. } => def_reg(&mut out, *dst)?,
            Insn::StField { src, .. } => use_reg(in_set, *src, "StField")?,
            Insn::Mov { dst, src } => {
                use_reg(in_set, *src, "Mov")?;
                def_reg(&mut out, *dst)?;
            }
            Insn::Alu { dst, src, .. } => {
                use_reg(in_set, *dst, "Alu dst")?;
                use_reg(in_set, *src, "Alu src")?;
            }
            Insn::Neg { dst } | Insn::LogicalNot { dst } => use_reg(in_set, *dst, "unary")?,
            Insn::Jmp { off } => {
                jump_target = Some(check_jump(*off)?);
                falls_through = false;
            }
            Insn::JmpIf { a, b, off, .. } => {
                use_reg(in_set, *a, "JmpIf a")?;
                use_reg(in_set, *b, "JmpIf b")?;
                jump_target = Some(check_jump(*off)?);
            }
            Insn::MapLookup {
                map,
                key,
                dst,
                miss_off,
            } => {
                if *map as usize >= num_maps {
                    return Err(format!("insn {i}: map {map} out of range"));
                }
                use_reg(in_set, *key, "MapLookup key")?;
                def_reg(&mut out, *dst)?;
                jump_target = Some(check_jump(*miss_off)?);
            }
            Insn::MapUpdate { map, key, value } => {
                if *map as usize >= num_maps {
                    return Err(format!("insn {i}: map {map} out of range"));
                }
                use_reg(in_set, *key, "MapUpdate key")?;
                use_reg(in_set, *value, "MapUpdate value")?;
            }
            Insn::MapDelete { map, key } => {
                if *map as usize >= num_maps {
                    return Err(format!("insn {i}: map {map} out of range"));
                }
                use_reg(in_set, *key, "MapDelete key")?;
            }
            Insn::Route { key_hash } => use_reg(in_set, *key_hash, "Route")?,
            Insn::Ret { verdict } => {
                if *verdict == RET_ABORT {
                    use_reg(in_set, 0, "Ret abort code")?;
                }
                if *verdict > RET_ABORT {
                    return Err(format!("insn {i}: invalid verdict {verdict}"));
                }
                falls_through = false;
            }
        }

        if falls_through {
            if i + 1 >= n && !matches!(insn, Insn::Ret { .. }) {
                return Err(format!("insn {i}: program can fall off the end"));
            }
            meet(&mut init[i + 1], out);
        }
        if let Some(t) = jump_target {
            if t == n {
                return Err(format!("insn {i}: jump falls off the end"));
            }
            // On a MapLookup miss path, dst is NOT initialized.
            let jump_out = match insn {
                Insn::MapLookup { dst, .. } => out & !(1 << dst),
                _ => out,
            };
            meet(&mut init[t], jump_out);
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

/// Routing decision surfaced by a program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteDecision {
    /// `Some(hash)` when a Route insn executed; the host picks
    /// `replicas[hash % replicas.len()]`.
    pub key_hash: Option<u64>,
}

/// Executes a verified program. Never loops (forward-only jumps).
pub fn execute(
    prog: &EbpfProgram,
    fields: &mut [Value],
    maps: &mut EbpfMaps,
    udf: &mut UdfRuntime,
    route: &mut RouteDecision,
) -> EbpfVerdict {
    let mut regs = [0u64; NUM_REGS as usize];
    let mut pc = 0usize;
    while pc < prog.insns.len() {
        match &prog.insns[pc] {
            Insn::LdImm { dst, imm } => regs[*dst as usize] = *imm,
            Insn::LdField { dst, field } => {
                regs[*dst as usize] = match &fields[*field as usize] {
                    Value::U64(v) => *v,
                    Value::I64(v) => *v as u64,
                    Value::Bool(b) => *b as u64,
                    // Verified programs never load non-scalar fields; treat
                    // defensively as 0.
                    _ => 0,
                };
            }
            Insn::StField { field, src } => {
                let raw = regs[*src as usize];
                let slot = &mut fields[*field as usize];
                *slot = match slot.value_type() {
                    ValueType::U64 => Value::U64(raw),
                    ValueType::I64 => Value::I64(raw as i64),
                    ValueType::Bool => Value::Bool(raw != 0),
                    _ => slot.clone(),
                };
            }
            Insn::Mov { dst, src } => regs[*dst as usize] = regs[*src as usize],
            Insn::Alu { op, dst, src } => {
                let a = regs[*dst as usize];
                let b = regs[*src as usize];
                regs[*dst as usize] = match op {
                    AluOp::Add => a.wrapping_add(b),
                    AluOp::Sub => a.wrapping_sub(b),
                    AluOp::Mul => a.wrapping_mul(b),
                    AluOp::DivU => a.checked_div(b).unwrap_or(0),
                    // RFC 9669: `mod` by zero leaves dst unchanged.
                    AluOp::ModU => {
                        if b == 0 {
                            a
                        } else {
                            a % b
                        }
                    }
                    AluOp::DivS => {
                        let (x, y) = (a as i64, b as i64);
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y) as u64
                        }
                    }
                    AluOp::ModS => {
                        let (x, y) = (a as i64, b as i64);
                        if y == 0 {
                            a
                        } else {
                            x.wrapping_rem(y) as u64
                        }
                    }
                    AluOp::And => a & b,
                    AluOp::Or => a | b,
                    AluOp::Xor => a ^ b,
                };
            }
            Insn::Neg { dst } => {
                regs[*dst as usize] = (regs[*dst as usize] as i64).wrapping_neg() as u64
            }
            Insn::LogicalNot { dst } => regs[*dst as usize] = (regs[*dst as usize] == 0) as u64,
            Insn::Jmp { off } => {
                pc += 1 + *off as usize;
                continue;
            }
            Insn::JmpIf {
                cmp,
                signed,
                a,
                b,
                off,
            } => {
                let x = regs[*a as usize];
                let y = regs[*b as usize];
                let taken = if *signed {
                    let (x, y) = (x as i64, y as i64);
                    match cmp {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                } else {
                    match cmp {
                        CmpOp::Eq => x == y,
                        CmpOp::Ne => x != y,
                        CmpOp::Lt => x < y,
                        CmpOp::Le => x <= y,
                        CmpOp::Gt => x > y,
                        CmpOp::Ge => x >= y,
                    }
                };
                if taken {
                    pc += 1 + *off as usize;
                    continue;
                }
            }
            Insn::HashField { dst, field } => {
                regs[*dst as usize] = fields[*field as usize].stable_hash()
            }
            Insn::LenField { dst, field } => {
                regs[*dst as usize] = match &fields[*field as usize] {
                    Value::Str(s) => s.len() as u64,
                    Value::Bytes(b) => b.len() as u64,
                    _ => 0,
                };
            }
            Insn::Rand { dst } => regs[*dst as usize] = udf.random_u64(),
            Insn::Now { dst } => regs[*dst as usize] = udf.now(),
            Insn::MapLookup {
                map,
                key,
                dst,
                miss_off,
            } => match maps.maps[*map as usize].get(&regs[*key as usize]) {
                Some(v) => regs[*dst as usize] = *v,
                None => {
                    pc += 1 + *miss_off as usize;
                    continue;
                }
            },
            Insn::MapUpdate { map, key, value } => {
                maps.maps[*map as usize].insert(regs[*key as usize], regs[*value as usize]);
            }
            Insn::MapDelete { map, key } => {
                maps.maps[*map as usize].remove(&regs[*key as usize]);
            }
            Insn::Route { key_hash } => {
                route.key_hash = Some(regs[*key_hash as usize]);
            }
            Insn::Ret { verdict } => {
                return match *verdict {
                    RET_FORWARD => EbpfVerdict::Forward,
                    RET_DROP => EbpfVerdict::Drop,
                    _ => EbpfVerdict::Abort {
                        code: regs[0] as u32,
                    },
                };
            }
        }
        pc += 1;
    }
    // Verified programs cannot fall off the end; be safe anyway.
    EbpfVerdict::Forward
}

// ---------------------------------------------------------------------------
// Compiler: ElementIr → EbpfElement
// ---------------------------------------------------------------------------

/// Compiles an element to verified eBPF programs, or explains why it does
/// not fit the kernel execution model.
pub fn compile(element: &ElementIr) -> Result<EbpfElement, String> {
    // Tables must fit the map model: exactly one u64 key column and at most
    // one additional u64 value column.
    let mut map_inits = Vec::new();
    for t in &element.tables {
        if t.key_columns.len() != 1 {
            return Err(format!(
                "table {:?}: eBPF maps need exactly one key column",
                t.name
            ));
        }
        let key_col = t.key_columns[0];
        if t.column_types[key_col] != ValueType::U64 {
            return Err(format!("table {:?}: eBPF map keys must be u64", t.name));
        }
        let value_cols: Vec<usize> = (0..t.column_types.len())
            .filter(|c| *c != key_col)
            .collect();
        if value_cols.len() > 1 {
            return Err(format!(
                "table {:?}: eBPF maps hold a single u64 value",
                t.name
            ));
        }
        if let Some(&vc) = value_cols.first() {
            if t.column_types[vc] != ValueType::U64 {
                return Err(format!("table {:?}: eBPF map values must be u64", t.name));
            }
        }
        let mut init = Vec::new();
        for row in &t.init_rows {
            let k = match &row[key_col] {
                Value::U64(v) => *v,
                _ => return Err("non-u64 init key".into()),
            };
            let v = match value_cols.first() {
                Some(&vc) => match &row[vc] {
                    Value::U64(v) => *v,
                    _ => return Err("non-u64 init value".into()),
                },
                None => 1,
            };
            init.push((k, v));
        }
        map_inits.push(init);
    }

    let request = compile_stmts(element, &element.request)?;
    let response = compile_stmts(element, &element.response)?;
    verify(&request, element.tables.len())?;
    verify(&response, element.tables.len())?;
    Ok(EbpfElement {
        name: element.name.clone(),
        request,
        response,
        map_inits,
    })
}

/// Expression result type tracked during compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ETy {
    U64,
    I64,
    Bool,
}

struct Compiler<'a> {
    element: &'a ElementIr,
    insns: Vec<Insn>,
    next_reg: u8,
    /// Register bindings for the joined row's columns, when in scope.
    col_regs: Vec<Option<(u8, ETy)>>,
}

impl<'a> Compiler<'a> {
    fn alloc(&mut self) -> Result<u8, String> {
        if self.next_reg >= NUM_REGS {
            return Err("expression too deep for eBPF registers".into());
        }
        let r = self.next_reg;
        self.next_reg += 1;
        Ok(r)
    }

    fn emit(&mut self, insn: Insn) {
        self.insns.push(insn);
    }

    /// Emits a placeholder jump and returns its index for later patching.
    fn emit_jump_placeholder(&mut self, insn: Insn) -> usize {
        self.insns.push(insn);
        self.insns.len() - 1
    }

    fn patch_jump_to_here(&mut self, at: usize) {
        let off = (self.insns.len() - at - 1) as u16;
        match &mut self.insns[at] {
            Insn::Jmp { off: o } => *o = off,
            Insn::JmpIf { off: o, .. } => *o = off,
            Insn::MapLookup { miss_off, .. } => *miss_off = off,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    fn field_ty(&self, idx: usize, schema_len: usize) -> Result<ETy, String> {
        // Field types come from the chain schema; the IR does not embed
        // them, so infer from usage constraints: LdField is restricted to
        // scalar fields by the statement compiler, which consults the
        // element's table/statement structure. We conservatively treat the
        // loaded value as U64 bits; signedness only matters for
        // comparisons, which track ETy from typed leaves.
        let _ = (idx, schema_len);
        Ok(ETy::U64)
    }

    /// Compiles an expression into a fresh register. `field_types` supplies
    /// schema types so non-scalar loads are rejected.
    fn expr(&mut self, e: &IrExpr, field_types: &[ValueType]) -> Result<(u8, ETy), String> {
        match e {
            IrExpr::Const(v) => {
                let (imm, ty) = match v {
                    Value::U64(x) => (*x, ETy::U64),
                    Value::I64(x) => (*x as u64, ETy::I64),
                    Value::Bool(b) => (*b as u64, ETy::Bool),
                    other => return Err(format!("constant {other} not representable in eBPF")),
                };
                let r = self.alloc()?;
                self.emit(Insn::LdImm { dst: r, imm });
                Ok((r, ty))
            }
            IrExpr::Field(i) => {
                let ty = match field_types.get(*i) {
                    Some(ValueType::U64) => ETy::U64,
                    Some(ValueType::I64) => ETy::I64,
                    Some(ValueType::Bool) => ETy::Bool,
                    Some(t) => return Err(format!("field {i} has type {t}, not loadable in eBPF")),
                    None => return Err(format!("field {i} out of range")),
                };
                self.field_ty(*i, field_types.len())?;
                let r = self.alloc()?;
                self.emit(Insn::LdField {
                    dst: r,
                    field: *i as u16,
                });
                Ok((r, ty))
            }
            IrExpr::Col(c) => match self.col_regs.get(*c).copied().flatten() {
                Some((r, ty)) => {
                    let out = self.alloc()?;
                    self.emit(Insn::Mov { dst: out, src: r });
                    Ok((out, ty))
                }
                None => Err(format!("column {c} not bound in eBPF context")),
            },
            IrExpr::Udf { name, args } => match (name.as_str(), args.as_slice()) {
                ("hash", [IrExpr::Field(i)]) => {
                    let r = self.alloc()?;
                    self.emit(Insn::HashField {
                        dst: r,
                        field: *i as u16,
                    });
                    Ok((r, ETy::U64))
                }
                ("len", [IrExpr::Field(i)]) => {
                    match field_types.get(*i) {
                        Some(ValueType::Str | ValueType::Bytes) => {}
                        _ => return Err("len() in eBPF needs a str/bytes field".into()),
                    }
                    let r = self.alloc()?;
                    self.emit(Insn::LenField {
                        dst: r,
                        field: *i as u16,
                    });
                    Ok((r, ETy::U64))
                }
                ("now", []) => {
                    let r = self.alloc()?;
                    self.emit(Insn::Now { dst: r });
                    Ok((r, ETy::U64))
                }
                ("random", []) => {
                    Err("random() only compiles in `random() < constant` predicates in eBPF".into())
                }
                (other, _) => Err(format!("UDF {other} has no eBPF implementation")),
            },
            IrExpr::Cast { to, inner } => {
                // Scalar casts are bit-compatible in the register model.
                let (r, _) = self.expr(inner, field_types)?;
                let ty = match to {
                    ValueType::U64 => ETy::U64,
                    ValueType::I64 => ETy::I64,
                    ValueType::Bool => ETy::Bool,
                    other => return Err(format!("cast to {other} unsupported in eBPF")),
                };
                Ok((r, ty))
            }
            IrExpr::Unary { op, operand } => {
                let (r, ty) = self.expr(operand, field_types)?;
                match op {
                    IrUnOp::Not => {
                        if ty != ETy::Bool {
                            return Err("NOT on non-bool in eBPF".into());
                        }
                        self.emit(Insn::LogicalNot { dst: r });
                        Ok((r, ETy::Bool))
                    }
                    IrUnOp::Neg => {
                        self.emit(Insn::Neg { dst: r });
                        Ok((r, ETy::I64))
                    }
                }
            }
            IrExpr::Binary { op, left, right } => self.binary(*op, left, right, field_types),
            IrExpr::Case { arms, otherwise } => {
                let out = self.alloc()?;
                let mut end_jumps = Vec::new();
                let mut result_ty = ETy::U64;
                for (cond, value) in arms {
                    let saved = self.next_reg;
                    let (c, cty) = self.expr(cond, field_types)?;
                    if cty != ETy::Bool {
                        return Err("CASE WHEN needs bool in eBPF".into());
                    }
                    let zero = self.alloc()?;
                    self.emit(Insn::LdImm { dst: zero, imm: 0 });
                    let skip = self.emit_jump_placeholder(Insn::JmpIf {
                        cmp: CmpOp::Eq,
                        signed: false,
                        a: c,
                        b: zero,
                        off: 0,
                    });
                    self.next_reg = saved; // free cond temps
                    let (v, vty) = self.expr(value, field_types)?;
                    result_ty = vty;
                    self.emit(Insn::Mov { dst: out, src: v });
                    self.next_reg = saved;
                    end_jumps.push(self.emit_jump_placeholder(Insn::Jmp { off: 0 }));
                    self.patch_jump_to_here(skip);
                }
                let saved = self.next_reg;
                match otherwise {
                    Some(e) => {
                        let (v, _) = self.expr(e, field_types)?;
                        self.emit(Insn::Mov { dst: out, src: v });
                    }
                    None => self.emit(Insn::LdImm { dst: out, imm: 0 }),
                }
                self.next_reg = saved;
                for j in end_jumps {
                    self.patch_jump_to_here(j);
                }
                Ok((out, result_ty))
            }
        }
    }

    fn binary(
        &mut self,
        op: IrBinOp,
        left: &IrExpr,
        right: &IrExpr,
        field_types: &[ValueType],
    ) -> Result<(u8, ETy), String> {
        // Special pattern: random() </<= constant-f64 → threshold compare.
        if matches!(op, IrBinOp::Lt | IrBinOp::Le | IrBinOp::Gt | IrBinOp::Ge) {
            if let Some(result) = self.try_random_threshold(op, left, right)? {
                return Ok(result);
            }
        }
        let saved = self.next_reg;
        let (a, aty) = self.expr(left, field_types)?;
        let (b, bty) = self.expr(right, field_types)?;
        let signed = aty == ETy::I64 || bty == ETy::I64;
        let result = match op {
            IrBinOp::Add | IrBinOp::Sub | IrBinOp::Mul | IrBinOp::Div | IrBinOp::Mod => {
                let alu = match (op, signed) {
                    (IrBinOp::Add, _) => AluOp::Add,
                    (IrBinOp::Sub, _) => AluOp::Sub,
                    (IrBinOp::Mul, _) => AluOp::Mul,
                    (IrBinOp::Div, false) => AluOp::DivU,
                    (IrBinOp::Div, true) => AluOp::DivS,
                    (IrBinOp::Mod, false) => AluOp::ModU,
                    (IrBinOp::Mod, true) => AluOp::ModS,
                    _ => unreachable!(),
                };
                self.emit(Insn::Alu {
                    op: alu,
                    dst: a,
                    src: b,
                });
                (a, if signed { ETy::I64 } else { ETy::U64 })
            }
            IrBinOp::And | IrBinOp::Or => {
                if aty != ETy::Bool || bty != ETy::Bool {
                    return Err("logical op on non-bool in eBPF".into());
                }
                self.emit(Insn::Alu {
                    op: if op == IrBinOp::And {
                        AluOp::And
                    } else {
                        AluOp::Or
                    },
                    dst: a,
                    src: b,
                });
                (a, ETy::Bool)
            }
            IrBinOp::Eq
            | IrBinOp::NotEq
            | IrBinOp::Lt
            | IrBinOp::Le
            | IrBinOp::Gt
            | IrBinOp::Ge => {
                let cmp = match op {
                    IrBinOp::Eq => CmpOp::Eq,
                    IrBinOp::NotEq => CmpOp::Ne,
                    IrBinOp::Lt => CmpOp::Lt,
                    IrBinOp::Le => CmpOp::Le,
                    IrBinOp::Gt => CmpOp::Gt,
                    IrBinOp::Ge => CmpOp::Ge,
                    _ => unreachable!(),
                };
                // Eq/Ne compare identically under either signedness; emit
                // the unsigned form so programs stay canonical for
                // `isa::lift` (JEQ/JNE have no signed encoding).
                let signed = signed && !matches!(cmp, CmpOp::Eq | CmpOp::Ne);
                // dst = 1; if cmp(a,b) skip; dst = 0.
                self.emit(Insn::LdImm { dst: a, imm: 1 });
                // a was overwritten — recompute into fresh regs instead.
                // Simpler correct sequence: out = 1; JmpIf cmp(a0,b0) +1;
                // out = 0. We must not clobber a before comparing, so emit
                // comparison against the original registers:
                self.insns.pop();
                let out = self.alloc()?;
                self.emit(Insn::LdImm { dst: out, imm: 1 });
                self.emit(Insn::JmpIf {
                    cmp,
                    signed,
                    a,
                    b,
                    off: 1,
                });
                self.emit(Insn::LdImm { dst: out, imm: 0 });
                (out, ETy::Bool)
            }
        };
        // Free intermediate registers, keep the result.
        let (reg, ty) = result;
        if reg >= saved {
            // Move result down to `saved` so temporaries can be reused.
            if reg != saved {
                self.emit(Insn::Mov {
                    dst: saved,
                    src: reg,
                });
            }
            self.next_reg = saved + 1;
            return Ok((saved, ty));
        }
        self.next_reg = saved;
        Ok((reg, ty))
    }

    /// `random() < p` with constant f64 `p` → `rand_u64 < p·2⁶⁴`.
    fn try_random_threshold(
        &mut self,
        op: IrBinOp,
        left: &IrExpr,
        right: &IrExpr,
    ) -> Result<Option<(u8, ETy)>, String> {
        let (rand_side, const_side, cmp) = match (left, right) {
            (IrExpr::Udf { name, args }, IrExpr::Const(Value::F64(p)))
                if name == "random" && args.is_empty() =>
            {
                let cmp = match op {
                    IrBinOp::Lt => CmpOp::Lt,
                    IrBinOp::Le => CmpOp::Le,
                    IrBinOp::Gt => CmpOp::Gt,
                    IrBinOp::Ge => CmpOp::Ge,
                    _ => return Ok(None),
                };
                (true, *p, cmp)
            }
            (IrExpr::Const(Value::F64(p)), IrExpr::Udf { name, args })
                if name == "random" && args.is_empty() =>
            {
                let cmp = match op {
                    IrBinOp::Lt => CmpOp::Gt,
                    IrBinOp::Le => CmpOp::Ge,
                    IrBinOp::Gt => CmpOp::Lt,
                    IrBinOp::Ge => CmpOp::Le,
                    _ => return Ok(None),
                };
                (true, *p, cmp)
            }
            _ => return Ok(None),
        };
        if !rand_side {
            return Ok(None);
        }
        let threshold = if const_side <= 0.0 {
            0u64
        } else if const_side >= 1.0 {
            u64::MAX
        } else {
            (const_side * u64::MAX as f64) as u64
        };
        let saved = self.next_reg;
        let r = self.alloc()?;
        self.emit(Insn::Rand { dst: r });
        let t = self.alloc()?;
        self.emit(Insn::LdImm {
            dst: t,
            imm: threshold,
        });
        let out = saved; // reuse
        self.emit(Insn::LdImm { dst: out, imm: 1 });
        // out pre-set to 1 clobbers r! Allocate distinct output register.
        self.insns.pop();
        let out = self.alloc()?;
        self.emit(Insn::LdImm { dst: out, imm: 1 });
        self.emit(Insn::JmpIf {
            cmp,
            signed: false,
            a: r,
            b: t,
            off: 1,
        });
        self.emit(Insn::LdImm { dst: out, imm: 0 });
        self.emit(Insn::Mov {
            dst: saved,
            src: out,
        });
        self.next_reg = saved + 1;
        Ok(Some((saved, ETy::Bool)))
    }
}

fn compile_stmts(element: &ElementIr, stmts: &[IrStmt]) -> Result<EbpfProgram, String> {
    // The IR does not carry schema types; recover them from the element's
    // statements is impossible, so the compiler receives them via the
    // element's recorded field usage. We approximate with the universal
    // scalar assumption and reject at LdField via `field_types`. The chain
    // compiler (dataplane) passes real schemas through `compile_for_schema`.
    compile_stmts_typed(element, stmts, None)
}

/// Compiles with explicit schema field types (used by the dataplane).
pub fn compile_for_schema(
    element: &ElementIr,
    request_types: &[ValueType],
    response_types: &[ValueType],
) -> Result<EbpfElement, String> {
    let mut compiled = compile(element)?;
    // Re-compile with accurate types (compile() used conservative types).
    compiled.request = compile_stmts_typed(element, &element.request, Some(request_types))?;
    compiled.response = compile_stmts_typed(element, &element.response, Some(response_types))?;
    verify(&compiled.request, element.tables.len())?;
    verify(&compiled.response, element.tables.len())?;
    Ok(compiled)
}

fn compile_stmts_typed(
    element: &ElementIr,
    stmts: &[IrStmt],
    field_types: Option<&[ValueType]>,
) -> Result<EbpfProgram, String> {
    // Without explicit types, infer a maximal scalar schema: every field
    // index referenced is assumed u64 except those passed to len(), which
    // are bytes. This keeps `compile` usable as a feasibility check.
    let inferred;
    let field_types = match field_types {
        Some(t) => t,
        None => {
            let mut max_idx = 0;
            let mut bytes_fields = Vec::new();
            for s in stmts {
                for e in s.expressions() {
                    e.walk(&mut |n| {
                        if let IrExpr::Field(i) = n {
                            max_idx = max_idx.max(*i);
                        }
                        if let IrExpr::Udf { name, args } = n {
                            if name == "len" {
                                if let Some(IrExpr::Field(i)) = args.first() {
                                    bytes_fields.push(*i);
                                }
                            }
                        }
                    });
                }
                if let IrStmt::Set { field, .. } = s {
                    max_idx = max_idx.max(*field);
                }
            }
            inferred = (0..=max_idx)
                .map(|i| {
                    if bytes_fields.contains(&i) {
                        ValueType::Bytes
                    } else {
                        ValueType::U64
                    }
                })
                .collect::<Vec<_>>();
            &inferred
        }
    };

    let mut c = Compiler {
        element,
        insns: Vec::new(),
        next_reg: 1, // r0 reserved for abort codes
        col_regs: Vec::new(),
    };

    for stmt in stmts {
        compile_stmt(&mut c, stmt, field_types)?;
    }
    c.emit(Insn::Ret {
        verdict: RET_FORWARD,
    });
    Ok(EbpfProgram { insns: c.insns })
}

fn compile_stmt(
    c: &mut Compiler<'_>,
    stmt: &IrStmt,
    field_types: &[ValueType],
) -> Result<(), String> {
    let base = c.next_reg;
    match stmt {
        IrStmt::Select {
            assignments,
            join,
            condition,
            else_abort,
        } => {
            // Failure path: drop, or abort with a constant code.
            let fail_code: Option<u64> = match else_abort {
                None => None,
                Some((IrExpr::Const(v), _)) => {
                    Some(v.as_u64().ok_or("abort code must be numeric")?)
                }
                Some(_) => return Err("eBPF ELSE ABORT codes must be constants".into()),
            };
            let emit_fail = |c: &mut Compiler<'_>| match fail_code {
                None => c.emit(Insn::Ret { verdict: RET_DROP }),
                Some(code) => {
                    c.emit(Insn::LdImm { dst: 0, imm: code });
                    c.emit(Insn::Ret { verdict: RET_ABORT });
                }
            };
            c.col_regs.clear();
            if let Some(j) = join {
                let table = &c.element.tables[j.table];
                let JoinStrategy::KeyLookup { input_fields } = &j.strategy else {
                    return Err("scan joins need loops; not available in eBPF".into());
                };
                if input_fields.len() != 1 {
                    return Err("eBPF joins take a single u64 key".into());
                }
                let key = c.alloc()?;
                c.emit(Insn::LdField {
                    dst: key,
                    field: input_fields[0] as u16,
                });
                let val = c.alloc()?;
                let miss = c.emit_jump_placeholder(Insn::MapLookup {
                    map: j.table as u8,
                    key,
                    dst: val,
                    miss_off: 0,
                });
                // Bind columns: key column → key reg, value column → val.
                let key_col = table.key_columns[0];
                c.col_regs = vec![None; table.column_types.len()];
                c.col_regs[key_col] = Some((key, ETy::U64));
                for (i, slot) in c.col_regs.iter_mut().enumerate() {
                    if i != key_col {
                        *slot = Some((val, ETy::U64));
                    }
                }
                // Success path continues; the miss path fails below.
                if let Some(cond) = condition {
                    compile_fail_unless(c, cond, field_types, fail_code)?;
                }
                for (idx, expr) in assignments {
                    let (r, _) = c.expr(expr, field_types)?;
                    c.emit(Insn::StField {
                        field: *idx as u16,
                        src: r,
                    });
                }
                // Jump over the miss handler.
                let done = c.emit_jump_placeholder(Insn::Jmp { off: 0 });
                c.patch_jump_to_here(miss);
                emit_fail(c);
                c.patch_jump_to_here(done);
                c.col_regs.clear();
            } else {
                if let Some(cond) = condition {
                    compile_fail_unless(c, cond, field_types, fail_code)?;
                }
                for (idx, expr) in assignments {
                    let (r, _) = c.expr(expr, field_types)?;
                    c.emit(Insn::StField {
                        field: *idx as u16,
                        src: r,
                    });
                }
            }
        }
        IrStmt::Insert { table, values } => {
            // Insert-if-absent: lookup the key; only on miss compute the
            // value and update the map.
            let t = &c.element.tables[*table];
            let key_col = t.key_columns[0];
            let (key, _) = c.expr(&values[key_col], field_types)?;
            let probe = c.alloc()?;
            let miss = c.emit_jump_placeholder(Insn::MapLookup {
                map: *table as u8,
                key,
                dst: probe,
                miss_off: 0,
            });
            // Hit: skip the insert.
            let done = c.emit_jump_placeholder(Insn::Jmp { off: 0 });
            c.patch_jump_to_here(miss);
            let value = match values.iter().enumerate().find(|(i, _)| *i != key_col) {
                Some((_, e)) => c.expr(e, field_types)?.0,
                None => {
                    let r = c.alloc()?;
                    c.emit(Insn::LdImm { dst: r, imm: 1 });
                    r
                }
            };
            c.emit(Insn::MapUpdate {
                map: *table as u8,
                key,
                value,
            });
            c.patch_jump_to_here(done);
        }
        IrStmt::Update {
            table,
            assignments,
            condition,
        } => {
            // Only the keyed pattern compiles:
            //   UPDATE t SET val = f(t.val) WHERE t.key == <expr>
            let t = &c.element.tables[*table];
            let key_col = t.key_columns[0];
            let Some(cond) = condition else {
                return Err("whole-table UPDATE needs loops; not available in eBPF".into());
            };
            let key_expr = extract_keyed_condition(cond, key_col)
                .ok_or("UPDATE condition must be `t.key == expr` for eBPF")?;
            let (key, _) = c.expr(key_expr, field_types)?;
            let val = c.alloc()?;
            let miss = c.emit_jump_placeholder(Insn::MapLookup {
                map: *table as u8,
                key,
                dst: val,
                miss_off: 0,
            });
            c.col_regs = vec![None; t.column_types.len()];
            c.col_regs[key_col] = Some((key, ETy::U64));
            for (i, slot) in c.col_regs.iter_mut().enumerate() {
                if i != key_col {
                    *slot = Some((val, ETy::U64));
                }
            }
            for (col, expr) in assignments {
                if *col == key_col {
                    return Err("eBPF cannot rewrite map keys in place".into());
                }
                let (r, _) = c.expr(expr, field_types)?;
                c.emit(Insn::MapUpdate {
                    map: *table as u8,
                    key,
                    value: r,
                });
            }
            c.col_regs.clear();
            c.patch_jump_to_here(miss);
        }
        IrStmt::Delete { table, condition } => {
            let t = &c.element.tables[*table];
            let key_col = t.key_columns[0];
            let Some(cond) = condition else {
                return Err("whole-table DELETE needs loops; not available in eBPF".into());
            };
            let key_expr = extract_keyed_condition(cond, key_col)
                .ok_or("DELETE condition must be `t.key == expr` for eBPF")?;
            let (key, _) = c.expr(key_expr, field_types)?;
            c.emit(Insn::MapDelete {
                map: *table as u8,
                key,
            });
        }
        IrStmt::Drop { condition } => match condition {
            Some(cond) => {
                let (r, ty) = c.expr(cond, field_types)?;
                if ty != ETy::Bool {
                    return Err("DROP WHERE needs bool in eBPF".into());
                }
                let zero = c.alloc()?;
                c.emit(Insn::LdImm { dst: zero, imm: 0 });
                let skip = c.emit_jump_placeholder(Insn::JmpIf {
                    cmp: CmpOp::Eq,
                    signed: false,
                    a: r,
                    b: zero,
                    off: 0,
                });
                c.emit(Insn::Ret { verdict: RET_DROP });
                c.patch_jump_to_here(skip);
            }
            None => c.emit(Insn::Ret { verdict: RET_DROP }),
        },
        IrStmt::Route { key, condition } => {
            let route = |c: &mut Compiler<'_>| -> Result<(), String> {
                // Route by stable hash of the key expression. Hash of a
                // field uses the helper; computed keys hash as U64 values —
                // match the software path by hashing the field directly
                // when possible.
                match key {
                    IrExpr::Field(i) => {
                        let r = c.alloc()?;
                        c.emit(Insn::HashField {
                            dst: r,
                            field: *i as u16,
                        });
                        c.emit(Insn::Route { key_hash: r });
                        Ok(())
                    }
                    _ => Err("eBPF ROUTE key must be a message field".into()),
                }
            };
            match condition {
                Some(cond) => {
                    let (r, ty) = c.expr(cond, field_types)?;
                    if ty != ETy::Bool {
                        return Err("ROUTE WHERE needs bool in eBPF".into());
                    }
                    let zero = c.alloc()?;
                    c.emit(Insn::LdImm { dst: zero, imm: 0 });
                    let skip = c.emit_jump_placeholder(Insn::JmpIf {
                        cmp: CmpOp::Eq,
                        signed: false,
                        a: r,
                        b: zero,
                        off: 0,
                    });
                    route(c)?;
                    c.patch_jump_to_here(skip);
                }
                None => route(c)?,
            }
        }
        IrStmt::Abort {
            code,
            message: _message, // eBPF carries a code only
            condition,
        } => {
            let emit_abort = |c: &mut Compiler<'_>| -> Result<(), String> {
                let (r, _) = c.expr(code, field_types)?;
                c.emit(Insn::Mov { dst: 0, src: r });
                c.emit(Insn::Ret { verdict: RET_ABORT });
                Ok(())
            };
            match condition {
                Some(cond) => {
                    let (r, ty) = c.expr(cond, field_types)?;
                    if ty != ETy::Bool {
                        return Err("ABORT WHERE needs bool in eBPF".into());
                    }
                    let zero = c.alloc()?;
                    c.emit(Insn::LdImm { dst: zero, imm: 0 });
                    let skip = c.emit_jump_placeholder(Insn::JmpIf {
                        cmp: CmpOp::Eq,
                        signed: false,
                        a: r,
                        b: zero,
                        off: 0,
                    });
                    emit_abort(c)?;
                    c.patch_jump_to_here(skip);
                }
                None => emit_abort(c)?,
            }
        }
        IrStmt::Set {
            field,
            value,
            condition,
        } => {
            match field_types.get(*field) {
                Some(ValueType::U64 | ValueType::I64 | ValueType::Bool) => {}
                _ => return Err(format!("SET field {field}: not a scalar; no eBPF support")),
            }
            let set = |c: &mut Compiler<'_>| -> Result<(), String> {
                let (r, _) = c.expr(value, field_types)?;
                c.emit(Insn::StField {
                    field: *field as u16,
                    src: r,
                });
                Ok(())
            };
            match condition {
                Some(cond) => {
                    let (r, ty) = c.expr(cond, field_types)?;
                    if ty != ETy::Bool {
                        return Err("SET WHERE needs bool in eBPF".into());
                    }
                    let zero = c.alloc()?;
                    c.emit(Insn::LdImm { dst: zero, imm: 0 });
                    let skip = c.emit_jump_placeholder(Insn::JmpIf {
                        cmp: CmpOp::Eq,
                        signed: false,
                        a: r,
                        b: zero,
                        off: 0,
                    });
                    set(c)?;
                    c.patch_jump_to_here(skip);
                }
                None => set(c)?,
            }
        }
    }
    c.next_reg = base;
    Ok(())
}

/// Emits: if NOT cond → Ret Drop (or Ret Abort with `fail_code`).
fn compile_fail_unless(
    c: &mut Compiler<'_>,
    cond: &IrExpr,
    field_types: &[ValueType],
    fail_code: Option<u64>,
) -> Result<(), String> {
    let (r, ty) = c.expr(cond, field_types)?;
    if ty != ETy::Bool {
        return Err("condition must be bool in eBPF".into());
    }
    let zero = c.alloc()?;
    c.emit(Insn::LdImm { dst: zero, imm: 0 });
    let skip = c.emit_jump_placeholder(Insn::JmpIf {
        cmp: CmpOp::Ne,
        signed: false,
        a: r,
        b: zero,
        off: 0,
    });
    match fail_code {
        None => c.emit(Insn::Ret { verdict: RET_DROP }),
        Some(code) => {
            c.emit(Insn::LdImm { dst: 0, imm: code });
            c.emit(Insn::Ret { verdict: RET_ABORT });
        }
    }
    c.patch_jump_to_here(skip);
    Ok(())
}

/// Matches `Col(key_col) == expr` (either side), returning the key expr.
fn extract_keyed_condition(cond: &IrExpr, key_col: usize) -> Option<&IrExpr> {
    if let IrExpr::Binary {
        op: IrBinOp::Eq,
        left,
        right,
    } = cond
    {
        match (left.as_ref(), right.as_ref()) {
            (IrExpr::Col(c), other) if *c == key_col => return Some(other),
            (other, IrExpr::Col(c)) if *c == key_col => return Some(other),
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;

    fn schemas() -> (RpcSchema, RpcSchema) {
        (
            RpcSchema::builder()
                .field("user_id", ValueType::U64)
                .field("object_id", ValueType::U64)
                .field("payload", ValueType::Bytes)
                .build()
                .unwrap(),
            RpcSchema::builder()
                .field("ok", ValueType::Bool)
                .build()
                .unwrap(),
        )
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn types() -> (Vec<ValueType>, Vec<ValueType>) {
        let (req, resp) = schemas();
        (
            req.fields().iter().map(|f| f.ty).collect(),
            resp.fields().iter().map(|f| f.ty).collect(),
        )
    }

    fn compile_full(src: &str) -> Result<EbpfElement, String> {
        let e = lower(src);
        let (rt, pt) = types();
        compile_for_schema(&e, &rt, &pt)
    }

    fn run_request(element: &EbpfElement, fields: &mut [Value], seed: u64) -> EbpfVerdict {
        let mut maps = EbpfMaps::for_element(element);
        let mut udf = UdfRuntime::new(seed);
        let mut route = RouteDecision::default();
        execute(&element.request, fields, &mut maps, &mut udf, &mut route)
    }

    const NUMERIC_ACL: &str = r#"
        element NumAcl() {
            state acl(user_id: u64 key, allowed: u64) init { (1, 1), (2, 0) };
            on request {
                SELECT * FROM input JOIN acl ON input.user_id == acl.user_id
                WHERE acl.allowed == 1;
            }
        }
    "#;

    #[test]
    fn numeric_acl_compiles_and_verifies() {
        let compiled = compile_full(NUMERIC_ACL).unwrap();
        verify(&compiled.request, 1).unwrap();
        assert_eq!(compiled.map_inits[0].len(), 2);
    }

    #[test]
    fn numeric_acl_executes_correctly() {
        let compiled = compile_full(NUMERIC_ACL).unwrap();
        let mut allowed = vec![Value::U64(1), Value::U64(9), Value::Bytes(vec![])];
        assert_eq!(
            run_request(&compiled, &mut allowed, 0),
            EbpfVerdict::Forward
        );
        let mut denied = vec![Value::U64(2), Value::U64(9), Value::Bytes(vec![])];
        assert_eq!(run_request(&compiled, &mut denied, 0), EbpfVerdict::Drop);
        let mut unknown = vec![Value::U64(99), Value::U64(9), Value::Bytes(vec![])];
        assert_eq!(run_request(&compiled, &mut unknown, 0), EbpfVerdict::Drop);
    }

    #[test]
    fn string_acl_rejected() {
        let src = r#"
            element StrAcl() {
                state acl(name: string key, perm: string);
                on request {
                    SELECT * FROM input JOIN acl ON input.payload == acl.name;
                }
            }
        "#;
        // Parse fails typecheck against our schema (payload is bytes), so
        // build the rejection from table constraints instead:
        let e = lower(
            "element E() { state t(a: u64 key, b: u64, c: u64); on request { SELECT * FROM input; } }",
        );
        assert!(compile(&e).is_err(), "two value columns must be rejected");
        let _ = src;
    }

    #[test]
    fn compression_rejected() {
        let err = compile_full(
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        )
        .unwrap_err();
        assert!(err.contains("eBPF"), "{err}");
    }

    #[test]
    fn fault_injection_compiles_via_threshold_trick() {
        let compiled = compile_full(
            "element F(p: f64 = 0.5) { on request { ABORT(3) WHERE random() < p; SELECT * FROM input; } }",
        )
        .unwrap();
        let mut aborts = 0;
        let n = 2000;
        for seed in 0..n {
            let mut fields = vec![Value::U64(1), Value::U64(2), Value::Bytes(vec![])];
            if let EbpfVerdict::Abort { code: 3 } = run_request(&compiled, &mut fields, seed) {
                aborts += 1;
            }
        }
        let rate = aborts as f64 / n as f64;
        assert!((rate - 0.5).abs() < 0.05, "abort rate {rate} far from 0.5");
    }

    #[test]
    fn route_emits_decision() {
        let compiled = compile_full(
            "element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }",
        )
        .unwrap();
        let mut fields = vec![Value::U64(1), Value::U64(42), Value::Bytes(vec![])];
        let mut maps = EbpfMaps::for_element(&compiled);
        let mut udf = UdfRuntime::new(0);
        let mut route = RouteDecision::default();
        let v = execute(
            &compiled.request,
            &mut fields,
            &mut maps,
            &mut udf,
            &mut route,
        );
        assert_eq!(v, EbpfVerdict::Forward);
        assert_eq!(route.key_hash, Some(Value::U64(42).stable_hash()));
    }

    #[test]
    fn keyed_counter_update_compiles() {
        let compiled = compile_full(
            r#"
            element Count() {
                state hits(user_id: u64 key, n: u64);
                on request {
                    INSERT INTO hits VALUES (input.user_id, 0);
                    UPDATE hits SET n = hits.n + 1 WHERE hits.user_id == input.user_id;
                    SELECT * FROM input;
                }
            }
            "#,
        )
        .unwrap();
        let mut maps = EbpfMaps::for_element(&compiled);
        let mut udf = UdfRuntime::new(0);
        let mut route = RouteDecision::default();
        for _ in 0..3 {
            let mut fields = vec![Value::U64(7), Value::U64(0), Value::Bytes(vec![])];
            execute(
                &compiled.request,
                &mut fields,
                &mut maps,
                &mut udf,
                &mut route,
            );
        }
        // INSERT is if-absent (once, value 0); UPDATE bumps per message.
        assert_eq!(maps.maps[0][&7], 3);
    }

    #[test]
    fn verifier_rejects_uninitialized_register_read() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::Mov { dst: 2, src: 3 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        let err = verify(&prog, 0).unwrap_err();
        assert!(err.contains("uninitialized"), "{err}");
    }

    #[test]
    fn verifier_rejects_fallthrough() {
        let prog = EbpfProgram {
            insns: vec![Insn::LdImm { dst: 1, imm: 0 }],
        };
        assert!(verify(&prog, 0).is_err());
    }

    #[test]
    fn verifier_rejects_out_of_range_jump() {
        let prog = EbpfProgram {
            insns: vec![
                Insn::Jmp { off: 99 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        assert!(verify(&prog, 0).is_err());
    }

    #[test]
    fn verifier_rejects_maplookup_miss_path_using_dst() {
        // On the miss path, dst is uninitialized; using it must fail.
        let prog = EbpfProgram {
            insns: vec![
                Insn::LdImm { dst: 1, imm: 5 },
                Insn::MapLookup {
                    map: 0,
                    key: 1,
                    dst: 2,
                    miss_off: 0,
                },
                // Fallthrough AND miss path both arrive here; dst only init
                // on fallthrough → meet says uninitialized.
                Insn::Mov { dst: 3, src: 2 },
                Insn::Ret {
                    verdict: RET_FORWARD,
                },
            ],
        };
        let err = verify(&prog, 1).unwrap_err();
        assert!(err.contains("uninitialized"), "{err}");
    }

    #[test]
    fn division_by_zero_yields_zero_not_panic() {
        let compiled = compile_full(
            "element E() { on request { SET object_id = input.object_id / input.user_id; SELECT * FROM input; } }",
        )
        .unwrap();
        let mut fields = vec![Value::U64(0), Value::U64(100), Value::Bytes(vec![])];
        assert_eq!(run_request(&compiled, &mut fields, 0), EbpfVerdict::Forward);
        assert_eq!(fields[1], Value::U64(0));
    }

    #[test]
    fn case_expression_compiles() {
        let compiled = compile_full(
            "element E() { on request { SET object_id = CASE WHEN input.user_id > 10 THEN 1 ELSE 2 END; SELECT * FROM input; } }",
        )
        .unwrap();
        let mut fields = vec![Value::U64(11), Value::U64(0), Value::Bytes(vec![])];
        run_request(&compiled, &mut fields, 0);
        assert_eq!(fields[1], Value::U64(1));
        let mut fields = vec![Value::U64(5), Value::U64(0), Value::Bytes(vec![])];
        run_request(&compiled, &mut fields, 0);
        assert_eq!(fields[1], Value::U64(2));
    }
}
