//! The native backend: IR compiled to an in-process engine.
//!
//! This is the moral equivalent of the paper prototype's generated Rust
//! mRPC module: a [`NativeEngine`] executes one element's statements per
//! message, in structured form, against its own state tables. A
//! [`FusedEngine`] executes several elements in one engine without
//! per-element dynamic dispatch (the fusion pass's runtime counterpart).

use adn_ir::element::{ElementIr, JoinStrategy};
use adn_rpc::engine::{Engine, Verdict};
use adn_rpc::message::{MessageKind, RpcMessage};
use adn_rpc::transport::EndpointAddr;
use adn_rpc::value::{Value, ValueType};
use adn_wire::codec::{Decoder, Encoder};

use crate::eval::ExecError;
use crate::plan::{compile_stmt_for, exec, exec_pred, CStmt};
use crate::state::StateTable;
use crate::udf_impl::UdfRuntime;

/// Abort code used when an element faults at runtime (overflow, UDF error).
pub const ABORT_INTERNAL: u32 = 13;

/// Compilation options binding an element to its deployment.
#[derive(Debug, Clone)]
pub struct CompileOpts {
    /// Seed for the engine's `random()` / RNG (reproducible experiments).
    pub seed: u64,
    /// Replica set for `ROUTE` statements (flat endpoint ids). Empty means
    /// ROUTE leaves the destination untouched.
    pub replicas: Vec<EndpointAddr>,
    /// Execution tier for [`crate::jit::compile_engine`]. `Auto` selects
    /// the best compiled tier for the build target; the `ADN_JIT` env var
    /// overrides it process-wide. Ignored by `compile_element`, which
    /// always produces the tree-walking interpreter.
    pub jit: adn_jit::JitTier,
}

impl Default for CompileOpts {
    fn default() -> Self {
        Self {
            seed: 0x5eed,
            replicas: Vec::new(),
            jit: adn_jit::JitTier::Auto,
        }
    }
}

/// An element compiled for software execution.
pub struct NativeEngine {
    name: String,
    request: Vec<CStmt>,
    response: Vec<CStmt>,
    tables: Vec<StateTable>,
    udf: UdfRuntime,
    replicas: Vec<EndpointAddr>,
}

/// Compiles one element.
pub fn compile_element(element: &ElementIr, opts: &CompileOpts) -> NativeEngine {
    // The typechecker guarantees every UDF resolves; a failure here is a
    // compiler bug, not user error.
    let compile_all = |stmts: &[adn_ir::IrStmt]| -> Vec<CStmt> {
        stmts
            .iter()
            .map(|s| compile_stmt_for(s, &element.tables).expect("typechecked element compiles"))
            .collect()
    };
    NativeEngine {
        name: element.name.clone(),
        request: compile_all(&element.request),
        response: compile_all(&element.response),
        tables: element
            .tables
            .iter()
            .map(|t| StateTable::new(t.clone()))
            .collect(),
        udf: UdfRuntime::new(opts.seed),
        replicas: opts.replicas.clone(),
    }
}

/// Outcome of running one statement list.
pub(crate) enum StepOutcome {
    Continue,
    Verdict(Verdict),
}

/// What a failed `SELECT` (join miss or false condition) produces.
///
/// The interpreter always uses `Dynamic`; the JIT lowers constant
/// `ELSE ABORT` clauses to `Prebuilt` so the hot path never re-evaluates
/// the code/message expressions.
pub(crate) enum SelectFail<'a> {
    /// No `ELSE ABORT`: drop the message.
    Drop,
    /// Evaluate the abort code and optional message per failure.
    Dynamic {
        code: &'a crate::plan::CExpr,
        message: Option<&'a crate::plan::CExpr>,
        name: &'a str,
    },
    /// A verdict computed once at compile time.
    Prebuilt(&'a Verdict),
}

impl SelectFail<'_> {
    pub(crate) fn verdict(
        &self,
        msg: &RpcMessage,
        udf: &mut UdfRuntime,
    ) -> Result<Verdict, ExecError> {
        match self {
            SelectFail::Drop => Ok(Verdict::Drop),
            SelectFail::Dynamic {
                code,
                message,
                name,
            } => {
                let code_v = exec(code, &msg.fields, None, udf)?.into_owned();
                let code = code_v.as_u64().unwrap_or(ABORT_INTERNAL as u64) as u32;
                let message = match message {
                    Some(m) => match exec(m, &msg.fields, None, udf)?.into_owned() {
                        Value::Str(s) => s,
                        other => other.to_string(),
                    },
                    None => format!("rejected by {name}"),
                };
                Ok(Verdict::Abort { code, message })
            }
            SelectFail::Prebuilt(v) => Ok((*v).clone()),
        }
    }
}

/// Executes one `SELECT` statement: join resolution, condition check,
/// staged projection assignments. Shared by the interpreter and the JIT's
/// select thunk.
pub(crate) fn exec_select(
    assignments: &[(usize, crate::plan::CExpr)],
    join: &Option<crate::plan::CJoin>,
    condition: &Option<crate::plan::CExpr>,
    fail: SelectFail<'_>,
    msg: &mut RpcMessage,
    tables: &mut [StateTable],
    udf: &mut UdfRuntime,
) -> Result<StepOutcome, ExecError> {
    // Resolve the joined row (inner join: no match drops). The row stays
    // *borrowed* from the state table through condition evaluation — the
    // hot path (ACL allow) does not allocate.
    let row: Option<&[Value]> = match join {
        Some(j) => {
            let table = &tables[j.table];
            let found = match &j.strategy {
                JoinStrategy::KeyLookup { input_fields } => {
                    let h = table.key_hash_of_iter(input_fields.iter().map(|&i| &msg.fields[i]));
                    // The hash index is a fast path; confirm with the full
                    // predicate to be exact.
                    match table.lookup(h) {
                        Some(candidate) if exec_pred(&j.on, &msg.fields, Some(candidate), udf)? => {
                            Some(candidate)
                        }
                        _ => None,
                    }
                }
                JoinStrategy::Scan => {
                    let mut found = None;
                    for candidate in table.scan() {
                        if exec_pred(&j.on, &msg.fields, Some(candidate), udf)? {
                            found = Some(candidate);
                            break;
                        }
                    }
                    found
                }
            };
            match found {
                Some(r) => Some(r),
                None => return Ok(StepOutcome::Verdict(fail.verdict(msg, udf)?)),
            }
        }
        None => None,
    };
    if let Some(cond) = condition {
        if !exec_pred(cond, &msg.fields, row, udf)? {
            return Ok(StepOutcome::Verdict(fail.verdict(msg, udf)?));
        }
    }
    if !assignments.is_empty() {
        // Writes may alias the fields the expressions read, so stage the
        // computed values, then commit.
        let mut staged = Vec::with_capacity(assignments.len());
        for (idx, expr) in assignments {
            let v = exec(expr, &msg.fields, row, udf)?.into_owned();
            let ty = msg.schema.fields()[*idx].ty;
            staged.push((*idx, coerce_store(v, ty)?));
        }
        for (idx, v) in staged {
            msg.fields[idx] = v;
        }
    }
    Ok(StepOutcome::Continue)
}

/// Executes one compiled statement against `msg` and the element state.
/// This is the interpreter step, shared verbatim by the JIT's statement
/// escape thunk so the two tiers cannot diverge on escaped statements.
pub(crate) fn exec_stmt(
    stmt: &CStmt,
    msg: &mut RpcMessage,
    tables: &mut [StateTable],
    udf: &mut UdfRuntime,
    replicas: &[EndpointAddr],
    name: &str,
) -> Result<StepOutcome, ExecError> {
    match stmt {
        CStmt::Select {
            assignments,
            join,
            condition,
            else_abort,
        } => {
            let fail = match else_abort {
                Some((code, message)) => SelectFail::Dynamic {
                    code,
                    message: message.as_ref(),
                    name,
                },
                None => SelectFail::Drop,
            };
            exec_select(assignments, join, condition, fail, msg, tables, udf)
        }
        CStmt::Insert { table, values } => {
            let mut row = Vec::with_capacity(values.len());
            for (i, expr) in values.iter().enumerate() {
                let v = exec(expr, &msg.fields, None, udf)?.into_owned();
                let ty = tables[*table].layout().column_types[i];
                row.push(coerce_store(v, ty)?);
            }
            // INSERT is insert-if-absent (SQL ON CONFLICT DO NOTHING),
            // so INSERT-then-UPDATE counter idioms work.
            tables[*table].insert_if_absent(row);
            Ok(StepOutcome::Continue)
        }
        CStmt::Update {
            table,
            assignments,
            condition,
        } => {
            // Two-phase: evaluate replacements against a snapshot scan,
            // then apply, so UDF side effects happen exactly once per
            // matched row and the borrow of the table stays simple.
            let mut replacements: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
            for row in tables[*table].scan() {
                let matches = match condition {
                    Some(c) => exec_pred(c, &msg.fields, Some(row), udf)?,
                    None => true,
                };
                if !matches {
                    continue;
                }
                let mut new_row = row.to_vec();
                for (col, expr) in assignments {
                    let v = exec(expr, &msg.fields, Some(row), udf)?.into_owned();
                    let ty = tables[*table].layout().column_types[*col];
                    new_row[*col] = coerce_store(v, ty)?;
                }
                replacements.push((row.to_vec(), new_row));
            }
            for (old, new) in replacements {
                tables[*table].update_where(|r| r == &old[..], |r| *r = new.clone());
            }
            Ok(StepOutcome::Continue)
        }
        CStmt::UpdateKeyed {
            table,
            key,
            assignments,
            condition,
        } => {
            let key_value = exec(key, &msg.fields, None, udf)?;
            let h = tables[*table].key_hash_of_iter(std::iter::once(key_value.as_ref()));
            let replacement = match tables[*table].lookup(h) {
                Some(row) if exec_pred(condition, &msg.fields, Some(row), udf)? => {
                    let mut new_row = row.to_vec();
                    for (col, expr) in assignments {
                        let v = exec(expr, &msg.fields, Some(row), udf)?.into_owned();
                        let ty = tables[*table].layout().column_types[*col];
                        new_row[*col] = coerce_store(v, ty)?;
                    }
                    Some(new_row)
                }
                _ => None,
            };
            if let Some(new_row) = replacement {
                // Key column is untouched (checked at compile time), so
                // this keyed upsert replaces the row in place.
                tables[*table].upsert(new_row);
            }
            Ok(StepOutcome::Continue)
        }
        CStmt::Delete { table, condition } => {
            match condition {
                Some(c) => {
                    // Evaluate predicates first (UDFs may be stateful),
                    // then delete the matched rows.
                    let mut doomed: Vec<Vec<Value>> = Vec::new();
                    for row in tables[*table].scan() {
                        if exec_pred(c, &msg.fields, Some(row), udf)? {
                            doomed.push(row.to_vec());
                        }
                    }
                    for row in doomed {
                        tables[*table].delete_where(|r| r == &row[..]);
                    }
                }
                None => {
                    tables[*table].delete_where(|_| true);
                }
            }
            Ok(StepOutcome::Continue)
        }
        CStmt::Drop { condition } => {
            let fire = match condition {
                Some(c) => exec_pred(c, &msg.fields, None, udf)?,
                None => true,
            };
            if fire {
                Ok(StepOutcome::Verdict(Verdict::Drop))
            } else {
                Ok(StepOutcome::Continue)
            }
        }
        CStmt::Route { key, condition } => {
            let fire = match condition {
                Some(c) => exec_pred(c, &msg.fields, None, udf)?,
                None => true,
            };
            if fire && !replicas.is_empty() {
                let k = exec(key, &msg.fields, None, udf)?.into_owned();
                let idx = (k.stable_hash() % replicas.len() as u64) as usize;
                msg.dst = replicas[idx];
            }
            Ok(StepOutcome::Continue)
        }
        CStmt::Abort {
            code,
            message,
            condition,
        } => {
            let fire = match condition {
                Some(c) => exec_pred(c, &msg.fields, None, udf)?,
                None => true,
            };
            if !fire {
                return Ok(StepOutcome::Continue);
            }
            let code_v = exec(code, &msg.fields, None, udf)?.into_owned();
            let code = code_v.as_u64().unwrap_or(ABORT_INTERNAL as u64) as u32;
            let message = match message {
                Some(m) => match exec(m, &msg.fields, None, udf)?.into_owned() {
                    Value::Str(s) => s,
                    other => other.to_string(),
                },
                None => format!("aborted by {name}"),
            };
            Ok(StepOutcome::Verdict(Verdict::Abort { code, message }))
        }
        CStmt::Set {
            field,
            value,
            condition,
        } => {
            let fire = match condition {
                Some(c) => exec_pred(c, &msg.fields, None, udf)?,
                None => true,
            };
            if fire {
                let v = exec(value, &msg.fields, None, udf)?.into_owned();
                let ty = msg.schema.fields()[*field].ty;
                msg.fields[*field] = coerce_store(v, ty)?;
            }
            Ok(StepOutcome::Continue)
        }
    }
}

impl NativeEngine {
    /// Read access to a state table (tests, telemetry).
    pub fn table(&self, idx: usize) -> Option<&StateTable> {
        self.tables.get(idx)
    }

    /// Replica set bound to ROUTE statements.
    pub fn replicas(&self) -> &[EndpointAddr] {
        &self.replicas
    }

    /// Rebinds the replica set (controller reconfiguration).
    pub fn set_replicas(&mut self, replicas: Vec<EndpointAddr>) {
        self.replicas = replicas;
    }

    fn run(&mut self, stmts_kind: MessageKind, msg: &mut RpcMessage) -> Verdict {
        // Statements are cloned refs; split borrows manually to satisfy the
        // borrow checker (statements are read-only, tables and udf mutate).
        let stmts = match stmts_kind {
            MessageKind::Request => std::mem::take(&mut self.request),
            MessageKind::Response => std::mem::take(&mut self.response),
        };
        let mut verdict = Verdict::Forward;
        for stmt in &stmts {
            match self.step(stmt, msg) {
                Ok(StepOutcome::Continue) => continue,
                Ok(StepOutcome::Verdict(v)) => {
                    verdict = v;
                    break;
                }
                Err(e) => {
                    verdict = Verdict::Abort {
                        code: ABORT_INTERNAL,
                        message: format!("element {} fault: {e}", self.name),
                    };
                    break;
                }
            }
        }
        match stmts_kind {
            MessageKind::Request => self.request = stmts,
            MessageKind::Response => self.response = stmts,
        }
        verdict
    }

    fn step(&mut self, stmt: &CStmt, msg: &mut RpcMessage) -> Result<StepOutcome, ExecError> {
        exec_stmt(
            stmt,
            msg,
            &mut self.tables,
            &mut self.udf,
            &self.replicas,
            &self.name,
        )
    }
}

/// Coerces a computed value onto a schema slot. Widenings always succeed;
/// a non-negative signed value narrows to unsigned; anything else faults.
pub(crate) fn coerce_store(v: Value, ty: ValueType) -> Result<Value, ExecError> {
    if v.value_type() == ty {
        return Ok(v);
    }
    let coerced = match (&v, ty) {
        (Value::U64(x), ValueType::I64) => i64::try_from(*x).ok().map(Value::I64),
        (Value::U64(x), ValueType::F64) => Some(Value::F64(*x as f64)),
        (Value::I64(x), ValueType::F64) => Some(Value::F64(*x as f64)),
        (Value::I64(x), ValueType::U64) if *x >= 0 => Some(Value::U64(*x as u64)),
        _ => None,
    };
    coerced.ok_or_else(|| {
        ExecError::Eval(adn_ir::expr::EvalError::TypeError(format!(
            "cannot store {v} into a {ty} field"
        )))
    })
}

impl Engine for NativeEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        self.run(msg.kind, msg)
    }

    fn export_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.tables.len() as u64);
        for t in &self.tables {
            enc.put_bytes(&t.snapshot());
        }
        enc.into_bytes()
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(image);
        let count = dec.get_varint().map_err(|e| e.to_string())?;
        if count as usize != self.tables.len() {
            return Err(format!(
                "image has {count} tables, engine has {}",
                self.tables.len()
            ));
        }
        for t in &mut self.tables {
            let bytes = dec.get_bytes().map_err(|e| e.to_string())?;
            t.restore(bytes).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Several elements compiled into one engine (the fusion pass's output).
pub struct FusedEngine {
    name: String,
    engines: Vec<NativeEngine>,
}

/// Compiles a fused stage. Each element gets an independent RNG stream
/// derived from the base seed and its position, matching unfused execution
/// seeded the same way.
pub fn compile_fused(elements: &[ElementIr], opts: &CompileOpts) -> FusedEngine {
    let engines = elements
        .iter()
        .enumerate()
        .map(|(i, e)| {
            compile_element(
                e,
                &CompileOpts {
                    seed: element_seed(opts.seed, i),
                    ..opts.clone()
                },
            )
        })
        .collect();
    FusedEngine {
        name: format!(
            "fused[{}]",
            elements
                .iter()
                .map(|e| e.name.as_str())
                .collect::<Vec<_>>()
                .join("+")
        ),
        engines,
    }
}

/// Derives the per-element seed used by both fused and unfused compilation,
/// so the two execution modes are behaviourally identical.
pub fn element_seed(base: u64, position: usize) -> u64 {
    base ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(position as u64 + 1))
}

impl FusedEngine {
    /// The compiled sub-engines (tests, telemetry).
    pub fn engines(&self) -> &[NativeEngine] {
        &self.engines
    }

    /// Mutable sub-engine access (controller rebinding).
    pub fn engines_mut(&mut self) -> &mut [NativeEngine] {
        &mut self.engines
    }
}

impl Engine for FusedEngine {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, msg: &mut RpcMessage) -> Verdict {
        for e in &mut self.engines {
            match e.run(msg.kind, msg) {
                Verdict::Forward => continue,
                other => return other,
            }
        }
        Verdict::Forward
    }

    fn export_state(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_varint(self.engines.len() as u64);
        for e in &self.engines {
            enc.put_bytes(&e.export_state());
        }
        enc.into_bytes()
    }

    fn import_state(&mut self, image: &[u8]) -> Result<(), String> {
        let mut dec = Decoder::new(image);
        let count = dec.get_varint().map_err(|e| e.to_string())?;
        if count as usize != self.engines.len() {
            return Err("fused state arity mismatch".into());
        }
        for e in &mut self.engines {
            let bytes = dec.get_bytes().map_err(|e| e.to_string())?;
            e.import_state(bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use adn_dsl::parser::parse_element;
    use adn_dsl::typecheck::check_element;
    use adn_rpc::schema::RpcSchema;

    fn schemas() -> (Arc<RpcSchema>, Arc<RpcSchema>) {
        (
            Arc::new(
                RpcSchema::builder()
                    .field("object_id", ValueType::U64)
                    .field("username", ValueType::Str)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
            Arc::new(
                RpcSchema::builder()
                    .field("ok", ValueType::Bool)
                    .field("payload", ValueType::Bytes)
                    .build()
                    .unwrap(),
            ),
        )
    }

    fn lower(src: &str) -> ElementIr {
        let (req, resp) = schemas();
        let checked = check_element(&parse_element(src).unwrap(), &req, &resp).unwrap();
        adn_ir::lower_element(&checked, &[], &req, &resp).unwrap()
    }

    fn request(object_id: u64, username: &str, payload: &[u8]) -> RpcMessage {
        let (req, _) = schemas();
        RpcMessage::request(1, 1, req)
            .with("object_id", object_id)
            .with("username", username)
            .with("payload", payload.to_vec())
    }

    const ACL: &str = r#"
        element Acl() {
            state ac_tab(username: string key, permission: string) init {
                ('alice', 'W'), ('bob', 'R')
            };
            on request {
                SELECT * FROM input JOIN ac_tab ON input.username == ac_tab.username
                WHERE ac_tab.permission == 'W';
            }
        }
    "#;

    #[test]
    fn acl_allows_writers_drops_readers_and_unknowns() {
        let mut e = compile_element(&lower(ACL), &CompileOpts::default());
        let mut alice = request(1, "alice", b"x");
        assert_eq!(e.process(&mut alice), Verdict::Forward);
        let mut bob = request(1, "bob", b"x");
        assert_eq!(e.process(&mut bob), Verdict::Drop);
        let mut eve = request(1, "eve", b"x");
        assert_eq!(e.process(&mut eve), Verdict::Drop);
    }

    #[test]
    fn compression_roundtrips_through_engines() {
        let comp = lower(
            "element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }",
        );
        let decomp = lower(
            "element D() { on request { SET payload = decompress(input.payload); SELECT * FROM input; } }",
        );
        let mut c = compile_element(&comp, &CompileOpts::default());
        let mut d = compile_element(&decomp, &CompileOpts::default());
        let payload = vec![42u8; 500];
        let mut msg = request(1, "alice", &payload);
        assert_eq!(c.process(&mut msg), Verdict::Forward);
        let compressed_len = msg.get("payload").unwrap().as_bytes().unwrap().len();
        assert!(
            compressed_len < 50,
            "payload should shrink, got {compressed_len}"
        );
        assert_eq!(d.process(&mut msg), Verdict::Forward);
        assert_eq!(
            msg.get("payload").unwrap().as_bytes().unwrap(),
            &payload[..]
        );
    }

    #[test]
    fn fault_injection_aborts_at_configured_rate() {
        let src = "element F(p: f64 = 0.3) { on request { ABORT(3, 'fault') WHERE random() < p; SELECT * FROM input; } }";
        let mut e = compile_element(
            &lower(src),
            &CompileOpts {
                seed: 7,
                replicas: vec![],
                ..Default::default()
            },
        );
        let mut aborted = 0;
        let n = 2000;
        for i in 0..n {
            let mut msg = request(i, "alice", b"x");
            if let Verdict::Abort { code: 3, .. } = e.process(&mut msg) {
                aborted += 1;
            }
        }
        let rate = aborted as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.05, "abort rate {rate} far from 0.3");
    }

    #[test]
    fn logging_accumulates_state() {
        let src = r#"
            element Logging() {
                state log_tab(seq: u64 key, who: string);
                on request {
                    INSERT INTO log_tab VALUES (now(), input.username);
                    SELECT * FROM input;
                }
            }
        "#;
        let mut e = compile_element(&lower(src), &CompileOpts::default());
        for i in 0..5 {
            let mut msg = request(i, "alice", b"x");
            assert_eq!(e.process(&mut msg), Verdict::Forward);
        }
        assert_eq!(e.table(0).unwrap().len(), 5);
    }

    #[test]
    fn route_picks_stable_replica() {
        let src = "element Lb() { on request { ROUTE input.object_id; SELECT * FROM input; } }";
        let mut e = compile_element(
            &lower(src),
            &CompileOpts {
                seed: 0,
                replicas: vec![100, 200, 300],
                ..Default::default()
            },
        );
        let mut seen = std::collections::HashSet::new();
        for i in 0..60 {
            let mut msg = request(i, "alice", b"x");
            msg.dst = 1;
            assert_eq!(e.process(&mut msg), Verdict::Forward);
            assert!([100, 200, 300].contains(&msg.dst));
            seen.insert(msg.dst);
            // Same key → same replica.
            let mut again = request(i, "alice", b"x");
            again.dst = 1;
            e.process(&mut again);
            assert_eq!(again.dst, msg.dst);
        }
        assert_eq!(seen.len(), 3, "keys should spread over all replicas");
    }

    #[test]
    fn update_and_delete_mutate_state() {
        let src = r#"
            element RateLimit(limit: u64 = 3) {
                state counters(who: string key, n: u64);
                on request {
                    INSERT INTO counters VALUES (input.username, 0)
                        ;
                    UPDATE counters SET n = counters.n + 1 WHERE counters.who == input.username;
                    DROP WHERE false;
                    SELECT * FROM input;
                }
            }
        "#;
        let mut e = compile_element(&lower(src), &CompileOpts::default());
        for _ in 0..4 {
            let mut msg = request(1, "alice", b"x");
            e.process(&mut msg);
        }
        // INSERT is if-absent, so UPDATE accumulates across messages.
        let t = e.table(0).unwrap();
        let h = t.key_hash_of(&[&Value::Str("alice".into())]);
        assert_eq!(t.lookup(h).unwrap()[1], Value::U64(4));
    }

    #[test]
    fn runtime_fault_aborts_with_code_13() {
        let src = "element E() { on request { SET object_id = input.object_id / 0; SELECT * FROM input; } }";
        let mut e = compile_element(&lower(src), &CompileOpts::default());
        let mut msg = request(1, "alice", b"x");
        match e.process(&mut msg) {
            Verdict::Abort { code, message } => {
                assert_eq!(code, ABORT_INTERNAL);
                assert!(message.contains("division"));
            }
            other => panic!("expected abort, got {other:?}"),
        }
    }

    #[test]
    fn state_export_import_roundtrip() {
        let e = compile_element(&lower(ACL), &CompileOpts::default());
        let image = e.export_state();
        let mut fresh = compile_element(&lower(ACL), &CompileOpts::default());
        fresh.import_state(&image).unwrap();
        assert_eq!(fresh.export_state(), image);
        assert!(fresh.import_state(&[1, 2, 3]).is_err());
    }

    #[test]
    fn fused_equals_chained_execution() {
        let elements = vec![
            lower(ACL),
            lower("element C() { on request { SET payload = compress(input.payload); SELECT * FROM input; } }"),
        ];
        let mut fused = compile_fused(&elements, &CompileOpts::default());
        let mut chain: Vec<NativeEngine> = elements
            .iter()
            .enumerate()
            .map(|(i, e)| {
                compile_element(
                    e,
                    &CompileOpts {
                        seed: element_seed(CompileOpts::default().seed, i),
                        replicas: vec![],
                        ..Default::default()
                    },
                )
            })
            .collect();
        for i in 0..50 {
            let user = if i % 3 == 0 { "alice" } else { "bob" };
            let mut a = request(i, user, &[i as u8; 64]);
            let mut b = a.clone();
            let va = fused.process(&mut a);
            let vb = chain
                .iter_mut()
                .try_fold(Verdict::Forward, |_, e| match e.process(&mut b) {
                    Verdict::Forward => Ok(Verdict::Forward),
                    other => Err(other),
                });
            let vb = match vb {
                Ok(v) => v,
                Err(v) => v,
            };
            assert_eq!(va, vb, "verdicts diverge at message {i}");
            assert_eq!(a.fields, b.fields, "fields diverge at message {i}");
        }
    }

    #[test]
    fn response_handler_runs_on_responses_only() {
        let src = r#"
            element E() {
                on request { SELECT * FROM input; }
                on response { SET ok = true; SELECT * FROM input; }
            }
        "#;
        let (_, resp_schema) = schemas();
        let mut e = compile_element(&lower(src), &CompileOpts::default());
        let req = request(1, "alice", b"x");
        let mut resp = RpcMessage::response_to(&req, resp_schema);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(e.process(&mut resp), Verdict::Forward);
        assert_eq!(resp.get("ok"), Some(&Value::Bool(true)));
    }
}
